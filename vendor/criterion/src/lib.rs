//! Offline shim for the `criterion` crate.
//!
//! Supports the benchmark surface used by `crates/bench/benches/*`:
//! `criterion_group! { name/config/targets }`, `criterion_main!`,
//! benchmark groups, `Throughput::Elements`, `BenchmarkId::new`, and
//! `Bencher::iter`. Measurement is honest but simple — warm-up then a
//! fixed-duration sampling loop reporting mean time per iteration and
//! derived throughput — with none of criterion's statistics, plots, or
//! state directory.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness configuration (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, &id.label(), None, &mut f);
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: name,
            parameter: None,
        }
    }
}

/// Work-per-iteration declaration used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self.criterion, &id.label(), self.throughput, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(self.criterion, &id.label(), self.throughput, &mut |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

/// Passed to the closure; `iter` runs and times the workload.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run untimed until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        // Estimate per-iter cost to split the measurement budget into
        // `sample_size` samples of roughly equal iteration counts.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);

        let mut total_ns = 0f64;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += iters_per_sample;
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
    }
}

fn run_bench(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        warm_up: criterion.warm_up,
        measurement: criterion.measurement,
        sample_size: criterion.sample_size,
        mean_ns: f64::NAN,
    };
    f(&mut bencher);
    let mean_ns = bencher.mean_ns;
    let rate = |per_iter: u64| per_iter as f64 / (mean_ns / 1e9);
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!(
                "{label}: {} /iter  ({:.0} elem/s)",
                fmt_ns(mean_ns),
                rate(n)
            );
        }
        Some(Throughput::Bytes(n)) => {
            println!("{label}: {} /iter  ({:.0} B/s)", fmt_ns(mean_ns), rate(n));
        }
        None => println!("{label}: {} /iter", fmt_ns(mean_ns)),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Prevents the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
