//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `parking_lot` API it uses:
//! [`Mutex`] and [`RwLock`] with lock methods that never return poison
//! errors. Locks are backed by `std::sync`; a poisoned lock (a panic while
//! holding the guard) is transparently recovered, which matches
//! parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

// parking_lot exports its guard types; the shim's guards are std's.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
