//! Offline shim for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as metadata
//! today — nothing serializes through a serde data format (there is no
//! `serde_json` in the sanctioned dependency set). These derives therefore
//! expand to nothing; they exist so the annotations (and `#[serde(...)]`
//! helper attributes) keep compiling offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
