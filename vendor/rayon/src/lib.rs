//! Offline shim for the `rayon` crate.
//!
//! Implements the slice of rayon's API this workspace uses — `ThreadPool` /
//! `ThreadPoolBuilder`, `into_par_iter()` on ranges, `par_iter()` /
//! `par_chunks()` on slices, and the `map` / `flat_map_iter` / `collect`
//! adapters — on top of `std::thread::scope`.
//!
//! Execution model: a parallel iterator is a lazy description with indexed
//! random access; the terminal `collect` splits the index space into one
//! contiguous chunk per worker, evaluates chunks on scoped threads, and
//! concatenates the per-chunk outputs, so result order always matches the
//! source order (rayon's indexed collect gives the same guarantee). There is
//! no work stealing: static partitioning is enough for the regular,
//! evenly-sized workloads in this repo.
//!
//! `ThreadPool::install` scopes a thread-count override through thread-local
//! state, which preserves the property the matcher relies on: each matcher
//! instance controls its own parallelism degree rather than sharing one
//! global pool.

use std::cell::Cell;
use std::fmt;

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator, ParallelSlice};
}

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count in effect on this thread (0 in TLS means "unset").
pub(crate) fn current_threads() -> usize {
    let t = CURRENT_THREADS.with(Cell::get);
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means "use all available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle carrying a thread-count; threads are spawned per `collect`, not
/// parked in a pool, so the handle itself is trivially cheap.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count scoped onto the calling
    /// thread: parallel iterators evaluated inside fan out to
    /// `self.threads` workers.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_THREADS.with(|c| c.replace(self.threads)));
        op()
    }
}

pub mod iter {
    use std::ops::Range;

    /// A lazy, index-addressable parallel computation.
    ///
    /// `eval_range` must append the outputs for source indices `lo..hi`, in
    /// index order, onto `out`; `collect` stitches chunk outputs back
    /// together in chunk order, which yields a fully order-preserving
    /// parallel map (and flat-map).
    pub trait ParallelIterator: Sync + Sized {
        type Item: Send;

        /// Number of source positions.
        fn par_len(&self) -> usize;

        /// Evaluates source positions `lo..hi` in order, appending to `out`.
        fn eval_range(&self, lo: usize, hi: usize, out: &mut Vec<Self::Item>);

        fn map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: Send,
            F: Fn(Self::Item) -> O + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Maps each item to a serial iterator and flattens, preserving
        /// order (rayon's `flat_map_iter`).
        fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
        where
            I: IntoIterator,
            I::Item: Send,
            F: Fn(Self::Item) -> I + Sync + Send,
        {
            FlatMapIter { base: self, f }
        }

        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            drive(&self).into_iter().collect()
        }
    }

    /// Executes the computation across scoped threads.
    fn drive<P: ParallelIterator>(p: &P) -> Vec<P::Item> {
        let n = p.par_len();
        let threads = crate::current_threads().max(1).min(n.max(1));
        if threads <= 1 {
            let mut out = Vec::with_capacity(n);
            p.eval_range(0, n, &mut out);
            return out;
        }
        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Vec<P::Item>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                if lo >= n {
                    break;
                }
                let hi = (lo + chunk).min(n);
                handles.push(scope.spawn(move || {
                    let mut out = Vec::with_capacity(hi - lo);
                    p.eval_range(lo, hi, &mut out);
                    out
                }));
            }
            for h in handles {
                slots.push(h.join().expect("parallel worker panicked"));
            }
        });
        slots.into_iter().flatten().collect()
    }

    /// `rayon::iter::IntoParallelIterator`, for the owned sources we need.
    pub trait IntoParallelIterator {
        type Iter: ParallelIterator<Item = Self::Item>;
        type Item: Send;
        fn into_par_iter(self) -> Self::Iter;
    }

    macro_rules! impl_range_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for Range<$t> {
                type Iter = ParRange<$t>;
                type Item = $t;
                fn into_par_iter(self) -> ParRange<$t> {
                    ParRange(self)
                }
            }

            impl ParallelIterator for ParRange<$t> {
                type Item = $t;
                fn par_len(&self) -> usize {
                    (self.0.end.saturating_sub(self.0.start)) as usize
                }
                fn eval_range(&self, lo: usize, hi: usize, out: &mut Vec<$t>) {
                    for i in lo..hi {
                        out.push(self.0.start + i as $t);
                    }
                }
            }
        )*};
    }

    /// Parallel iterator over an integer range.
    pub struct ParRange<T>(Range<T>);

    impl_range_par_iter!(usize, u32, u64);

    /// Parallel iterator over slice elements.
    pub struct ParSliceIter<'a, T>(&'a [T]);

    impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
        type Item = &'a T;
        fn par_len(&self) -> usize {
            self.0.len()
        }
        fn eval_range(&self, lo: usize, hi: usize, out: &mut Vec<&'a T>) {
            out.extend(&self.0[lo..hi]);
        }
    }

    /// Slice extension providing `par_iter` / `par_chunks` (merges rayon's
    /// `IntoParallelRefIterator` and `ParallelSlice` for the shim).
    pub trait ParallelSlice<T: Sync> {
        fn par_iter(&self) -> ParSliceIter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParSliceIter<'_, T> {
            ParSliceIter(self)
        }

        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Parallel iterator over contiguous chunks of a slice.
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        chunk_size: usize,
    }

    impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
        type Item = &'a [T];
        fn par_len(&self) -> usize {
            self.slice.len().div_ceil(self.chunk_size)
        }
        fn eval_range(&self, lo: usize, hi: usize, out: &mut Vec<&'a [T]>) {
            for c in lo..hi {
                let start = c * self.chunk_size;
                let end = (start + self.chunk_size).min(self.slice.len());
                out.push(&self.slice[start..end]);
            }
        }
    }

    /// Output of [`ParallelIterator::map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        O: Send,
        F: Fn(B::Item) -> O + Sync + Send,
    {
        type Item = O;
        fn par_len(&self) -> usize {
            self.base.par_len()
        }
        fn eval_range(&self, lo: usize, hi: usize, out: &mut Vec<O>) {
            let mut items = Vec::with_capacity(hi - lo);
            self.base.eval_range(lo, hi, &mut items);
            out.extend(items.into_iter().map(&self.f));
        }
    }

    /// Output of [`ParallelIterator::flat_map_iter`].
    pub struct FlatMapIter<B, F> {
        base: B,
        f: F,
    }

    impl<B, I, F> ParallelIterator for FlatMapIter<B, F>
    where
        B: ParallelIterator,
        I: IntoIterator,
        I::Item: Send,
        F: Fn(B::Item) -> I + Sync + Send,
    {
        type Item = I::Item;
        fn par_len(&self) -> usize {
            self.base.par_len()
        }
        fn eval_range(&self, lo: usize, hi: usize, out: &mut Vec<I::Item>) {
            let mut items = Vec::with_capacity(hi - lo);
            self.base.eval_range(lo, hi, &mut items);
            for item in items {
                out.extend((self.f)(item));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let data: Vec<u32> = (0..513).collect();
        let out: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, data.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_flat_map_iter_round_trips() {
        let data: Vec<u32> = (0..97).collect();
        let out: Vec<u32> = data
            .par_chunks(10)
            .flat_map_iter(|c| c.iter().copied())
            .collect();
        assert_eq!(out, data);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_threads(), 3);
            let out: Vec<usize> = (0..10usize).into_par_iter().map(|i| i).collect();
            assert_eq!(out, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn empty_sources() {
        let out: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
