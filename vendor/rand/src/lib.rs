//! Offline shim for the `rand` crate (0.8-era API surface).
//!
//! Everything the workspace calls — `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` over integer/float ranges, `Rng::gen_bool` — backed by a
//! xoshiro256++ generator seeded through SplitMix64 (the reference seeding
//! scheme from Blackman & Vigna). Streams are deterministic per seed but do
//! **not** bit-match upstream `rand`; nothing in-tree asserts on exact drawn
//! values, only on distributional and agreement properties.

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, `seed_from_u64` only (the one form used in-tree).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (stand-in for sampling from `Standard`).
pub trait Standard01: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard01 for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard01 for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable uniformly from a range. Mirrors rand's `SampleUniform`:
/// the *blanket* [`SampleRange`] impls below are what let integer-literal
/// ranges (`rng.gen_range(0..5)`) infer their type from the call site.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform draw from `[0, bound)` via 128-bit widening multiply (Lemire);
/// bias is < 2^-64 and irrelevant for workload generation.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard01>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bounded_draw_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((4_300..=5_700).contains(&c), "counts {counts:?}");
        }
    }
}
