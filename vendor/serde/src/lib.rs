//! Offline shim for the `serde` facade.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! derive-macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile without crates.io access.
//! No data format ships in the sanctioned dependency set, so the traits are
//! empty markers and the derives are no-ops (see `vendor/serde_derive`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
