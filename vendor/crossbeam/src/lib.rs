//! Offline shim for the `crossbeam` facade.
//!
//! Two pieces of crossbeam are used in this workspace and both are
//! reimplemented here on std primitives:
//!
//! * [`scope`] — scoped spawning with crossbeam's `Result`-returning shape,
//!   backed by `std::thread::scope`;
//! * [`channel`] — multi-producer multi-consumer bounded/unbounded channels
//!   (mutex + condvar ring), used by the matching engines' executor ablation
//!   and by `apcm-server`'s backpressured ingest pipeline.

use std::any::Any;

/// Scoped-thread error payload (a captured panic).
pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// Mirrors `crossbeam::scope`: spawns scoped threads whose closures receive
/// the scope handle. std's scope propagates child panics as a panic in
/// `scope` itself, so the `Err` arm here is never constructed; callers'
/// `.expect(..)` unwrapping stays well-typed either way.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Wrapper over `std::thread::Scope` exposing crossbeam's spawn signature
/// (the closure takes the scope handle, enabling nested spawns).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Join handle matching crossbeam's `Result`-returning `join`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

pub mod channel {
    //! MPMC channels: `bounded(cap)` blocks producers at capacity (the
    //! backpressure primitive), `unbounded()` never blocks producers.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a channel that holds at most `cap` messages; `send` blocks
    /// while full. `cap == 0` is normalized to 1 (this shim has no
    /// rendezvous mode; no caller in-tree uses one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error on `send` to a channel with no remaining receivers.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error on `try_send`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error on `recv` from an empty channel with no remaining senders.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error on `try_recv`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error on `recv_timeout`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once all receivers drop.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match shared.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = shared.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Never blocks: fails fast when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = shared.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message or full disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = shared.not_empty.wait(state).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &*self.shared;
            let deadline = Instant::now() + timeout;
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, timed_out) = shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = s;
                if timed_out.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Never blocks.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_backpressure_and_order() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = bounded::<usize>(4);
            let n = 1000;
            std::thread::scope(|s| {
                for p in 0..3 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..n {
                            tx.send(p * n + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut got = Vec::new();
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let rx = rx.clone();
                    handles.push(s.spawn(move || {
                        let mut v = Vec::new();
                        while let Ok(x) = rx.recv() {
                            v.push(x);
                        }
                        v
                    }));
                }
                drop(rx);
                for h in handles {
                    got.extend(h.join().unwrap());
                }
                got.sort_unstable();
                assert_eq!(got, (0..3 * n).collect::<Vec<_>>());
            });
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_in_order() {
        let data = [1, 2, 3, 4];
        let total = crate::scope(|s| {
            let mut handles = Vec::new();
            for &x in &data {
                handles.push(s.spawn(move |_| x * 2));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let out = crate::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
