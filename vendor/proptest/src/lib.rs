//! Offline shim for the `proptest` crate.
//!
//! Reimplements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`], range / tuple / string
//! strategies, [`strategy::Just`], [`prop_oneof!`], `prop_map`, and the
//! `collection::vec` / `collection::btree_set` builders.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: cases are generated from a fixed deterministic seed (reproducible
//! across runs, no `PROPTEST_*` env handling), there is **no shrinking** —
//! a failing case reports the generated inputs via `Debug`-free message text
//! and the case number — and string strategies implement only the tiny
//! regex-ish subset used in-tree (`\PC{lo,hi}`-style "arbitrary printable
//! chars with a length range").

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. `generate` draws one value; combinators compose.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Type-erased strategy (what [`prop_oneof!`] arms become).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// String strategies from pattern literals, e.g. `"\\PC{0,64}"`.
    ///
    /// Only the shape used in-tree is understood: an optional `{lo,hi}`
    /// length suffix, with the remaining prefix selecting "arbitrary
    /// printable" characters. Unrecognized prefixes degrade to the same
    /// printable-char soup, which keeps the never-panics fuzz tests
    /// meaningful without a regex engine.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_len_suffix(self).unwrap_or((0, 32));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| printable_char(rng)).collect()
        }
    }

    fn parse_len_suffix(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let (_, counts) = body.rsplit_once('{')?;
        let (lo, hi) = counts.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }

    fn printable_char(rng: &mut TestRng) -> char {
        // Mostly ASCII printable, with occasional multi-byte code points to
        // exercise UTF-8 handling in parsers.
        match rng.below(8) {
            0 => char::from_u32(0xA1 + rng.below(0x100) as u32).unwrap_or('§'),
            1 => ['λ', '→', '漢', '🦀', 'Ω', 'ß', '°', '∀'][rng.below(8) as usize],
            _ => (0x20u8 + rng.below(0x5F) as u8) as char,
        }
    }

    /// Zero-sized strategy for `bool` ([`crate::bool::ANY`]).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod bool {
    //! `proptest::bool` — the `ANY` strategy.
    pub use crate::strategy::BoolAny;

    /// Generates `true` / `false` uniformly.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    //! Sized-collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// `Vec<V>` with length drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet<V>`; like proptest, duplicates collapse so the set may be
    /// smaller than the drawn length.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and the deterministic generator.

    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the whole workspace's
            // property suite fast while still sweeping the input space.
            Self { cases: 64 }
        }
    }

    /// SplitMix64-based generator used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test name: per-test seed diversity, stable per run.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each embedded `#[test] fn name(binding in strategy, ...) { .. }`
/// over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| -> ::core::result::Result<(), ::std::string::String> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Uniformly picks one of the listed strategies each draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `assert!` that reports a failing case instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)*),
                left,
                right
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_seed(7);
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(11);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn collections_respect_bounds() {
        let mut rng = TestRng::from_seed(13);
        let v = crate::collection::vec(0u32..5, 2..6);
        let b = crate::collection::btree_set(0u32..100, 0..10);
        for _ in 0..100 {
            let xs = v.generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
            assert!(b.generate(&mut rng).len() < 10);
        }
    }

    #[test]
    fn string_pattern_length_suffix() {
        let mut rng = TestRng::from_seed(17);
        let s: &'static str = "\\PC{0,64}";
        for _ in 0..100 {
            let text = s.generate(&mut rng);
            assert!(text.chars().count() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuple strategies, and prop_assert
        /// plumbing.
        #[test]
        fn macro_end_to_end(
            x in 0u32..50,
            pair in (0u8..4, 10u8..14),
        ) {
            prop_assert!(x < 50);
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
            prop_assert_eq!(x.wrapping_add(0), x);
        }
    }
}
