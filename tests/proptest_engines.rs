//! Property-based cross-engine differential testing: random workload shapes,
//! random engine configurations, one oracle (brute-force scan).

use apcm::baselines::{CountingMatcher, KIndex, SequentialScan};
use apcm::betree::{BeTree, BeTreeConfig};
use apcm::core::{ApcmConfig, ApcmMatcher};
use apcm::prelude::*;
use apcm::workload::{OperatorMix, ValueDist, WorkloadSpec};
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = OperatorMix> {
    prop_oneof![
        Just(OperatorMix::balanced()),
        Just(OperatorMix::equality_only()),
        Just(OperatorMix::range_heavy()),
    ]
}

fn arb_values() -> impl Strategy<Value = ValueDist> {
    prop_oneof![
        Just(ValueDist::Uniform),
        (0.5f64..2.0).prop_map(ValueDist::Zipf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every engine agrees with brute force on arbitrary workload shapes.
    #[test]
    fn engines_agree_on_arbitrary_workloads(
        seed in 0u64..10_000,
        dims in 3usize..40,
        cardinality in 2u64..500,
        mix in arb_mix(),
        values in arb_values(),
        planted in 0.0f64..1.0,
    ) {
        let max_preds = dims.min(6);
        let wl = WorkloadSpec::new(300)
            .dims(dims)
            .cardinality(cardinality)
            .sub_preds(1, max_preds)
            .event_size(dims.min(12))
            .operators(mix)
            .values(values)
            .planted_fraction(planted)
            .seed(seed)
            .build();

        let scan = SequentialScan::new(&wl.subs);
        let counting = CountingMatcher::build(&wl.schema, &wl.subs).unwrap();
        let kindex = KIndex::build(&wl.schema, &wl.subs);
        let betree = BeTree::build_with_config(
            &wl.schema,
            &wl.subs,
            BeTreeConfig { max_bucket: 8, max_cdir_depth: 8 },
        ).unwrap();
        let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::default()).unwrap();

        for ev in wl.events(10) {
            let expect = scan.match_event(&ev);
            prop_assert_eq!(&counting.match_event(&ev), &expect, "counting");
            prop_assert_eq!(&kindex.match_event(&ev), &expect, "k-index");
            prop_assert_eq!(&betree.match_event(&ev), &expect, "be-tree");
            prop_assert_eq!(&apcm.match_event(&ev), &expect, "a-pcm");
        }
    }

    /// Hand-built single-subscription corpora: parse, index, and verify the
    /// matcher result equals direct predicate evaluation for random events.
    #[test]
    fn single_subscription_exactness(
        lo in 0i64..90,
        width in 0i64..10,
        eq in 0i64..100,
        probe_a in 0i64..100,
        probe_b in 0i64..100,
    ) {
        let schema = Schema::uniform(3, 100);
        let text = format!("a0 BETWEEN {lo} AND {} AND a1 != {eq}", lo + width);
        let sub = parser::parse_subscription_with_id(&schema, SubId(7), &text).unwrap();
        let apcm = ApcmMatcher::build(&schema, std::slice::from_ref(&sub), &ApcmConfig::default()).unwrap();
        let ev = Event::new(vec![(AttrId(0), probe_a), (AttrId(1), probe_b)]).unwrap();
        let expect = sub.matches(&ev);
        prop_assert_eq!(apcm.match_event(&ev) == vec![SubId(7)], expect);
    }
}
