//! Integration tests for the extension layers: DNF expressions, top-k
//! scored matching, and trace persistence — exercised together, across
//! crates, the way an application would compose them.

use apcm::prelude::*;
use apcm::workload::WorkloadSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn dnf_engine_tracks_brute_force_under_churn() {
    let schema = Schema::uniform(8, 50);
    let mut rng = StdRng::seed_from_u64(401);
    let engine = DnfEngine::build(&schema, &[], &ApcmConfig::default()).unwrap();
    let mut live: Vec<DnfSubscription> = Vec::new();

    for round in 0..10 {
        // Add a few random DNFs.
        for _ in 0..20 {
            let id = SubId(rng.gen_range(0..10_000));
            let n_clauses = rng.gen_range(1..4);
            let clauses: Vec<Vec<Predicate>> = (0..n_clauses)
                .map(|_| {
                    (0..rng.gen_range(1..3))
                        .map(|_| {
                            Predicate::new(
                                AttrId(rng.gen_range(0..8)),
                                Op::Eq(rng.gen_range(0..50)),
                            )
                        })
                        .collect()
                })
                .collect();
            let dnf = DnfSubscription::new(id, clauses).unwrap();
            if engine.subscribe(&dnf).unwrap() {
                live.push(dnf);
            }
        }
        // Remove a few.
        for _ in 0..5 {
            if live.is_empty() {
                break;
            }
            let victim = rng.gen_range(0..live.len());
            let dnf = live.swap_remove(victim);
            assert!(engine.unsubscribe(dnf.id()), "round {round}");
        }
        assert_eq!(engine.len(), live.len());

        // Verify against brute force on random events.
        for _ in 0..20 {
            let ev = Event::new(
                (0..8)
                    .map(|a| (AttrId(a), rng.gen_range(0..50)))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let mut expect: Vec<SubId> = live
                .iter()
                .filter(|d| d.matches(&ev))
                .map(|d| d.id())
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(engine.match_event(&ev), expect, "round {round}");
        }
    }
}

#[test]
fn top_k_agrees_with_full_ranking() {
    let wl = WorkloadSpec::new(500)
        .seed(402)
        .planted_fraction(0.6)
        .build();
    let mut rng = StdRng::seed_from_u64(403);
    let weighted: Vec<(Subscription, f64)> = wl
        .subs
        .iter()
        .map(|s| (s.clone(), rng.gen_range(0.0..100.0)))
        .collect();
    let scored = ScoredMatcher::build(&wl.schema, &weighted, &ApcmConfig::default()).unwrap();

    for ev in wl.events(40) {
        let all = scored.match_scored(&ev);
        for k in [0usize, 1, 3, 10, 1000] {
            let top = scored.match_top_k(&ev, k);
            assert_eq!(top.len(), k.min(all.len()));
            assert_eq!(&all[..top.len()], top.as_slice(), "k={k}");
        }
        // Descending weights.
        assert!(all.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}

#[test]
fn trace_round_trip_preserves_matching_exactly() {
    let wl = WorkloadSpec::new(400)
        .seed(404)
        .planted_fraction(0.4)
        .build();
    let trace = Trace::from_workload(&wl, 100);

    let mut buf = Vec::new();
    trace.save(&mut buf).unwrap();
    let loaded = Trace::load(buf.as_slice()).unwrap();

    let original = ApcmMatcher::build(&trace.schema, &trace.subs, &ApcmConfig::default()).unwrap();
    let replayed =
        ApcmMatcher::build(&loaded.schema, &loaded.subs, &ApcmConfig::default()).unwrap();
    assert_eq!(
        original.match_batch(&trace.events),
        replayed.match_batch(&loaded.events),
        "replaying a saved trace must reproduce the original results"
    );
}

#[test]
fn dnf_of_workload_conjunctions_via_parser() {
    // Build DNFs from parser text and match with every clause shape.
    let schema = Schema::uniform(4, 100);
    let texts = [
        "(a0 < 10 AND a1 = 5) OR (a2 >= 90)",
        "a3 IN {1, 2, 3} OR a3 IN {97, 98}",
        "(a0 != 0) OR (a1 != 0) OR (a2 != 0)",
    ];
    let dnfs: Vec<DnfSubscription> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| parser::parse_dnf_with_id(&schema, SubId(i as u32), t).unwrap())
        .collect();
    let engine = DnfEngine::build(&schema, &dnfs, &ApcmConfig::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(405);
    for _ in 0..200 {
        let ev = Event::new(
            (0..4)
                .map(|a| (AttrId(a), rng.gen_range(0..100)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut expect: Vec<SubId> = dnfs
            .iter()
            .filter(|d| d.matches(&ev))
            .map(|d| d.id())
            .collect();
        expect.sort_unstable();
        assert_eq!(engine.match_event(&ev), expect);
    }
}
