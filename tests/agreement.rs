//! Cross-engine agreement: every matcher in the workspace must return the
//! exact same result set on the same workload. Brute-force scan is ground
//! truth; each engine's divergence would be a correctness bug in that
//! engine.

use apcm::baselines::{CountingMatcher, KIndex, ParallelScan, SequentialScan};
use apcm::betree::{BeTree, BeTreeConfig, HybridPcmTree};
use apcm::core::{ApcmConfig, ApcmMatcher, PcmMatcher};
use apcm::prelude::*;
use apcm::workload::{OperatorMix, ValueDist, WorkloadSpec};

/// Builds one of every engine over the same corpus.
fn all_engines(wl: &apcm::workload::Workload) -> Vec<Box<dyn Matcher>> {
    vec![
        Box::new(SequentialScan::new(&wl.subs)),
        Box::new(ParallelScan::new(&wl.subs)),
        Box::new(CountingMatcher::build(&wl.schema, &wl.subs).unwrap()),
        Box::new(KIndex::build(&wl.schema, &wl.subs)),
        Box::new(
            BeTree::build_with_config(
                &wl.schema,
                &wl.subs,
                BeTreeConfig {
                    max_bucket: 16,
                    max_cdir_depth: 10,
                },
            )
            .unwrap(),
        ),
        Box::new(
            HybridPcmTree::build_with_config(
                &wl.schema,
                &wl.subs,
                BeTreeConfig {
                    max_bucket: 16,
                    max_cdir_depth: 10,
                },
            )
            .unwrap(),
        ),
        Box::new(PcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::pcm()).unwrap()),
        Box::new(ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::default()).unwrap()),
    ]
}

fn assert_all_agree(wl: &apcm::workload::Workload, n_events: usize) {
    let engines = all_engines(wl);
    let events = wl.events(n_events);
    let truth: Vec<Vec<SubId>> = events.iter().map(|ev| engines[0].match_event(ev)).collect();
    for engine in &engines[1..] {
        for (ev, expect) in events.iter().zip(truth.iter()) {
            assert_eq!(
                &engine.match_event(ev),
                expect,
                "{} diverges from SCAN on {:?}",
                engine.name(),
                ev
            );
        }
        // Batch APIs must agree with their own per-event results.
        let batch = engine.match_batch(&events);
        assert_eq!(&batch, &truth, "{} batch diverges", engine.name());
    }
}

#[test]
fn default_workload() {
    let wl = WorkloadSpec::new(1500)
        .seed(101)
        .planted_fraction(0.3)
        .build();
    assert_all_agree(&wl, 50);
}

#[test]
fn equality_only_workload() {
    let wl = WorkloadSpec::new(1000)
        .operators(OperatorMix::equality_only())
        .planted_fraction(0.4)
        .seed(102)
        .build();
    assert_all_agree(&wl, 50);
}

#[test]
fn range_heavy_workload() {
    let wl = WorkloadSpec::new(1000)
        .operators(OperatorMix::range_heavy())
        .planted_fraction(0.4)
        .seed(103)
        .build();
    assert_all_agree(&wl, 50);
}

#[test]
fn zipf_skewed_values() {
    let wl = WorkloadSpec::new(1000)
        .values(ValueDist::Zipf(1.2))
        .planted_fraction(0.3)
        .seed(104)
        .build();
    assert_all_agree(&wl, 50);
}

#[test]
fn high_dimensional_sparse() {
    let wl = WorkloadSpec::new(800)
        .dims(200)
        .event_size(30)
        .sub_preds(2, 6)
        .planted_fraction(0.3)
        .seed(105)
        .build();
    assert_all_agree(&wl, 30);
}

#[test]
fn low_cardinality_dense_matches() {
    // Tiny domains → very high match probability; stresses result merging.
    let wl = WorkloadSpec::new(600)
        .dims(6)
        .cardinality(4)
        .sub_preds(1, 3)
        .event_size(6)
        .set_size(2)
        .planted_fraction(0.0)
        .seed(106)
        .build();
    assert_all_agree(&wl, 30);
}

#[test]
fn large_expressions() {
    let wl = WorkloadSpec::new(600)
        .dims(30)
        .sub_preds(10, 15)
        .event_size(25)
        .planted_fraction(0.5)
        .seed(107)
        .build();
    assert_all_agree(&wl, 30);
}

#[test]
fn output_is_sorted_and_deduplicated() {
    let wl = WorkloadSpec::new(500)
        .seed(108)
        .planted_fraction(0.8)
        .build();
    for engine in all_engines(&wl) {
        for ev in wl.events(30) {
            let out = engine.match_event(&ev);
            let mut normalized = out.clone();
            normalized.sort_unstable();
            normalized.dedup();
            assert_eq!(out, normalized, "{} output not canonical", engine.name());
        }
    }
}
