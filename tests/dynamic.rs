//! Dynamic-corpus behavior: subscription churn must keep every dynamic
//! engine (A-PCM, BE-Tree) consistent with a scan over the live set.

use apcm::baselines::SequentialScan;
use apcm::betree::{BeTree, BeTreeConfig};
use apcm::core::{AdaptiveConfig, ApcmConfig, ApcmMatcher};
use apcm::prelude::*;
use apcm::server::{EngineChoice, ServerConfig, ShardedEngine};
use apcm::workload::WorkloadSpec;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

fn churn_config() -> ApcmConfig {
    ApcmConfig {
        adaptive: AdaptiveConfig {
            epoch_events: 128,
            min_probes: 16,
            max_pending: 32,
            ..AdaptiveConfig::default()
        },
        batch_size: 32,
        ..ApcmConfig::default()
    }
}

#[test]
fn apcm_tracks_live_set_under_churn() {
    let wl = WorkloadSpec::new(600)
        .seed(201)
        .planted_fraction(0.3)
        .build();
    let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &churn_config()).unwrap();
    let mut live: HashMap<SubId, Subscription> =
        wl.subs.iter().map(|s| (s.id(), s.clone())).collect();

    let extra = WorkloadSpec::new(600).seed(202).build();
    let mut rng = StdRng::seed_from_u64(203);
    let mut stream = wl.stream();
    let mut next_extra = 0usize;

    for round in 0..20 {
        // Mutate: remove ~20 random ids, add ~20 new subscriptions.
        let victims: Vec<SubId> = live
            .keys()
            .copied()
            .filter(|_| rng.gen_bool(0.03))
            .collect();
        for id in victims {
            assert!(apcm.unsubscribe(id), "round {round}: {id:?} must exist");
            live.remove(&id);
        }
        for _ in 0..20 {
            if next_extra >= extra.subs.len() {
                break;
            }
            let fresh = Subscription::new(
                SubId(10_000 + next_extra as u32),
                extra.subs[next_extra].predicates().to_vec(),
            )
            .unwrap();
            next_extra += 1;
            assert!(apcm.subscribe(&fresh).unwrap());
            live.insert(fresh.id(), fresh);
        }

        // Verify matching over the current live set.
        let live_subs: Vec<Subscription> = live.values().cloned().collect();
        let scan = SequentialScan::new(&live_subs);
        let window: Vec<Event> = (&mut stream).take(50).collect();
        let rows = apcm.match_batch(&window);
        for (ev, row) in window.iter().zip(rows.iter()) {
            assert_eq!(row, &scan.match_event(ev), "round {round}");
        }
        assert_eq!(apcm.len(), live.len(), "round {round}");
    }
    // Churn must have exercised maintenance at least once.
    assert!(apcm.stats().maintenance_runs > 0);
}

#[test]
fn betree_tracks_live_set_under_churn() {
    let wl = WorkloadSpec::new(500)
        .seed(204)
        .planted_fraction(0.3)
        .build();
    let mut tree = BeTree::build_with_config(
        &wl.schema,
        &wl.subs,
        BeTreeConfig {
            max_bucket: 8,
            max_cdir_depth: 8,
        },
    )
    .unwrap();
    let mut live: HashMap<SubId, Subscription> =
        wl.subs.iter().map(|s| (s.id(), s.clone())).collect();
    let mut rng = StdRng::seed_from_u64(205);
    let mut stream = wl.stream();

    for round in 0..10 {
        let victims: Vec<SubId> = live
            .keys()
            .copied()
            .filter(|_| rng.gen_bool(0.05))
            .collect();
        for id in victims {
            let sub = live.remove(&id).unwrap();
            assert!(tree.remove(&sub), "round {round}");
        }
        let live_subs: Vec<Subscription> = live.values().cloned().collect();
        let scan = SequentialScan::new(&live_subs);
        for ev in (&mut stream).take(30) {
            assert_eq!(
                tree.match_event(&ev),
                scan.match_event(&ev),
                "round {round}"
            );
        }
    }
}

#[test]
fn maintenance_preserves_results_exactly() {
    // Snapshot results, force maintenance, results must be identical.
    let wl = WorkloadSpec::new(800)
        .seed(206)
        .planted_fraction(0.5)
        .build();
    let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &churn_config()).unwrap();
    let events = wl.events(60);
    let before = apcm.match_batch(&events);
    // Heat the counters so the adaptive policy has something to act on.
    for _ in 0..5 {
        let _ = apcm.match_batch(&events);
    }
    apcm.maintain();
    let after = apcm.match_batch(&events);
    assert_eq!(before, after, "maintenance changed match results");
}

#[test]
fn resubscribe_same_id_after_unsubscribe() {
    let schema = Schema::uniform(4, 100);
    let apcm = ApcmMatcher::build(&schema, &[], &churn_config()).unwrap();
    let v1 = parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 5").unwrap();
    let v2 = parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 6").unwrap();
    apcm.subscribe(&v1).unwrap();
    assert!(apcm.unsubscribe(SubId(1)));
    assert!(apcm.subscribe(&v2).unwrap(), "id is free again");
    let ev5 = parser::parse_event(&schema, "a0 = 5").unwrap();
    let ev6 = parser::parse_event(&schema, "a0 = 6").unwrap();
    assert!(apcm.match_event(&ev5).is_empty());
    assert_eq!(apcm.match_event(&ev6), vec![SubId(1)]);
}

#[test]
fn sharded_engine_tracks_live_set_under_churn() {
    // Interleave subscribe / unsubscribe / match across a multi-shard
    // engine; every window must agree with a sequential scan over the
    // live set, for each per-shard engine kind.
    for kind in [
        EngineChoice::Apcm,
        EngineChoice::BetreeHybrid,
        EngineChoice::Scan,
    ] {
        let wl = WorkloadSpec::new(300)
            .seed(208)
            .planted_fraction(0.3)
            .build();
        let config = ServerConfig {
            shards: 3,
            engine: kind,
            ..ServerConfig::default()
        };
        let sharded = ShardedEngine::new(&wl.schema, &config).unwrap();
        let mut live: HashMap<SubId, Subscription> = HashMap::new();
        let extra = WorkloadSpec::new(300).seed(209).build();
        let mut rng = StdRng::seed_from_u64(210);
        let mut stream = wl.stream();
        let mut next_extra = 0usize;

        for sub in &wl.subs {
            assert!(sharded.subscribe(sub).unwrap());
            live.insert(sub.id(), sub.clone());
        }
        // Duplicate subscribe is rejected without disturbing the live set.
        assert!(!sharded.subscribe(&wl.subs[0]).unwrap());
        // Unsubscribe of an id that was never registered reports false.
        assert!(!sharded.unsubscribe(SubId(999_999)));
        assert_eq!(sharded.len(), live.len());

        for round in 0..12 {
            let victims: Vec<SubId> = live
                .keys()
                .copied()
                .filter(|_| rng.gen_bool(0.05))
                .collect();
            for id in victims {
                assert!(sharded.unsubscribe(id), "round {round}: {id:?} must exist");
                assert!(!sharded.unsubscribe(id), "round {round}: double unsub");
                live.remove(&id);
            }
            for _ in 0..10 {
                if next_extra >= extra.subs.len() {
                    break;
                }
                let fresh = Subscription::new(
                    SubId(30_000 + next_extra as u32),
                    extra.subs[next_extra].predicates().to_vec(),
                )
                .unwrap();
                next_extra += 1;
                assert!(sharded.subscribe(&fresh).unwrap());
                live.insert(fresh.id(), fresh);
            }
            if round % 4 == 3 {
                sharded.maintain();
            }

            let live_subs: Vec<Subscription> = live.values().cloned().collect();
            let scan = SequentialScan::new(&live_subs);
            let window: Vec<Event> = (&mut stream).take(40).collect();
            let rows = sharded.match_window(&window);
            for (ev, row) in window.iter().zip(rows.iter()) {
                assert_eq!(
                    row,
                    &scan.match_event(ev),
                    "round {round}, engine {}",
                    sharded.engine_name()
                );
            }
            assert_eq!(sharded.len(), live.len(), "round {round}");
            assert_eq!(sharded.per_shard_len().iter().sum::<usize>(), live.len());
        }
    }
}

#[test]
fn concurrent_matching_during_churn() {
    // Matching threads and a churn thread share one matcher; results must
    // always correspond to *some* consistent subscription set, and the run
    // must be race-free (this test is primarily a sanitizer target).
    let wl = WorkloadSpec::new(400)
        .seed(207)
        .planted_fraction(0.3)
        .build();
    let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &churn_config()).unwrap();
    let events = wl.events(200);

    std::thread::scope(|scope| {
        let apcm = &apcm;
        let schema = &wl.schema;
        let events = &events;
        let matcher_handle = scope.spawn(move || {
            let mut total = 0usize;
            for chunk in events.chunks(20) {
                total += apcm.match_batch(chunk).iter().map(Vec::len).sum::<usize>();
            }
            total
        });
        let churn_handle = scope.spawn(move || {
            for i in 0..100u32 {
                let sub = parser::parse_subscription_with_id(
                    schema,
                    SubId(20_000 + i),
                    &format!("a0 = {}", i % 10),
                )
                .unwrap();
                apcm.subscribe(&sub).unwrap();
                if i % 2 == 0 {
                    apcm.unsubscribe(SubId(20_000 + i));
                }
            }
        });
        matcher_handle.join().unwrap();
        churn_handle.join().unwrap();
    });
    // 100 subscribed, 50 unsubscribed.
    assert_eq!(apcm.len(), 400 + 50);
}
