//! Streaming behavior: OSR windows, drifting streams, and batch processing
//! must never change *what* matches — only how fast.

use apcm::baselines::SequentialScan;
use apcm::core::{AdaptiveConfig, ApcmConfig, ApcmMatcher, OsrBuffer};
use apcm::prelude::*;
use apcm::workload::{DriftingStream, ValueDist, WorkloadSpec};

#[test]
fn osr_buffer_pipeline_equals_per_event_matching() {
    let wl = WorkloadSpec::new(800)
        .seed(301)
        .planted_fraction(0.4)
        .build();
    let apcm = ApcmMatcher::build(
        &wl.schema,
        &wl.subs,
        &ApcmConfig {
            batch_size: 64,
            reorder: true,
            ..ApcmConfig::default()
        },
    )
    .unwrap();
    let scan = SequentialScan::new(&wl.subs);

    let events = wl.events(500);
    let mut buffer = OsrBuffer::new(64);
    let mut streamed: Vec<Vec<SubId>> = Vec::new();
    for ev in &events {
        if let Some(window) = buffer.push(ev.clone()) {
            streamed.extend(apcm.match_batch(&window));
        }
    }
    streamed.extend(apcm.match_batch(&buffer.flush()));

    assert_eq!(streamed.len(), events.len());
    for (ev, row) in events.iter().zip(streamed.iter()) {
        assert_eq!(row, &scan.match_event(ev));
    }
}

#[test]
fn batch_size_sweep_is_result_invariant() {
    let wl = WorkloadSpec::new(500)
        .seed(302)
        .planted_fraction(0.5)
        .build();
    let events = wl.events(300);
    let reference = {
        let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::pcm()).unwrap();
        apcm.match_batch(&events)
    };
    for batch in [1usize, 2, 7, 32, 100, 300, 1000] {
        for reorder in [false, true] {
            let apcm = ApcmMatcher::build(
                &wl.schema,
                &wl.subs,
                &ApcmConfig {
                    batch_size: batch,
                    reorder,
                    ..ApcmConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                apcm.match_batch(&events),
                reference,
                "batch={batch} reorder={reorder}"
            );
        }
    }
}

#[test]
fn drifting_stream_matches_stay_correct_across_epochs() {
    let wl = WorkloadSpec::new(600)
        .values(ValueDist::Zipf(1.1))
        .planted_fraction(0.2)
        .seed(303)
        .build();
    let apcm = ApcmMatcher::build(
        &wl.schema,
        &wl.subs,
        &ApcmConfig {
            batch_size: 50,
            adaptive: AdaptiveConfig {
                epoch_events: 100,
                min_probes: 8,
                ..AdaptiveConfig::default()
            },
            ..ApcmConfig::default()
        },
    )
    .unwrap();
    let scan = SequentialScan::new(&wl.subs);

    let mut stream = DriftingStream::new(&wl, 150, 333, 304);
    for window_idx in 0..8 {
        let window: Vec<Event> = (&mut stream).take(100).collect();
        let rows = apcm.match_batch(&window);
        for (ev, row) in window.iter().zip(rows.iter()) {
            assert_eq!(row, &scan.match_event(ev), "window {window_idx}");
        }
    }
    let stats = apcm.stats();
    assert!(stats.maintenance_runs > 0, "drift must trigger maintenance");
}

#[test]
fn throughput_counters_accumulate() {
    let wl = WorkloadSpec::new(300).seed(305).build();
    let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::pcm()).unwrap();
    let before = apcm.stats();
    assert_eq!(before.probes, 0);
    let _ = apcm.match_batch(&wl.events(100));
    let after = apcm.stats();
    assert!(after.probes > 0);
    assert!(after.probes >= after.prunes);
}

#[test]
fn single_event_window_behaves() {
    let wl = WorkloadSpec::new(200)
        .seed(306)
        .planted_fraction(1.0)
        .build();
    let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::default()).unwrap();
    let scan = SequentialScan::new(&wl.subs);
    for ev in wl.events(10) {
        assert_eq!(
            apcm.match_batch(std::slice::from_ref(&ev))[0],
            scan.match_event(&ev)
        );
    }
}
