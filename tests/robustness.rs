//! Robustness: inputs at the edges of the model — unknown attributes,
//! extreme domains, degenerate corpora — must degrade gracefully and
//! consistently across engines.

use apcm::baselines::{CountingMatcher, KIndex, SequentialScan};
use apcm::betree::BeTree;
use apcm::core::{ApcmConfig, ApcmMatcher};
use apcm::prelude::*;

#[test]
fn events_with_unknown_attributes_are_consistent() {
    // Events may carry attribute ids the schema never registered (e.g. a
    // producer running a newer schema). Every engine must treat them as
    // irrelevant — identical to the brute-force semantics where no
    // predicate references them.
    let schema = Schema::uniform(3, 100);
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(0), "a0 = 5").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(1), "a1 != 9").unwrap(),
    ];
    let ev = Event::new(vec![(AttrId(0), 5), (AttrId(1), 2), (AttrId(99), 7)]).unwrap();

    let scan = SequentialScan::new(&subs);
    let expect = scan.match_event(&ev);
    assert_eq!(expect, vec![SubId(0), SubId(1)]);

    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    assert_eq!(apcm.match_event(&ev), expect);
    let counting = CountingMatcher::build(&schema, &subs).unwrap();
    assert_eq!(counting.match_event(&ev), expect);
    let kindex = KIndex::build(&schema, &subs);
    assert_eq!(kindex.match_event(&ev), expect);
    let betree = BeTree::build(&schema, &subs).unwrap();
    assert_eq!(betree.match_event(&ev), expect);
}

#[test]
fn negative_and_offset_domains() {
    let mut schema = Schema::new();
    schema.add_attr("temp", Domain::new(-100, 100)).unwrap();
    schema
        .add_attr("epoch", Domain::new(1_600_000_000, 1_700_000_000))
        .unwrap();
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(0), "temp BETWEEN -20 AND -5").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(1), "epoch >= 1650000000 AND temp != 0")
            .unwrap(),
    ];
    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    let scan = SequentialScan::new(&subs);
    for (t, e) in [
        (-20i64, 1_600_000_000i64),
        (-5, 1_650_000_000),
        (0, 1_699_999_999),
        (100, 1_650_000_001),
        (-100, 1_600_000_001),
    ] {
        let ev = parser::parse_event(&schema, &format!("temp = {t}, epoch = {e}")).unwrap();
        assert_eq!(apcm.match_event(&ev), scan.match_event(&ev), "t={t} e={e}");
    }
}

#[test]
fn single_value_domains() {
    let mut schema = Schema::new();
    schema.add_attr("flag", Domain::new(1, 1)).unwrap();
    schema.add_attr("x", Domain::new(0, 9)).unwrap();
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(0), "flag = 1").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(1), "flag != 1 AND x = 3").unwrap(),
    ];
    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    let ev = parser::parse_event(&schema, "flag = 1, x = 3").unwrap();
    // `flag != 1` is unsatisfiable within the domain.
    assert_eq!(apcm.match_event(&ev), vec![SubId(0)]);
}

#[test]
fn unsatisfiable_predicates_never_match() {
    // BETWEEN entirely below the domain after validation is impossible via
    // the parser, but direct construction can produce satisfiable-looking
    // predicates that cover nothing once intersected with a small domain.
    let mut schema = Schema::new();
    schema.add_attr("x", Domain::new(10, 20)).unwrap();
    let sub = Subscription::new(
        SubId(0),
        vec![Predicate::new(
            AttrId(0),
            Op::not_in_set((10..=20).collect::<Vec<_>>()).unwrap(),
        )],
    )
    .unwrap();
    let apcm =
        ApcmMatcher::build(&schema, std::slice::from_ref(&sub), &ApcmConfig::default()).unwrap();
    let scan = SequentialScan::new(&[sub]);
    for v in 10..=20 {
        let ev = Event::new(vec![(AttrId(0), v)]).unwrap();
        assert!(scan.match_event(&ev).is_empty());
        assert!(apcm.match_event(&ev).is_empty(), "v={v}");
    }
}

#[test]
fn duplicate_ids_in_corpus_collapse_consistently() {
    // Two subscriptions with the same id: match output is id-based and
    // deduplicated, so engines agree even though both entries are indexed.
    let schema = Schema::uniform(2, 10);
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(7), "a0 = 1").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(7), "a1 = 2").unwrap(),
    ];
    let scan = SequentialScan::new(&subs);
    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    for text in ["a0 = 1", "a1 = 2", "a0 = 1, a1 = 2", "a0 = 3"] {
        let ev = parser::parse_event(&schema, text).unwrap();
        assert_eq!(apcm.match_event(&ev), scan.match_event(&ev), "{text}");
    }
}

#[test]
fn broker_rejects_oversized_line_and_stays_up() {
    use apcm::server::{BrokerClient, Server, ServerConfig};
    use std::io::{BufRead, BufReader, Write};

    let schema = Schema::uniform(3, 16);
    let config = ServerConfig {
        shards: 2,
        max_line_bytes: 64,
        ..ServerConfig::default()
    };
    let server = Server::start(schema, config, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Raw socket: an oversized line (no protocol framing assumptions) must
    // be answered with a structured error, not buffered or fatal.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut big = vec![b'x'; 4096];
    big.push(b'\n');
    stream.write_all(&big).unwrap();
    stream.write_all(b"PING\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("-ERR line too long"), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "+PONG"); // same connection still works

    // A second, clean connection is unaffected and sees the counter.
    let mut client = BrokerClient::connect(&addr).unwrap();
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats["oversized_lines"], 1);
    server.shutdown();
}

#[test]
fn broker_survives_slow_reader_under_drop_policy() {
    use apcm::server::{BrokerClient, EngineChoice, Server, ServerConfig};

    let schema = Schema::uniform(3, 16);
    let config = ServerConfig {
        shards: 2,
        engine: EngineChoice::Scan,
        window: 8,
        conn_queue: 4, // tiny outbound queue: overflows immediately
        flush_interval: std::time::Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server = Server::start(schema.clone(), config, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // The slow reader subscribes to everything and never reads.
    let mut slow = BrokerClient::connect(&addr).unwrap();
    slow.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let sub = parser::parse_subscription_with_id(&schema, SubId(1), "a0 >= 0").unwrap();
    slow.subscribe(&sub, &schema).unwrap();

    // A publisher floods events that all notify the slow reader.
    let mut publisher = BrokerClient::connect(&addr).unwrap();
    publisher
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    for _ in 0..40 {
        publisher.send_line("PUB a0 = 1, a1 = 1, a2 = 1").unwrap();
    }
    // The server stays responsive on another connection while dropping.
    let mut probe = BrokerClient::connect(&addr).unwrap();
    probe
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        probe.ping().unwrap();
        let stats = probe.stats().unwrap();
        if stats["replies_dropped"] > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no drops recorded: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn very_long_conjunction() {
    let schema = Schema::uniform(64, 4);
    let preds: Vec<Predicate> = (0..64)
        .map(|a| Predicate::new(AttrId(a), Op::Le(3))) // always true
        .collect();
    let sub = Subscription::new(SubId(0), preds).unwrap();
    let apcm = ApcmMatcher::build(&schema, &[sub], &ApcmConfig::default()).unwrap();
    let full = Event::new((0..64).map(|a| (AttrId(a), 0)).collect::<Vec<_>>()).unwrap();
    assert_eq!(apcm.match_event(&full), vec![SubId(0)]);
    // Missing one attribute → no match.
    let partial = Event::new((0..63).map(|a| (AttrId(a), 0)).collect::<Vec<_>>()).unwrap();
    assert!(apcm.match_event(&partial).is_empty());
}
