//! Robustness: inputs at the edges of the model — unknown attributes,
//! extreme domains, degenerate corpora — must degrade gracefully and
//! consistently across engines.

use apcm::baselines::{CountingMatcher, KIndex, SequentialScan};
use apcm::betree::BeTree;
use apcm::core::{ApcmConfig, ApcmMatcher};
use apcm::prelude::*;

#[test]
fn events_with_unknown_attributes_are_consistent() {
    // Events may carry attribute ids the schema never registered (e.g. a
    // producer running a newer schema). Every engine must treat them as
    // irrelevant — identical to the brute-force semantics where no
    // predicate references them.
    let schema = Schema::uniform(3, 100);
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(0), "a0 = 5").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(1), "a1 != 9").unwrap(),
    ];
    let ev = Event::new(vec![(AttrId(0), 5), (AttrId(1), 2), (AttrId(99), 7)]).unwrap();

    let scan = SequentialScan::new(&subs);
    let expect = scan.match_event(&ev);
    assert_eq!(expect, vec![SubId(0), SubId(1)]);

    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    assert_eq!(apcm.match_event(&ev), expect);
    let counting = CountingMatcher::build(&schema, &subs).unwrap();
    assert_eq!(counting.match_event(&ev), expect);
    let kindex = KIndex::build(&schema, &subs);
    assert_eq!(kindex.match_event(&ev), expect);
    let betree = BeTree::build(&schema, &subs).unwrap();
    assert_eq!(betree.match_event(&ev), expect);
}

#[test]
fn negative_and_offset_domains() {
    let mut schema = Schema::new();
    schema.add_attr("temp", Domain::new(-100, 100)).unwrap();
    schema
        .add_attr("epoch", Domain::new(1_600_000_000, 1_700_000_000))
        .unwrap();
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(0), "temp BETWEEN -20 AND -5").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(1), "epoch >= 1650000000 AND temp != 0")
            .unwrap(),
    ];
    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    let scan = SequentialScan::new(&subs);
    for (t, e) in [
        (-20i64, 1_600_000_000i64),
        (-5, 1_650_000_000),
        (0, 1_699_999_999),
        (100, 1_650_000_001),
        (-100, 1_600_000_001),
    ] {
        let ev = parser::parse_event(&schema, &format!("temp = {t}, epoch = {e}")).unwrap();
        assert_eq!(apcm.match_event(&ev), scan.match_event(&ev), "t={t} e={e}");
    }
}

#[test]
fn single_value_domains() {
    let mut schema = Schema::new();
    schema.add_attr("flag", Domain::new(1, 1)).unwrap();
    schema.add_attr("x", Domain::new(0, 9)).unwrap();
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(0), "flag = 1").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(1), "flag != 1 AND x = 3").unwrap(),
    ];
    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    let ev = parser::parse_event(&schema, "flag = 1, x = 3").unwrap();
    // `flag != 1` is unsatisfiable within the domain.
    assert_eq!(apcm.match_event(&ev), vec![SubId(0)]);
}

#[test]
fn unsatisfiable_predicates_never_match() {
    // BETWEEN entirely below the domain after validation is impossible via
    // the parser, but direct construction can produce satisfiable-looking
    // predicates that cover nothing once intersected with a small domain.
    let mut schema = Schema::new();
    schema.add_attr("x", Domain::new(10, 20)).unwrap();
    let sub = Subscription::new(
        SubId(0),
        vec![Predicate::new(
            AttrId(0),
            Op::not_in_set((10..=20).collect::<Vec<_>>()).unwrap(),
        )],
    )
    .unwrap();
    let apcm =
        ApcmMatcher::build(&schema, std::slice::from_ref(&sub), &ApcmConfig::default()).unwrap();
    let scan = SequentialScan::new(&[sub]);
    for v in 10..=20 {
        let ev = Event::new(vec![(AttrId(0), v)]).unwrap();
        assert!(scan.match_event(&ev).is_empty());
        assert!(apcm.match_event(&ev).is_empty(), "v={v}");
    }
}

#[test]
fn duplicate_ids_in_corpus_collapse_consistently() {
    // Two subscriptions with the same id: match output is id-based and
    // deduplicated, so engines agree even though both entries are indexed.
    let schema = Schema::uniform(2, 10);
    let subs = vec![
        parser::parse_subscription_with_id(&schema, SubId(7), "a0 = 1").unwrap(),
        parser::parse_subscription_with_id(&schema, SubId(7), "a1 = 2").unwrap(),
    ];
    let scan = SequentialScan::new(&subs);
    let apcm = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
    for text in ["a0 = 1", "a1 = 2", "a0 = 1, a1 = 2", "a0 = 3"] {
        let ev = parser::parse_event(&schema, text).unwrap();
        assert_eq!(apcm.match_event(&ev), scan.match_event(&ev), "{text}");
    }
}

#[test]
fn very_long_conjunction() {
    let schema = Schema::uniform(64, 4);
    let preds: Vec<Predicate> = (0..64)
        .map(|a| Predicate::new(AttrId(a), Op::Le(3))) // always true
        .collect();
    let sub = Subscription::new(SubId(0), preds).unwrap();
    let apcm = ApcmMatcher::build(&schema, &[sub], &ApcmConfig::default()).unwrap();
    let full = Event::new((0..64).map(|a| (AttrId(a), 0)).collect::<Vec<_>>()).unwrap();
    assert_eq!(apcm.match_event(&full), vec![SubId(0)]);
    // Missing one attribute → no match.
    let partial = Event::new((0..63).map(|a| (AttrId(a), 0)).collect::<Vec<_>>()).unwrap();
    assert!(apcm.match_event(&partial).is_empty());
}
