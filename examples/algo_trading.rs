//! Computational finance: price/volume alerting over a market tick stream —
//! the abstract's "computational finance" application.
//!
//! Traders register alert expressions ("MSFT below 310 on heavy volume",
//! "any symbol in my watchlist moving more than 2%"). Ticks arrive in
//! bursts; alerts churn constantly as positions open and close, which
//! exercises A-PCM's dynamic subscribe/unsubscribe path and its adaptive
//! maintenance (hot symbols shift during the session).
//!
//! ```sh
//! cargo run --release --example algo_trading
//! ```

use apcm::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

const SYMBOLS: usize = 500;

fn main() {
    let mut schema = Schema::new();
    let a_sym = schema
        .add_attr("symbol", Domain::new(0, SYMBOLS as Value - 1))
        .unwrap();
    // Prices in cents, changes in basis points (offset so the domain stays
    // non-negative: 10_000 = unchanged).
    let a_price = schema.add_attr("price_c", Domain::new(0, 500_000)).unwrap();
    let a_vol = schema
        .add_attr("volume_k", Domain::new(0, 100_000))
        .unwrap();
    let a_chg = schema
        .add_attr("change_bp", Domain::new(0, 20_000))
        .unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let base_price: Vec<Value> = (0..SYMBOLS)
        .map(|_| rng.gen_range(1_000..400_000))
        .collect();

    // Alert book: price floors/ceilings, volume spikes, movers.
    let mut alerts = Vec::new();
    let mut next_id = 0u32;
    for _ in 0..30_000 {
        let sym = rng.gen_range(0..SYMBOLS) as Value;
        let p = base_price[sym as usize];
        let kind = rng.gen_range(0..4);
        let preds = match kind {
            0 => vec![
                // Stop-loss: symbol below a floor.
                Predicate::new(a_sym, Op::Eq(sym)),
                Predicate::new(a_price, Op::Lt(p - rng.gen_range(0..p / 10).max(1))),
            ],
            1 => vec![
                // Breakout: symbol above a ceiling on volume.
                Predicate::new(a_sym, Op::Eq(sym)),
                Predicate::new(a_price, Op::Gt(p + rng.gen_range(0..p / 10).max(1))),
                Predicate::new(a_vol, Op::Ge(rng.gen_range(100..2_000))),
            ],
            2 => vec![
                // Watchlist mover: any of a few symbols over ±2%.
                Predicate::new(
                    a_sym,
                    Op::in_set(
                        (0..rng.gen_range(2..6))
                            .map(|_| rng.gen_range(0..SYMBOLS) as Value)
                            .collect::<Vec<_>>(),
                    )
                    .unwrap(),
                ),
                Predicate::new(a_chg, Op::Between(10_200, 20_000)),
            ],
            _ => vec![
                // Volume spike anywhere except the megacaps.
                Predicate::new(a_sym, Op::not_in_set(vec![0, 1, 2, 3]).unwrap()),
                Predicate::new(a_vol, Op::Gt(rng.gen_range(5_000..50_000))),
            ],
        };
        alerts.push(Subscription::new(SubId(next_id), preds).unwrap());
        next_id += 1;
    }

    let config = ApcmConfig {
        batch_size: 256,
        ..ApcmConfig::default()
    };
    let matcher = ApcmMatcher::build(&schema, &alerts, &config).unwrap();
    println!("alert book: {} expressions indexed", matcher.len());

    // Session: ticks arrive in windows; alert churn interleaves.
    let gen_tick = |rng: &mut StdRng, hot: usize| -> Event {
        // A "hot" sector concentrates activity on 1/10th of symbols.
        let sym = if rng.gen_bool(0.7) {
            (hot * SYMBOLS / 10 + rng.gen_range(0..SYMBOLS / 10)) as Value
        } else {
            rng.gen_range(0..SYMBOLS) as Value
        };
        let p = base_price[sym as usize];
        let swing = rng.gen_range(-(p / 8)..=(p / 8));
        EventBuilder::new()
            .set(a_sym, sym)
            .set(a_price, (p + swing).clamp(0, 500_000))
            .set(
                a_vol,
                // Volume is mostly quiet with occasional spikes, so spike
                // alerts fire rarely (as they would in production).
                if rng.gen_bool(0.02) {
                    rng.gen_range(5_000..100_000)
                } else {
                    rng.gen_range(0..3_000)
                },
            )
            .set(a_chg, (10_000 + swing * 10_000 / p.max(1)).clamp(0, 20_000))
            .build()
            .unwrap()
    };

    let start = Instant::now();
    let mut fired = 0usize;
    let mut ticks = 0usize;
    for minute in 0..20 {
        // The hot sector rotates during the session (drift).
        let hot = minute % 10;
        let window: Vec<Event> = (0..2_000).map(|_| gen_tick(&mut rng, hot)).collect();
        ticks += window.len();
        for row in matcher.match_batch(&window) {
            fired += row.len();
        }
        // Alert churn: cancel 50, register 50 fresh ones.
        for _ in 0..50 {
            let victim = SubId(rng.gen_range(0..next_id));
            if matcher.unsubscribe(victim) {
                let sym = rng.gen_range(0..SYMBOLS) as Value;
                let fresh = Subscription::new(
                    SubId(next_id),
                    vec![
                        Predicate::new(a_sym, Op::Eq(sym)),
                        Predicate::new(a_vol, Op::Gt(rng.gen_range(1_000..10_000))),
                    ],
                )
                .unwrap();
                matcher.subscribe(&fresh).unwrap();
                next_id += 1;
            }
        }
    }
    let elapsed = start.elapsed();
    println!(
        "session: {ticks} ticks in {elapsed:.2?} ({:.0} ticks/s), {fired} alerts fired",
        ticks as f64 / elapsed.as_secs_f64()
    );

    let stats = matcher.stats();
    println!(
        "engine after churn: {} alerts, {} clusters ({} compressed / {} direct), \
         {} maintenance passes, pending {}",
        stats.subscriptions,
        stats.clusters,
        stats.compressed_clusters,
        stats.direct_clusters,
        stats.maintenance_runs,
        stats.pending,
    );
    println!("prune rate {:.1}%", 100.0 * stats.prune_rate());
}
