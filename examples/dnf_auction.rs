//! DNF targeting + top-k ranking: a miniature ad auction.
//!
//! Campaigns target with full Boolean expressions — OR across audience
//! segments, AND within each — and carry a bid. Serving an impression means
//! (1) finding every eligible campaign and (2) ranking the top bids into
//! the auction. This example drives `DnfEngine` and `ScoredMatcher`
//! together on the same schema.
//!
//! ```sh
//! cargo run --release --example dnf_auction
//! ```

use apcm::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut schema = Schema::new();
    let a_age = schema.add_attr("age", Domain::new(13, 99)).unwrap();
    let a_geo = schema.add_attr("geo", Domain::new(0, 49)).unwrap();
    let a_interest = schema.add_attr("interest", Domain::new(0, 19)).unwrap();
    let a_device = schema.add_attr("device", Domain::new(0, 3)).unwrap();

    let mut rng = StdRng::seed_from_u64(2026);

    // DNF campaigns: "segment A or segment B".
    let mut dnfs = Vec::new();
    for i in 0..20_000u32 {
        let seg = |rng: &mut StdRng| -> Vec<Predicate> {
            let lo = rng.gen_range(13..70);
            let mut preds = vec![
                Predicate::new(a_age, Op::Between(lo, (lo + rng.gen_range(5..20)).min(99))),
                Predicate::new(a_interest, Op::Eq(rng.gen_range(0..20))),
            ];
            if rng.gen_bool(0.5) {
                preds.push(Predicate::new(a_geo, Op::Eq(rng.gen_range(0..50))));
            }
            preds
        };
        let n_segments = rng.gen_range(1..4);
        let clauses: Vec<Vec<Predicate>> = (0..n_segments).map(|_| seg(&mut rng)).collect();
        dnfs.push(DnfSubscription::new(SubId(i), clauses).unwrap());
    }
    let engine = DnfEngine::build(&schema, &dnfs, &ApcmConfig::default()).unwrap();
    println!(
        "DNF book: {} campaigns ({} clauses indexed)",
        engine.len(),
        engine.stats().subscriptions
    );

    // Flat (single-segment) variant of the same campaigns with bids, for
    // ranking. In production the DNF and scoring layers share one engine;
    // here they are separated to show both APIs.
    let bids: Vec<(Subscription, f64)> = dnfs
        .iter()
        .map(|d| {
            let clause = d.clauses().next().expect("non-empty");
            (
                Subscription::new(d.id(), clause.to_vec()).unwrap(),
                rng.gen_range(0.10..25.0),
            )
        })
        .collect();
    let auction = ScoredMatcher::build(&schema, &bids, &ApcmConfig::default()).unwrap();

    // Impressions.
    let impressions: Vec<Event> = (0..10_000)
        .map(|_| {
            EventBuilder::new()
                .set(a_age, rng.gen_range(13..=99))
                .set(a_geo, rng.gen_range(0..50))
                .set(a_interest, rng.gen_range(0..20))
                .set(a_device, rng.gen_range(0..4))
                .build()
                .unwrap()
        })
        .collect();

    let start = Instant::now();
    let eligible: usize = engine.match_batch(&impressions).iter().map(Vec::len).sum();
    let dnf_time = start.elapsed();
    println!(
        "DNF eligibility: {} impressions in {:.2?} ({:.0}/s), {:.1} eligible campaigns each",
        impressions.len(),
        dnf_time,
        impressions.len() as f64 / dnf_time.as_secs_f64(),
        eligible as f64 / impressions.len() as f64
    );

    let start = Instant::now();
    let mut auction_fills = 0usize;
    let mut revenue = 0.0f64;
    for imp in &impressions {
        let podium = auction.match_top_k(imp, 3);
        if let Some(&(_, winning_bid)) = podium.first() {
            auction_fills += 1;
            // Second-price: the winner pays the runner-up's bid.
            revenue += podium.get(1).map(|&(_, b)| b).unwrap_or(winning_bid);
        }
    }
    let auction_time = start.elapsed();
    println!(
        "auction: {:.0} impressions/s, fill rate {:.1}%, second-price revenue ${:.2}",
        impressions.len() as f64 / auction_time.as_secs_f64(),
        100.0 * auction_fills as f64 / impressions.len() as f64,
        revenue
    );

    // One concrete auction, end to end.
    let sample =
        parser::parse_event(&schema, "age = 30, geo = 7, interest = 4, device = 1").unwrap();
    let podium = auction.match_top_k(&sample, 3);
    println!("sample impression podium:");
    for (rank, (id, bid)) in podium.iter().enumerate() {
        println!("  #{} campaign {} bidding ${:.2}", rank + 1, id, bid);
    }
}
