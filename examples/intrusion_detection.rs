//! Intrusion detection: match network flow records against detection rules
//! in real time — one of the abstract's real-time analysis applications.
//!
//! Rules are conjunctions over flow features (protocol, ports, sizes, flag
//! bits, rates). Flows arrive far faster than any per-rule scan can handle,
//! and sub-second detection latency matters, so flows are buffered into
//! small OSR windows: inside a window, similar flows (port scans, floods)
//! are matched back-to-back against the same rule clusters.
//!
//! ```sh
//! cargo run --release --example intrusion_detection
//! ```

use apcm::core::OsrBuffer;
use apcm::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut schema = Schema::new();
    let a_proto = schema.add_attr("proto", Domain::new(0, 2)).unwrap(); // tcp/udp/icmp
    let a_dport = schema.add_attr("dst_port", Domain::new(0, 65_535)).unwrap();
    let a_sport = schema.add_attr("src_port", Domain::new(0, 65_535)).unwrap();
    let a_bytes = schema.add_attr("bytes_kb", Domain::new(0, 10_000)).unwrap();
    let a_pkts = schema.add_attr("packets", Domain::new(0, 100_000)).unwrap();
    let a_flags = schema.add_attr("tcp_flags", Domain::new(0, 63)).unwrap();
    let a_subnet = schema.add_attr("src_subnet", Domain::new(0, 255)).unwrap();

    // A rule book: hand-written signatures plus generated per-subnet rules.
    let mut texts = vec![
        // SYN-flood shape: many packets, few bytes, SYN-only flags.
        "proto = 0 AND packets > 5000 AND bytes_kb < 100 AND tcp_flags = 2".to_string(),
        // Exfiltration: huge outbound transfer on a non-standard port.
        "bytes_kb > 5000 AND dst_port NOT IN {80, 443, 22}".to_string(),
        // Telnet/SMB probing.
        "proto = 0 AND dst_port IN {23, 445, 3389}".to_string(),
        // ICMP tunnelling: oversized pings.
        "proto = 2 AND bytes_kb > 64".to_string(),
        // NULL scan: tcp with no flags.
        "proto = 0 AND tcp_flags = 0 AND packets < 10".to_string(),
    ];
    // Per-subnet volumetric rules (one family per watched subnet).
    for subnet in 0..200 {
        texts.push(format!(
            "src_subnet = {subnet} AND packets > {}",
            1000 + subnet * 37
        ));
        texts.push(format!(
            "src_subnet = {subnet} AND dst_port < 1024 AND bytes_kb > {}",
            500 + subnet * 11
        ));
    }
    let rules: Vec<Subscription> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| parser::parse_subscription_with_id(&schema, SubId(i as u32), t).unwrap())
        .collect();

    let config = ApcmConfig::default().with_batch_size(128);
    let matcher = ApcmMatcher::build(&schema, &rules, &config).unwrap();
    println!("rule book: {} detection rules indexed", matcher.len());

    // Synthesize a flow stream with attack bursts mixed into background
    // traffic.
    let mut rng = StdRng::seed_from_u64(1999);
    let mut gen_flow = |attack: bool| -> Event {
        if attack {
            // SYN flood burst from subnet 13.
            EventBuilder::new()
                .set(a_proto, 0)
                .set(a_dport, 80)
                .set(a_sport, rng.gen_range(1024..65_536))
                .set(a_bytes, rng.gen_range(0..50))
                .set(a_pkts, rng.gen_range(6_000..50_000))
                .set(a_flags, 2)
                .set(a_subnet, 13)
                .build()
                .unwrap()
        } else {
            EventBuilder::new()
                .set(a_proto, rng.gen_range(0..3))
                .set(
                    a_dport,
                    *[80, 443, 22, 53, 8080].get(rng.gen_range(0..5)).unwrap(),
                )
                .set(a_sport, rng.gen_range(1024..65_536))
                .set(a_bytes, rng.gen_range(0..800))
                .set(a_pkts, rng.gen_range(1..900))
                .set(a_flags, 24)
                .set(a_subnet, rng.gen_range(0..256))
                .build()
                .unwrap()
        }
    };

    let mut window_buffer = OsrBuffer::new(128);
    let mut alerts = 0usize;
    let mut flows = 0usize;
    let start = Instant::now();
    for i in 0..50_000 {
        // 5% of traffic is an attack burst arriving in clumps.
        let attack = (i / 500) % 10 == 9;
        flows += 1;
        if let Some(window) = window_buffer.push(gen_flow(attack)) {
            for row in matcher.match_batch(&window) {
                alerts += row.len();
            }
        }
    }
    let tail = window_buffer.flush();
    if !tail.is_empty() {
        for row in matcher.match_batch(&tail) {
            alerts += row.len();
        }
    }
    let elapsed = start.elapsed();
    println!(
        "analyzed {flows} flows in {elapsed:.2?} ({:.0} flows/s), {alerts} rule hits",
        flows as f64 / elapsed.as_secs_f64()
    );

    // Inspect a single malicious flow.
    let flood = parser::parse_event(
        &schema,
        "proto = 0, dst_port = 80, src_port = 4242, bytes_kb = 10, packets = 9000, \
         tcp_flags = 2, src_subnet = 13",
    )
    .unwrap();
    println!("sample SYN-flood flow triggers:");
    for id in matcher.match_event(&flood) {
        println!("  rule {}: {}", id, rules[id.index()].display(&schema));
    }

    let stats = matcher.stats();
    println!(
        "engine: prune rate {:.1}% across {} cluster probes",
        100.0 * stats.prune_rate(),
        stats.probes
    );
}
