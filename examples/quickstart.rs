//! Quickstart: index a handful of Boolean expressions and match events.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use apcm::prelude::*;

fn main() {
    // 1. Declare the attribute space: each attribute has a discrete domain.
    let mut schema = Schema::new();
    schema.add_attr("age", Domain::new(0, 120)).unwrap();
    schema.add_attr("city", Domain::new(0, 999)).unwrap();
    schema.add_attr("category", Domain::new(0, 49)).unwrap();
    schema.add_attr("price", Domain::new(0, 10_000)).unwrap();

    // 2. Author subscriptions in the text format (conjunctions only).
    let texts = [
        "age >= 18 AND city = 7",
        "age BETWEEN 25 AND 35 AND category IN {3, 4, 5}",
        "price < 500 AND category = 3",
        "city != 7 AND price BETWEEN 100 AND 200",
    ];
    let subs: Vec<Subscription> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| {
            parser::parse_subscription_with_id(&schema, SubId(i as u32), t)
                .expect("example subscriptions parse")
        })
        .collect();

    // 3. Build the A-PCM matcher (compressed clusters, all cores, OSR on).
    let matcher = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default())
        .expect("corpus validates against the schema");
    println!("indexed {} subscriptions", matcher.len());

    // 4. Match events. Results arrive as sorted subscription ids.
    let events = [
        "age = 30, city = 7, category = 3, price = 450",
        "age = 30, city = 2, category = 3, price = 150",
        "age = 16, city = 7",
    ];
    for text in events {
        let ev = parser::parse_event(&schema, text).expect("example events parse");
        let matches = matcher.match_event(&ev);
        println!("event [{text}]");
        match matches.as_slice() {
            [] => println!("  -> no subscription matches"),
            ids => {
                for id in ids {
                    println!("  -> matches #{id}: {}", subs[id.index()].display(&schema));
                }
            }
        }
    }

    // 5. Subscriptions can be added and removed at runtime.
    let late = parser::parse_subscription_with_id(&schema, SubId(99), "price > 9000").unwrap();
    matcher.subscribe(&late).unwrap();
    let ev = parser::parse_event(&schema, "price = 9500").unwrap();
    assert_eq!(matcher.match_event(&ev), vec![SubId(99)]);
    matcher.unsubscribe(SubId(99));
    assert!(matcher.match_event(&ev).is_empty());
    println!("dynamic subscribe/unsubscribe ok");

    // 6. Inspect the engine.
    let stats = matcher.stats();
    println!(
        "stats: {} clusters ({} compressed, {} direct), predicate space {} bits",
        stats.clusters, stats.compressed_clusters, stats.direct_clusters, stats.width
    );
}
