//! Computational advertising: match ad impressions against campaign
//! targeting expressions — the abstract's first motivating application.
//!
//! Campaigns target user segments with Boolean expressions over profile
//! attributes ("age 25–40, region in {US, CA}, interest = sports, device !=
//! desktop"). Every impression (one user visit) must be matched against the
//! whole campaign book within the ad-serving latency budget.
//!
//! String-valued attributes are dictionary-encoded into the discrete space,
//! which is how production systems front a bitmap matcher.
//!
//! ```sh
//! cargo run --release --example ad_targeting
//! ```

use apcm::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// Dictionary-encodes strings to dense domain values.
struct Dict {
    ids: HashMap<String, Value>,
}

impl Dict {
    fn new(terms: &[&str]) -> Self {
        Self {
            ids: terms
                .iter()
                .enumerate()
                .map(|(i, t)| (t.to_string(), i as Value))
                .collect(),
        }
    }
    fn id(&self, term: &str) -> Value {
        self.ids[term]
    }
    fn len(&self) -> usize {
        self.ids.len()
    }
}

fn main() {
    let regions = Dict::new(&["us", "ca", "uk", "de", "fr", "jp", "br", "in"]);
    let devices = Dict::new(&["desktop", "mobile", "tablet", "tv"]);
    let interests = Dict::new(&[
        "sports", "tech", "fashion", "travel", "food", "autos", "finance", "gaming", "music",
        "film",
    ]);

    let mut schema = Schema::new();
    let a_age = schema.add_attr("age", Domain::new(13, 99)).unwrap();
    let a_region = schema
        .add_attr("region", Domain::new(0, regions.len() as Value - 1))
        .unwrap();
    let a_device = schema
        .add_attr("device", Domain::new(0, devices.len() as Value - 1))
        .unwrap();
    let a_interest = schema
        .add_attr("interest", Domain::new(0, interests.len() as Value - 1))
        .unwrap();
    let a_hour = schema.add_attr("hour", Domain::new(0, 23)).unwrap();
    let a_income = schema.add_attr("income_band", Domain::new(0, 9)).unwrap();

    // Build a campaign book: 50k campaigns with realistic targeting shapes.
    let mut rng = StdRng::seed_from_u64(2014);
    let mut campaigns = Vec::new();
    for i in 0..50_000u32 {
        let lo = rng.gen_range(13..60);
        let hi = lo + rng.gen_range(5..25);
        let mut preds = vec![
            Predicate::new(a_age, Op::Between(lo, hi.min(99))),
            Predicate::new(
                a_interest,
                Op::Eq(rng.gen_range(0..interests.len() as Value)),
            ),
        ];
        if rng.gen_bool(0.6) {
            let k = rng.gen_range(1..4);
            let set: Vec<Value> = (0..k)
                .map(|_| rng.gen_range(0..regions.len() as Value))
                .collect();
            preds.push(Predicate::new(a_region, Op::in_set(set).unwrap()));
        }
        if rng.gen_bool(0.3) {
            preds.push(Predicate::new(
                a_device,
                Op::Ne(rng.gen_range(0..devices.len() as Value)),
            ));
        }
        if rng.gen_bool(0.2) {
            let start = rng.gen_range(0..20);
            preds.push(Predicate::new(a_hour, Op::Between(start, start + 4)));
        }
        if rng.gen_bool(0.25) {
            preds.push(Predicate::new(a_income, Op::Ge(rng.gen_range(0..8))));
        }
        campaigns.push(Subscription::new(SubId(i), preds).unwrap());
    }

    let matcher = ApcmMatcher::build(&schema, &campaigns, &ApcmConfig::default()).unwrap();
    println!(
        "campaign book: {} targeting expressions indexed",
        matcher.len()
    );

    // Serve a stream of impressions in OSR windows.
    let mut impressions = Vec::with_capacity(20_000);
    for _ in 0..20_000 {
        impressions.push(
            EventBuilder::new()
                .set(a_age, rng.gen_range(13..=99))
                .set(a_region, rng.gen_range(0..regions.len() as Value))
                .set(a_device, rng.gen_range(0..devices.len() as Value))
                .set(a_interest, rng.gen_range(0..interests.len() as Value))
                .set(a_hour, rng.gen_range(0..=23))
                .set(a_income, rng.gen_range(0..=9))
                .build()
                .unwrap(),
        );
    }

    let start = Instant::now();
    let rows = matcher.match_batch(&impressions);
    let elapsed = start.elapsed();
    let total_eligible: usize = rows.iter().map(Vec::len).sum();
    println!(
        "served {} impressions in {:.2?} ({:.0} impressions/s)",
        impressions.len(),
        elapsed,
        impressions.len() as f64 / elapsed.as_secs_f64()
    );
    println!(
        "eligible campaigns per impression: {:.1} average",
        total_eligible as f64 / rows.len() as f64
    );

    // Show one auction's candidate set.
    let sample = parser::parse_event(
        &schema,
        &format!(
            "age = 30, region = {}, device = {}, interest = {}, hour = 20, income_band = 5",
            regions.id("us"),
            devices.id("mobile"),
            interests.id("tech"),
        ),
    )
    .unwrap();
    let eligible = matcher.match_event(&sample);
    println!(
        "sample impression (30yo, us, mobile, tech, 8pm): {} eligible campaigns",
        eligible.len()
    );
    for id in eligible.iter().take(3) {
        println!(
            "  e.g. campaign {}: {}",
            id,
            campaigns[id.index()].display(&schema)
        );
    }

    let stats = matcher.stats();
    println!(
        "engine: {} clusters, prune rate {:.1}%, {:.1} MiB of bitmaps",
        stats.clusters,
        100.0 * stats.prune_rate(),
        stats.heap_bytes as f64 / (1024.0 * 1024.0)
    );
}
