//! E9 (Criterion micro-version) — compression ablation: cluster size bound
//! and clustering policy.
//!
//! Full sweep with memory and prune-rate columns: `harness --experiment e9`.

use apcm_bexpr::Matcher;
use apcm_core::{ApcmConfig, ClusteringPolicy, PcmMatcher};
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let wl = WorkloadSpec::new(20_000).seed(42).build();
    let events = wl.events(256);

    let mut group = c.benchmark_group("e09_compression");
    group.throughput(Throughput::Elements(events.len() as u64));
    for (pname, policy) in [
        ("pivot", ClusteringPolicy::PivotPredicate),
        ("sorted", ClusteringPolicy::SortedSignature),
        (
            "greedy",
            ClusteringPolicy::GreedyLeader {
                threshold: 0.3,
                window: 32,
            },
        ),
    ] {
        for max_size in [1usize, 64, 1024] {
            let config = ApcmConfig {
                clustering: policy,
                max_cluster_size: max_size,
                ..ApcmConfig::pcm()
            };
            let matcher = PcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            group.bench_with_input(BenchmarkId::new(pname, max_size), &events, |b, evs| {
                b.iter(|| matcher.match_batch(evs))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
