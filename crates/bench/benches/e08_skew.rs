//! E8 (Criterion micro-version) — throughput vs value skew.
//!
//! Full sweep: `harness --experiment e8`.

use apcm_bench::EngineKind;
use apcm_workload::{ValueDist, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_skew");
    for s in [0.0f64, 1.0, 2.0] {
        let dist = if s == 0.0 {
            ValueDist::Uniform
        } else {
            ValueDist::Zipf(s)
        };
        let wl = WorkloadSpec::new(10_000).values(dist).seed(42).build();
        let events = wl.events(256);
        group.throughput(Throughput::Elements(events.len() as u64));
        for kind in [EngineKind::BeTree, EngineKind::Pcm, EngineKind::Apcm] {
            let (matcher, _) = kind.build(&wl);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("s{s}")),
                &events,
                |b, evs| b.iter(|| matcher.match_batch(evs)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
