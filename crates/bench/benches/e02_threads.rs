//! E2 (Criterion micro-version) — thread scalability and executor ablation.
//!
//! Full sweep: `harness --experiment e2`. On a single-core host the curve is
//! flat by construction; the bench still validates that the parallel paths
//! carry no pathological overhead versus the sequential executor.

use apcm_bexpr::Matcher;
use apcm_core::{ApcmConfig, ApcmMatcher, Executor};
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let wl = WorkloadSpec::new(20_000).seed(42).build();
    let events = wl.events(256);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // On a single-core host the sweep degenerates to one point.
    let mut thread_counts = vec![1usize];
    if max_threads > 1 {
        thread_counts.push(max_threads);
    }

    let mut group = c.benchmark_group("e02_threads");
    group.throughput(Throughput::Elements(events.len() as u64));
    for (label, executor) in [
        ("sequential", Executor::Sequential),
        ("rayon", Executor::Rayon),
        ("crossbeam", Executor::Crossbeam),
    ] {
        for &threads in &thread_counts {
            let config = ApcmConfig {
                executor,
                ..ApcmConfig::default().with_threads(threads)
            };
            let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            group.bench_with_input(BenchmarkId::new(label, threads), &events, |b, evs| {
                b.iter(|| matcher.match_batch(evs))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
