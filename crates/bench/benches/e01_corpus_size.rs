//! E1 (Criterion micro-version) — matching throughput vs corpus size.
//!
//! The headline experiment: the sequential scan collapses linearly with the
//! corpus while the compressed engines stay flat-ish. Full sweep:
//! `cargo run --release -p apcm-bench --bin harness -- --experiment e1`.

use apcm_bench::EngineKind;
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_corpus_size");
    for n in [5_000usize, 20_000] {
        let wl = WorkloadSpec::new(n).seed(42).build();
        let events = wl.events(256);
        group.throughput(Throughput::Elements(events.len() as u64));
        for kind in [
            EngineKind::Scan,
            EngineKind::Counting,
            EngineKind::BeTree,
            EngineKind::Pcm,
            EngineKind::Apcm,
        ] {
            let (matcher, _) = kind.build(&wl);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &events, |b, evs| {
                b.iter(|| matcher.match_batch(evs));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
