//! E12 (Criterion micro-version) — index construction and dynamic
//! maintenance.
//!
//! Full table with per-engine build rates: `harness --experiment e12`.

use apcm_bench::EngineKind;
use apcm_bexpr::{SubId, Subscription};
use apcm_core::{ApcmConfig, ApcmMatcher};
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let wl = WorkloadSpec::new(10_000).seed(42).build();

    let mut group = c.benchmark_group("e12_build");
    group.throughput(Throughput::Elements(wl.subs.len() as u64));
    for kind in [
        EngineKind::Counting,
        EngineKind::KIndex,
        EngineKind::BeTree,
        EngineKind::Pcm,
        EngineKind::Apcm,
    ] {
        group.bench_function(BenchmarkId::new("build", kind.name()), |b| {
            b.iter(|| kind.build(&wl));
        });
    }

    // Dynamic churn on A-PCM: subscribe + unsubscribe round trips.
    let extra = WorkloadSpec::new(512).seed(43).build();
    let fresh: Vec<Subscription> = extra
        .subs
        .iter()
        .map(|s| Subscription::new(SubId(s.id().0 + 1_000_000), s.predicates().to_vec()).unwrap())
        .collect();
    let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::default()).unwrap();
    group.throughput(Throughput::Elements(fresh.len() as u64));
    group.bench_function("apcm_churn_roundtrip", |b| {
        b.iter(|| {
            for sub in &fresh {
                matcher.subscribe(sub).unwrap();
            }
            for sub in &fresh {
                matcher.unsubscribe(sub.id());
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
