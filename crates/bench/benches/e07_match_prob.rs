//! E7 (Criterion micro-version) — throughput vs matching probability.
//!
//! Full sweep: `harness --experiment e7`.

use apcm_bench::EngineKind;
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_match_prob");
    for p in [0.001f64, 0.05, 0.5] {
        let wl = WorkloadSpec::new(10_000)
            .planted_fraction(p)
            .seed(42)
            .build();
        let events = wl.events(256);
        group.throughput(Throughput::Elements(events.len() as u64));
        for kind in [EngineKind::BeTree, EngineKind::Pcm, EngineKind::Apcm] {
            let (matcher, _) = kind.build(&wl);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("p{p}")),
                &events,
                |b, evs| b.iter(|| matcher.match_batch(evs)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
