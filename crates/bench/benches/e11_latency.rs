//! E11 (Criterion micro-version) — single-event matching latency.
//!
//! Percentile table: `harness --experiment e11`.

use apcm_bench::EngineKind;
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let wl = WorkloadSpec::new(20_000).seed(42).build();
    let events = wl.events(64);

    let mut group = c.benchmark_group("e11_latency");
    for kind in [
        EngineKind::Counting,
        EngineKind::KIndex,
        EngineKind::BeTree,
        EngineKind::Pcm,
        EngineKind::Apcm,
    ] {
        let (matcher, _) = kind.build(&wl);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new(kind.name(), "event"), |b| {
            b.iter(|| {
                let ev = &events[i % events.len()];
                i += 1;
                matcher.match_event(ev)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
