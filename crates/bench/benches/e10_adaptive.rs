//! E10 (Criterion micro-version) — adaptivity under drift: static PCM
//! configuration vs A-PCM with epoch maintenance on a drifting stream.
//!
//! Full phase-by-phase sweep: `harness --experiment e10`.

use apcm_bexpr::{Event, Matcher};
use apcm_core::{AdaptiveConfig, ApcmConfig, ApcmMatcher};
use apcm_workload::{DriftingStream, ValueDist, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let wl = WorkloadSpec::new(20_000)
        .values(ValueDist::Zipf(1.0))
        .planted_fraction(0.02)
        .seed(42)
        .build();
    // A drifted window: hot values rotated away from the build-time
    // distribution.
    let drifted: Vec<Event> = DriftingStream::new(&wl, 64, 211, 7)
        .skip(1024)
        .take(512)
        .collect();

    let configs = [
        (
            "static",
            ApcmConfig {
                adaptive: AdaptiveConfig::disabled(),
                ..ApcmConfig::default()
            },
        ),
        (
            "adaptive",
            ApcmConfig {
                adaptive: AdaptiveConfig {
                    epoch_events: 256,
                    min_probes: 16,
                    ..AdaptiveConfig::default()
                },
                ..ApcmConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("e10_adaptive");
    group.throughput(Throughput::Elements(drifted.len() as u64));
    for (label, config) in configs {
        let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
        // Warm the counters so the adaptive engine has had epochs to react.
        for chunk in drifted.chunks(128) {
            let _ = matcher.match_batch(chunk);
        }
        group.bench_with_input(BenchmarkId::new(label, "drifted"), &drifted, |b, evs| {
            b.iter(|| matcher.match_batch(evs));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
