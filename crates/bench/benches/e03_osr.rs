//! E3 (Criterion micro-version) — OSR batch size and re-ordering ablation.
//!
//! Full sweep: `harness --experiment e3`.

use apcm_bexpr::Matcher;
use apcm_core::{AdaptiveConfig, ApcmConfig, ApcmMatcher};
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let wl = WorkloadSpec::new(20_000)
        .seed(42)
        .planted_fraction(0.05)
        .build();
    let events = wl.events(1024);

    let mut group = c.benchmark_group("e03_osr");
    group.throughput(Throughput::Elements(events.len() as u64));
    for reorder in [false, true] {
        for batch in [1usize, 64, 1024] {
            let config = ApcmConfig {
                batch_size: batch,
                reorder,
                adaptive: AdaptiveConfig::disabled(),
                ..ApcmConfig::default()
            };
            let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            let label = if reorder { "reorder" } else { "fifo" };
            group.bench_with_input(BenchmarkId::new(label, batch), &events, |b, evs| {
                b.iter(|| matcher.match_batch(evs));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
