//! Kernel micro-benchmark for the flattened match hot path (PR 3).
//!
//! Three variants of the same single-event kernel over one workload:
//!
//! * `alloc_per_event` — the pre-refactor shape: a fresh encoded bitmap,
//!   candidate list, and result row allocated for every event;
//! * `scratch_reuse` — the shipped path: one thread-local
//!   [`apcm_core::MatchScratch`] reused across events (including probe
//!   counting and the batched counter flush);
//! * `arena_sweep` — the raw CSR arena kernel with the pivot index disabled:
//!   every cluster's `match_words` on every event, upper-bounding kernel
//!   cost without access pruning.
//!
//! The binary also installs a counting global allocator and, after a warm-up
//! pass has sized every scratch buffer, *asserts* that the steady-state
//! scratch path performs zero heap allocations per event — the
//! demonstration backing the PR's zero-alloc claim.

use apcm_core::{clustering, scratch, ApcmConfig, ClusterIndex};
use apcm_encoding::PredicateSpace;
use apcm_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation made by this benchmark binary.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Fixture {
    space: PredicateSpace,
    index: ClusterIndex,
    events: Vec<apcm_bexpr::Event>,
}

fn fixture() -> Fixture {
    let wl = WorkloadSpec::new(20_000)
        .planted_fraction(0.05)
        .seed(42)
        .build();
    let events = wl.events(256);
    let (space, encoded) = PredicateSpace::build(&wl.schema, &wl.subs).unwrap();
    let config = ApcmConfig::default();
    let selectivity = clustering::selectivity_table(&space);
    let clusters = config
        .clustering
        .cluster(&encoded, config.max_cluster_size, &selectivity);
    let index = ClusterIndex::build(clusters, space.width(), &selectivity);
    Fixture {
        space,
        index,
        events,
    }
}

/// One full pass over the event set on the scratch path; returns total hits.
fn scratch_pass(f: &Fixture) -> usize {
    scratch::with_scratch(|s| {
        s.ensure_width(f.space.width());
        s.counts.ensure(f.index.len());
        let mut total = 0usize;
        for ev in &f.events {
            f.space.encode_event_into(ev, &mut s.ebits);
            f.index.candidates_into(s.ebits.words(), &mut s.candidates);
            s.row.clear();
            for &idx in &s.candidates {
                let probe = f.index.probe_words(idx, s.ebits.words(), &mut s.row);
                s.counts.count(idx, probe);
            }
            s.counts.flush(f.index.clusters(), None);
            total += s.row.len();
        }
        total
    })
}

/// The same pass with the pre-refactor allocation shape.
fn alloc_pass(f: &Fixture) -> usize {
    let mut total = 0usize;
    for ev in &f.events {
        let ebits = f.space.encode_event(ev);
        let candidates = f.index.candidates(&ebits);
        let mut row = Vec::new();
        for &idx in &candidates {
            let _ = f.index.probe_words(idx, ebits.words(), &mut row);
        }
        total += row.len();
    }
    total
}

fn bench(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("kernel_match");
    group.throughput(Throughput::Elements(f.events.len() as u64));

    group.bench_function("alloc_per_event", |b| b.iter(|| alloc_pass(&f)));
    group.bench_function("scratch_reuse", |b| b.iter(|| scratch_pass(&f)));

    // Raw arena kernel: no pivot pruning, every cluster probed per event.
    let enc: Vec<_> = f.events.iter().map(|ev| f.space.encode_event(ev)).collect();
    let mut out = Vec::new();
    group.bench_function("arena_sweep", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for ebits in &enc {
                for cluster in f.index.clusters() {
                    out.clear();
                    hits += u64::from(cluster.match_words(ebits.words(), &mut out).hits);
                }
            }
            hits
        })
    });
    group.finish();
}

/// Allocation counts per event, measured (not timed) on both paths.
fn steady_state_allocs(_c: &mut Criterion) {
    let f = fixture();
    const PASSES: u64 = 10;
    let per_event = |pass: &dyn Fn(&Fixture) -> usize| -> f64 {
        let _ = pass(&f); // warm-up sizes every reused buffer
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..PASSES {
            let _ = std::hint::black_box(pass(&f));
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        (after - before) as f64 / (PASSES * f.events.len() as u64) as f64
    };

    let reused = per_event(&scratch_pass);
    let fresh = per_event(&alloc_pass);
    println!("\n## kernel_match/steady_state_allocs");
    println!("scratch_reuse: {reused:.3} allocs/event");
    println!("alloc_per_event: {fresh:.3} allocs/event");
    assert_eq!(
        reused, 0.0,
        "steady-state scratch path must not allocate per event"
    );
    assert!(
        fresh >= 1.0,
        "per-event allocation baseline should allocate at least once per event"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench, steady_state_allocs
}
criterion_main!(benches);
