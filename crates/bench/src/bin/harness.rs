//! Experiment harness: regenerates every table/figure of the evaluation.
//!
//! ```sh
//! cargo run --release -p apcm-bench --bin harness -- --experiment all
//! cargo run --release -p apcm-bench --bin harness -- --experiment e1 --scale 0.1
//! ```
//!
//! `--scale` multiplies the paper-scale corpus sizes (1.0 = the paper's
//! 5M-expression setting; the default 0.02 finishes a full pass in minutes
//! on a laptop). Shapes — who wins, by what factor, where crossovers sit —
//! are scale-stable; absolute events/s are hardware-dependent. See
//! EXPERIMENTS.md for recorded runs and the paper-vs-measured discussion.

use apcm_bench::{fmt_bytes, fmt_rate, measure_latency, measure_throughput, EngineKind, Table};
use apcm_bexpr::{AttrId, Event, Matcher, Op, Predicate, Schema, SubId, Subscription};
use apcm_cluster::{ClusterHandle, RouterConfig};
use apcm_core::{AdaptiveConfig, ApcmConfig, ApcmMatcher, ClusteringPolicy, Executor, PcmMatcher};
use apcm_server::{
    route_partition, BrokerClient, EngineChoice, IoModel, PersistConfig, Ring, Server,
    ServerConfig, ServerStats, SnapshotFormat,
};
use apcm_workload::{DriftingStream, ValueDist, Workload, WorkloadSpec};
use std::time::{Duration, Instant};

struct Args {
    experiment: String,
    scale: f64,
    budget: Duration,
    seed: u64,
    /// `--json PATH`: also write every measured cell as a JSON array.
    json: Option<String>,
    /// `--json-append PATH`: merge this run's cells into an existing JSON
    /// array file (created if absent) — used to accumulate before/after
    /// records across runs into one committed file.
    json_append: Option<String>,
    records: std::cell::RefCell<Vec<Record>>,
}

/// One measured cell, for machine-readable output. `metric` names what
/// `value` measures (`events_per_sec`, `latency_p99_us`, `build_secs`,
/// `ops_per_sec`, ...), so every experiment — throughput sweeps, latency
/// percentiles, build/maintenance costs — lands in one JSON shape.
struct Record {
    experiment: &'static str,
    algorithm: String,
    /// The swept parameter for this cell (e.g. `n=100000`, `b=64`).
    param: String,
    metric: &'static str,
    value: f64,
}

impl Args {
    /// Records one measured cell for `--json` output (no-op without it).
    fn record(
        &self,
        experiment: &'static str,
        algorithm: &str,
        param: String,
        metric: &'static str,
        value: f64,
    ) {
        if self.json.is_some() || self.json_append.is_some() {
            self.records.borrow_mut().push(Record {
                experiment,
                algorithm: algorithm.to_string(),
                param,
                metric,
                value,
            });
        }
    }

    fn write_json(&self) -> std::io::Result<()> {
        let records = self.records.borrow();
        let lines: Vec<String> = records
            .iter()
            .map(|r| {
                format!(
                    "{{\"experiment\": {}, \"algorithm\": {}, \"param\": {}, \
                     \"metric\": {}, \"value\": {:.3}}}",
                    json_str(r.experiment),
                    json_str(&r.algorithm),
                    json_str(&r.param),
                    json_str(r.metric),
                    r.value,
                )
            })
            .collect();
        if let Some(path) = &self.json {
            std::fs::write(path, render_array(&lines))?;
            println!("wrote {} records to {path}", lines.len());
        }
        if let Some(path) = &self.json_append {
            // The file is the harness's own line-per-record array format, so
            // merging is re-collecting the record lines and rewriting.
            let mut merged: Vec<String> = match std::fs::read_to_string(path) {
                Ok(text) => text
                    .lines()
                    .map(str::trim)
                    .filter(|l| l.starts_with('{'))
                    .map(|l| l.trim_end_matches(',').to_string())
                    .collect(),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            merged.extend(lines.iter().cloned());
            std::fs::write(path, render_array(&merged))?;
            println!(
                "appended {} records to {path} ({} total)",
                lines.len(),
                merged.len()
            );
        }
        Ok(())
    }
}

/// Renders record lines as a pretty-printed JSON array.
fn render_array(lines: &[String]) -> String {
    let mut out = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str("  ");
        out.push_str(line);
        out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// JSON string literal; the harness only emits ASCII labels, so escaping
/// quotes and backslashes (plus control characters) is sufficient.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_string(),
        scale: 0.02,
        budget: Duration::from_millis(1500),
        seed: 42,
        json: None,
        json_append: None,
        records: std::cell::RefCell::new(Vec::new()),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--experiment" | "-e" => args.experiment = value().to_lowercase(),
            "--scale" | "-s" => args.scale = value().parse().expect("numeric --scale"),
            "--budget-ms" => {
                args.budget = Duration::from_millis(value().parse().expect("numeric --budget-ms"))
            }
            "--seed" => args.seed = value().parse().expect("numeric --seed"),
            "--json" => args.json = Some(value()),
            "--json-append" => args.json_append = Some(value()),
            "--help" | "-h" => {
                println!(
                    "usage: harness [--experiment e1..e18|all] [--scale F] [--budget-ms N] \
                     [--seed N] [--json PATH] [--json-append PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Paper-scale corpus size, scaled down for laptop runs, floored at 1k.
fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(1_000)
}

fn base_spec(n: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec::new(n).seed(seed)
}

fn main() {
    let args = parse_args();
    // Child-process server mode for E17 — must run before the banner so
    // the parent can parse this process's first stdout line as `ADDR`.
    if args.experiment.starts_with("e17-serve") {
        e17_serve(&args.experiment);
        return;
    }
    println!(
        "# A-PCM evaluation harness — scale={}, budget={:?}/cell, seed={}, {} cores",
        args.scale,
        args.budget,
        args.seed,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    println!();
    let run_all = args.experiment == "all";
    let want = |id: &str| run_all || args.experiment == id;

    if want("e1") {
        e1_corpus_size(&args);
    }
    if want("e2") {
        e2_threads(&args);
    }
    if want("e3") {
        e3_osr(&args);
    }
    if want("e4") {
        e4_sub_size(&args);
    }
    if want("e5") {
        e5_event_size(&args);
    }
    if want("e6") {
        e6_dims(&args);
    }
    if want("e7") {
        e7_match_prob(&args);
    }
    if want("e8") {
        e8_skew(&args);
    }
    if want("e9") {
        e9_compression(&args);
    }
    if want("e10") {
        e10_adaptive(&args);
    }
    if want("e11") {
        e11_latency(&args);
    }
    if want("e12") {
        e12_build(&args);
    }
    if want("e13") {
        e13_cluster(&args);
    }
    if want("e14") {
        e14_replication(&args);
    }
    if want("e15") {
        e15_colstore(&args);
    }
    if want("e16") {
        e16_resharding(&args);
    }
    if want("e17") {
        e17_netio(&args);
    }
    if want("e18") {
        e18_chains(&args);
    }
    if let Err(e) = args.write_json() {
        eprintln!("error writing --json output: {e}");
        std::process::exit(1);
    }
}

/// E1 — headline: throughput vs corpus size, all engines. The abstract's
/// claim is A-PCM at 233,863 ev/s vs a sequential matcher at 36 ev/s with
/// 5M expressions; the reproduction target is the *ratio and its growth*
/// with corpus size.
fn e1_corpus_size(args: &Args) {
    println!("## E1 — matching throughput vs corpus size (events/s)\n");
    let sizes: Vec<usize> = [100_000usize, 500_000, 1_000_000, 2_500_000, 5_000_000]
        .iter()
        .map(|&b| scaled(b, args.scale))
        .collect();
    let mut headers = vec!["engine".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s}")));
    let mut table = Table::new(headers);
    let workloads: Vec<Workload> = sizes
        .iter()
        .map(|&n| base_spec(n, args.seed).build())
        .collect();
    for kind in EngineKind::ALL {
        let mut cells = vec![kind.name().to_string()];
        for (wl, &n) in workloads.iter().zip(&sizes) {
            let (matcher, _) = kind.build(wl);
            let events = wl.events(20_000);
            let t = measure_throughput(matcher.as_ref(), &events, args.budget);
            args.record(
                "e1",
                kind.name(),
                format!("n={n}"),
                "events_per_sec",
                t.events_per_sec,
            );
            cells.push(fmt_rate(t.events_per_sec));
        }
        table.row(cells);
    }
    table.print();
    println!();
}

/// E2 — scalability with worker threads (rayon vs crossbeam executors, plus
/// the parallel scan for reference).
fn e2_threads(args: &Args) {
    println!("## E2 — A-PCM throughput vs threads (events/s)\n");
    let n = scaled(1_000_000, args.scale);
    let wl = base_spec(n, args.seed).build();
    let events = wl.events(20_000);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    if *threads.last().unwrap() != max_threads {
        threads.push(max_threads);
    }

    let mut headers = vec!["executor".to_string()];
    headers.extend(threads.iter().map(|t| format!("{t}t")));
    let mut table = Table::new(headers);
    for (label, executor) in [
        ("A-PCM/rayon", Executor::Rayon),
        ("A-PCM/crossbeam", Executor::Crossbeam),
    ] {
        let mut cells = vec![label.to_string()];
        for &t in &threads {
            let config = ApcmConfig {
                executor,
                ..ApcmConfig::default().with_threads(t)
            };
            let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            let m = measure_throughput(&matcher, &events, args.budget);
            args.record(
                "e2",
                label,
                format!("threads={t}"),
                "events_per_sec",
                m.events_per_sec,
            );
            cells.push(fmt_rate(m.events_per_sec));
        }
        table.row(cells);
    }
    table.print();
    println!("(corpus {n}; sequential PCM-SEQ appears in E1 as the 1-thread floor)\n");
}

/// E3 — OSR: batch size sweep with re-ordering on/off.
fn e3_osr(args: &Args) {
    println!("## E3 — OSR batch size sweep (events/s)\n");
    let n = scaled(1_000_000, args.scale);
    let wl = base_spec(n, args.seed).planted_fraction(0.05).build();
    let events = wl.events(20_000);
    let batches = [1usize, 16, 64, 256, 1024, 4096];
    let mut headers = vec!["reorder".to_string()];
    headers.extend(batches.iter().map(|b| format!("b={b}")));
    let mut table = Table::new(headers);
    for reorder in [false, true] {
        let mut cells = vec![if reorder { "on" } else { "off" }.to_string()];
        for &batch in &batches {
            let config = ApcmConfig {
                batch_size: batch,
                reorder,
                adaptive: AdaptiveConfig::disabled(),
                ..ApcmConfig::default()
            };
            let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            let m = measure_throughput(&matcher, &events, args.budget);
            args.record(
                "e3",
                if reorder {
                    "OSR/reorder"
                } else {
                    "OSR/no-reorder"
                },
                format!("batch={batch}"),
                "events_per_sec",
                m.events_per_sec,
            );
            cells.push(fmt_rate(m.events_per_sec));
        }
        table.row(cells);
    }
    table.print();
    println!("(corpus {n}; b=1 is per-event matching, no batch pruning)\n");
}

/// E4 — expression size (predicates per subscription).
fn e4_sub_size(args: &Args) {
    println!("## E4 — throughput vs expression size (events/s)\n");
    let n = scaled(1_000_000, args.scale);
    let ks = [3usize, 5, 7, 9, 12, 15];
    sweep_indexed(
        args,
        "e4",
        &ks,
        |&k| base_spec(n, args.seed).sub_preds(k, k).event_size(18),
        |k| format!("k={k}"),
    );
}

/// E5 — event size (attributes per event).
fn e5_event_size(args: &Args) {
    println!("## E5 — throughput vs event size (events/s)\n");
    let n = scaled(1_000_000, args.scale);
    let sizes = [5usize, 10, 20, 40, 60];
    sweep_indexed(
        args,
        "e5",
        &sizes,
        |&m| base_spec(n, args.seed).dims(60).event_size(m),
        |m| format!("m={m}"),
    );
}

/// E6 — dimensionality of the attribute space.
fn e6_dims(args: &Args) {
    println!("## E6 — throughput vs dimensionality (events/s)\n");
    let n = scaled(1_000_000, args.scale);
    let dims = [10usize, 100, 1_000, 10_000];
    sweep_indexed(
        args,
        "e6",
        &dims,
        |&d| {
            base_spec(n, args.seed)
                .dims(d)
                .event_size(d.min(15))
                .sub_preds(3, 7.min(d))
        },
        |d| format!("d={d}"),
    );
}

/// E7 — matching probability (planted-match fraction).
fn e7_match_prob(args: &Args) {
    println!("## E7 — throughput vs matching probability (events/s)\n");
    let n = scaled(1_000_000, args.scale);
    let fractions = [0.001f64, 0.01, 0.05, 0.2, 0.5];
    sweep_indexed(
        args,
        "e7",
        &fractions,
        |&p| base_spec(n, args.seed).planted_fraction(p),
        |p| format!("p={p}"),
    );
}

/// E8 — value skew (uniform vs Zipf).
fn e8_skew(args: &Args) {
    println!("## E8 — throughput vs value skew (events/s)\n");
    let n = scaled(1_000_000, args.scale);
    let skews = [0.0f64, 0.5, 1.0, 1.5, 2.0];
    sweep_indexed(
        args,
        "e8",
        &skews,
        |&s| {
            let dist = if s == 0.0 {
                ValueDist::Uniform
            } else {
                ValueDist::Zipf(s)
            };
            base_spec(n, args.seed).values(dist)
        },
        |s| format!("s={s}"),
    );
}

/// Shared sweep body for E4–E8: one column per parameter value, one row per
/// indexed engine.
fn sweep_indexed<P>(
    args: &Args,
    experiment: &'static str,
    params: &[P],
    spec_for: impl Fn(&P) -> WorkloadSpec,
    label: impl Fn(&P) -> String,
) {
    let workloads: Vec<Workload> = params.iter().map(|p| spec_for(p).build()).collect();
    let mut headers = vec!["engine".to_string()];
    headers.extend(params.iter().map(&label));
    let mut table = Table::new(headers);
    for kind in EngineKind::INDEXED {
        let mut cells = vec![kind.name().to_string()];
        for (wl, param) in workloads.iter().zip(params) {
            let (matcher, _) = kind.build(wl);
            let events = wl.events(20_000);
            let t = measure_throughput(matcher.as_ref(), &events, args.budget);
            args.record(
                experiment,
                kind.name(),
                label(param),
                "events_per_sec",
                t.events_per_sec,
            );
            cells.push(fmt_rate(t.events_per_sec));
        }
        table.row(cells);
    }
    table.print();
    println!();
}

/// E9 — compression: cluster size and policy vs memory, build time,
/// throughput, and prune rate.
fn e9_compression(args: &Args) {
    println!("## E9 — compression ablation (cluster size × policy)\n");
    let n = scaled(1_000_000, args.scale);
    let wl = base_spec(n, args.seed).build();
    let events = wl.events(10_000);
    let mut table = Table::new(vec![
        "policy",
        "max_size",
        "clusters",
        "bitmap mem",
        "build",
        "events/s",
        "prune%",
    ]);
    for (pname, policy) in [
        ("pivot", ClusteringPolicy::PivotPredicate),
        ("sorted", ClusteringPolicy::SortedSignature),
        (
            "greedy",
            ClusteringPolicy::GreedyLeader {
                threshold: 0.3,
                window: 32,
            },
        ),
    ] {
        for max_size in [1usize, 4, 16, 64, 256, 1024] {
            let config = ApcmConfig {
                clustering: policy,
                max_cluster_size: max_size,
                ..ApcmConfig::pcm()
            };
            let start = Instant::now();
            let matcher = PcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            let build = start.elapsed();
            let t = measure_throughput(&matcher, &events, args.budget);
            args.record(
                "e9",
                &format!("PCM/{pname}"),
                format!("max_size={max_size}"),
                "events_per_sec",
                t.events_per_sec,
            );
            let (probes, prunes) = matcher.clusters().iter().fold((0u64, 0u64), |acc, c| {
                (
                    acc.0 + c.probes.load(std::sync::atomic::Ordering::Relaxed),
                    acc.1 + c.prunes.load(std::sync::atomic::Ordering::Relaxed),
                )
            });
            table.row(vec![
                pname.to_string(),
                format!("{max_size}"),
                format!("{}", matcher.clusters().len()),
                fmt_bytes(matcher.heap_bytes()),
                format!("{build:.2?}"),
                fmt_rate(t.events_per_sec),
                format!("{:.1}", 100.0 * prunes as f64 / probes.max(1) as f64),
            ]);
        }
    }
    table.print();
    println!("(max_size=1 is uncompressed per-subscription storage)\n");
}

/// E10 — adaptivity under drift: a static cluster/key layout vs A-PCM's
/// epoch maintenance, on a stream whose hot values rotate. The adaptive
/// engine re-keys clusters away from predicates the drift made hot (using
/// observed firing rates) and re-clusters unproductive clusters.
fn e10_adaptive(args: &Args) {
    println!("## E10 — adaptivity under workload drift\n");
    let n = scaled(1_000_000, args.scale);
    // Adversarial-for-static shape: few dimensions, strongly Zipf-skewed
    // values on both sides. Static keying breaks selectivity ties toward
    // corpus-frequent predicates, which under shared skew are exactly the
    // predicates hot events keep firing — clusters get probed constantly
    // without matching. The adaptive engine observes the firing rates and
    // re-keys; the drift rotation keeps moving the hot spot so the static
    // layout can never be right for long.
    let wl = base_spec(n, args.seed)
        .dims(8)
        .sub_preds(2, 3)
        .event_size(8)
        .values(ValueDist::Zipf(1.5))
        .planted_fraction(0.0)
        .build();
    let phase_events = 5_000usize;
    let phases = 6usize;

    // Large clusters make every wasted probe expensive (a full member
    // sweep), which is the regime where re-keying pays.
    let configs = [
        (
            "PCM (static)",
            ApcmConfig {
                adaptive: AdaptiveConfig::disabled(),
                max_cluster_size: 256,
                ..ApcmConfig::default()
            },
        ),
        (
            "A-PCM (adaptive)",
            ApcmConfig {
                adaptive: AdaptiveConfig {
                    epoch_events: (phase_events / 2) as u64,
                    min_probes: 32,
                    min_prune_rate: 0.5,
                    ..AdaptiveConfig::default()
                },
                max_cluster_size: 256,
                ..ApcmConfig::default()
            },
        ),
    ];

    let mut headers = vec!["engine".to_string()];
    headers.extend((1..=phases).map(|p| format!("phase{p}")));
    headers.push("probes/ev".to_string());
    headers.push("maint".to_string());
    let mut table = Table::new(headers);
    for (label, config) in configs {
        let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
        // Drift: rotate hot value ranks between phases.
        let mut stream = DriftingStream::new(&wl, phase_events, 211, args.seed ^ 0xE10);
        let mut cells = vec![label.to_string()];
        let mut total_probes = 0u64;
        for phase in 0..phases {
            let window: Vec<Event> = (&mut stream).take(phase_events).collect();
            let before = matcher.stats();
            let start = Instant::now();
            for chunk in window.chunks(1024) {
                std::hint::black_box(matcher.match_batch(chunk));
            }
            let elapsed = start.elapsed();
            let after = matcher.stats();
            // `stats().probes` is a lifetime total (maintenance resets only
            // the per-cluster epoch counters), so the per-phase delta is
            // exact.
            total_probes += after.probes - before.probes;
            let rate = phase_events as f64 / elapsed.as_secs_f64();
            args.record(
                "e10",
                label,
                format!("phase={}", phase + 1),
                "events_per_sec",
                rate,
            );
            cells.push(fmt_rate(rate));
        }
        let stats = matcher.stats();
        cells.push(format!("{}", total_probes / (phases * phase_events) as u64));
        cells.push(format!("{}", stats.maintenance_runs));
        table.row(cells);
    }
    table.print();
    println!("(hot-value rotation every {phase_events} events; corpus {n})\n");
}

/// E11 — per-event latency percentiles.
fn e11_latency(args: &Args) {
    println!("## E11 — per-event matching latency (µs)\n");
    let n = scaled(500_000, args.scale);
    let wl = base_spec(n, args.seed).build();
    let events = wl.events(300);
    let mut table = Table::new(vec!["engine", "p50", "p95", "p99", "max"]);
    for kind in EngineKind::ALL {
        let (matcher, _) = kind.build(&wl);
        // Keep the slow baselines affordable: sample fewer events.
        let sample = if kind.is_sequential() && matches!(kind, EngineKind::Scan) {
            &events[..events.len().min(30)]
        } else {
            &events[..]
        };
        let l = measure_latency(matcher.as_ref(), sample);
        for (metric, value) in [
            ("latency_p50_us", l.p50_us),
            ("latency_p95_us", l.p95_us),
            ("latency_p99_us", l.p99_us),
            ("latency_max_us", l.max_us),
        ] {
            args.record("e11", kind.name(), format!("n={n}"), metric, value);
        }
        table.row(vec![
            kind.name().to_string(),
            format!("{:.1}", l.p50_us),
            format!("{:.1}", l.p95_us),
            format!("{:.1}", l.p99_us),
            format!("{:.1}", l.max_us),
        ]);
    }
    table.print();
    println!("(corpus {n})\n");
}

/// Drives `BATCH` publishes at `client` until the budget elapses and
/// returns end-to-end events/s (ack + all RESULT rows received).
fn pump_batches(client: &mut BrokerClient, wl: &Workload, budget: Duration) -> f64 {
    let events = wl.events(256);
    let start = Instant::now();
    let mut sent = 0usize;
    loop {
        let results = client
            .publish_batch(&events, &wl.schema)
            .expect("publish through the broker");
        assert_eq!(results.len(), events.len());
        sent += events.len();
        if start.elapsed() >= budget {
            return sent as f64 / start.elapsed().as_secs_f64();
        }
    }
}

/// E13 — cluster tier: routed (front router fanning to N backend servers)
/// vs direct (one server, same client path) publish throughput, and the
/// router's scatter-gather/merge overhead. Everything runs in-process on
/// loopback, so the deltas measure protocol + merge cost, not the network.
/// Median of three interleaved samples — the cheapest estimator that
/// discards a one-off stall (page cache miss, scheduler hiccup) on
/// either side of a comparison.
fn median3(mut v: [f64; 3]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[1]
}

/// SplitMix64 — deterministic stream generator for the skewed cell
/// without pulling a rand dependency into the harness.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn e13_cluster(args: &Args) {
    println!("## E13 — cluster routing: routed vs direct throughput\n");
    let n = scaled(250_000, args.scale).min(20_000);
    let wl = base_spec(n, args.seed).build();
    let backend_config = || ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        flush_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let client_timeout = Duration::from_secs(60);
    // Three interleaved samples per configuration at a third of the cell
    // budget each keep the total cost of a cell where it was, while the
    // warm-up pump absorbs allocator and page-cache cold starts that used
    // to land inside the measured window.
    let sample = args.budget / 3;
    let warmup = (args.budget / 4).min(Duration::from_millis(250));

    // Direct baseline: one standalone server, kept alive for the whole
    // experiment so direct and routed samples interleave — machine-wide
    // drift then hits both sides of every overhead ratio equally.
    let server = Server::start(wl.schema.clone(), backend_config(), "127.0.0.1:0")
        .expect("starting the direct server");
    // Subscriptions live on their own connection so EVENT deliveries
    // cannot crowd the publisher's RESULT replies out of its bounded
    // outbound queue at large catalog scales.
    let mut direct_subs = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
    direct_subs.set_read_timeout(Some(client_timeout)).unwrap();
    for sub in &wl.subs {
        direct_subs.subscribe(sub, &wl.schema).unwrap();
    }
    let mut direct_client = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
    direct_client
        .set_read_timeout(Some(client_timeout))
        .unwrap();
    pump_batches(&mut direct_client, &wl, warmup);

    let mut table = Table::new(vec!["path", "backends", "events/s", "merge overhead %"]);
    let mut direct_recorded = false;
    for n_backends in [1usize, 2, 3] {
        let cluster = ClusterHandle::start(
            wl.schema.clone(),
            (0..n_backends).map(|_| backend_config()).collect(),
            RouterConfig::default(),
        )
        .expect("starting the cluster");
        let mut routed_subs = BrokerClient::connect(&cluster.router_addr()).unwrap();
        routed_subs.set_read_timeout(Some(client_timeout)).unwrap();
        for sub in &wl.subs {
            routed_subs.subscribe(sub, &wl.schema).unwrap();
        }
        let mut client = BrokerClient::connect(&cluster.router_addr()).unwrap();
        client.set_read_timeout(Some(client_timeout)).unwrap();
        pump_batches(&mut client, &wl, warmup);

        let mut direct_samples = [0.0f64; 3];
        let mut routed_samples = [0.0f64; 3];
        for i in 0..3 {
            direct_samples[i] = pump_batches(&mut direct_client, &wl, sample);
            routed_samples[i] = pump_batches(&mut client, &wl, sample);
        }
        let direct = median3(direct_samples);
        let routed = median3(routed_samples);
        let overhead = 100.0 * (direct / routed - 1.0);
        if !direct_recorded {
            args.record(
                "e13",
                "direct",
                "n_backends=1".into(),
                "events_per_sec",
                direct,
            );
            table.row(vec![
                "direct".into(),
                "1".into(),
                fmt_rate(direct),
                "-".into(),
            ]);
            direct_recorded = true;
        }
        args.record(
            "e13",
            "routed",
            format!("n_backends={n_backends}"),
            "events_per_sec",
            routed,
        );
        args.record(
            "e13",
            "routed",
            format!("n_backends={n_backends}"),
            "merge_overhead_pct",
            overhead,
        );
        table.row(vec![
            "routed".into(),
            format!("{n_backends}"),
            fmt_rate(routed),
            format!("{overhead:.1}"),
        ]);
        drop(client);
        drop(routed_subs);
        cluster.shutdown();
    }
    drop(direct_client);
    drop(direct_subs);
    server.shutdown();
    table.print();
    println!("(corpus {n}; overhead is direct/routed - 1, median of 3 interleaved samples)\n");

    e13_skewed(args);
}

/// Number of value bands the skewed cell splits attribute 0 into — one
/// per backend, so tenant-affine placement lines predicate bands up
/// with partitions and summary pruning has something to skip.
const SKEW_BANDS: u64 = 3;
const SKEW_CARD: u64 = 1024;
const SKEW_BAND_WIDTH: u64 = SKEW_CARD / SKEW_BANDS;
/// Inset from each band edge, one summary bucket (1024 values over 64
/// buckets). Band boundaries are not bucket-aligned, so without the
/// inset a window near an edge sets the boundary bucket both adjacent
/// backends' summaries contain and fans out to two backends.
const SKEW_EDGE: u64 = SKEW_CARD / 64;

/// Publishes band-coherent windows: each window's events share one value
/// band on attribute 0, with the band drawn Zipf-style (band 0 hot).
/// Pruning is per-window, so coherence is what makes a window skippable;
/// a mixed window touches every band's backend and prunes nothing.
fn pump_skewed(
    client: &mut BrokerClient,
    schema: &Schema,
    rng: &mut SplitMix,
    budget: Duration,
) -> f64 {
    const WINDOW: usize = 64;
    let start = Instant::now();
    let mut sent = 0usize;
    loop {
        // Zipf(1.1) over 3 bands, precomputed cumulative thresholds.
        let r = rng.below(1000);
        let band = if r < 567 {
            0
        } else if r < 831 {
            1
        } else {
            2
        };
        let lo = band * SKEW_BAND_WIDTH;
        let events: Vec<Event> = (0..WINDOW)
            .map(|_| {
                Event::new(vec![
                    (
                        AttrId(0),
                        (lo + SKEW_EDGE + rng.below(SKEW_BAND_WIDTH - 2 * SKEW_EDGE)) as i64,
                    ),
                    (AttrId(1), rng.below(SKEW_CARD) as i64),
                    (AttrId(2), rng.below(SKEW_CARD) as i64),
                    (AttrId(3), rng.below(SKEW_CARD) as i64),
                ])
                .expect("building a skewed event")
            })
            .collect();
        let results = client
            .publish_batch(&events, schema)
            .expect("publish through the broker");
        assert_eq!(results.len(), events.len());
        sent += events.len();
        if start.elapsed() >= budget {
            return sent as f64 / start.elapsed().as_secs_f64();
        }
    }
}

/// E13 skewed cell — tenant-affine placement: each subscription's value
/// band on attribute 0 is derived from the backend the ring places it
/// on, so per-backend summaries are band-disjoint and the router can
/// prune cold backends out of hot-band windows.
fn e13_skewed(args: &Args) {
    println!("## E13 (skewed) — tenant-affine placement: pruned fan-out\n");
    let n = scaled(60_000, args.scale).min(6_000);
    let schema = Schema::uniform(8, SKEW_CARD);
    let ring = Ring::new(&[0, 1, 2]);
    let mut rng = SplitMix(args.seed ^ 0xE13B);
    let subs: Vec<Subscription> = (0..n as u32)
        .map(|id| {
            // Band keyed off the routing ring: the predicates of every
            // subscription a backend owns live inside that backend's band.
            let band = u64::from(ring.route(SubId(id)));
            let lo =
                band * SKEW_BAND_WIDTH + SKEW_EDGE + rng.below(SKEW_BAND_WIDTH - 2 * SKEW_EDGE - 8);
            // The narrow band interval is the summary witness (smallest
            // bucket cover); the second predicate must stay wider than it
            // or it would steal witness duty and smear the summaries
            // across the uniform attributes. Its high threshold keeps the
            // match rate — and so the EVENT delivery volume — low enough
            // that per-connection outbound queues never saturate.
            let preds = vec![
                Predicate::new(AttrId(0), Op::Between(lo as i64, lo as i64 + 7)),
                Predicate::new(
                    AttrId(1 + rng.below(7) as u32),
                    Op::Ge((SKEW_CARD * 3 / 4 + rng.below(SKEW_CARD * 3 / 16)) as i64),
                ),
            ];
            Subscription::new(SubId(id), preds).expect("building a skewed subscription")
        })
        .collect();

    let backend_config = || ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        flush_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let client_timeout = Duration::from_secs(60);
    let sample = args.budget / 3;
    let warmup = (args.budget / 4).min(Duration::from_millis(250));

    // Direct baseline over the same catalog and stream. Subscriptions
    // are owned by a dedicated connection so EVENT deliveries queue
    // there (and fall to the slow-consumer policy when unread) instead
    // of competing with the publisher's RESULT replies.
    let server = Server::start(schema.clone(), backend_config(), "127.0.0.1:0")
        .expect("starting the direct server");
    let mut direct_subs = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
    direct_subs.set_read_timeout(Some(client_timeout)).unwrap();
    for sub in &subs {
        direct_subs.subscribe(sub, &schema).unwrap();
    }
    let mut direct_client = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
    direct_client
        .set_read_timeout(Some(client_timeout))
        .unwrap();

    let cluster = ClusterHandle::start(
        schema.clone(),
        (0..SKEW_BANDS as usize).map(|_| backend_config()).collect(),
        RouterConfig::default(),
    )
    .expect("starting the cluster");
    let mut routed_subs = BrokerClient::connect(&cluster.router_addr()).unwrap();
    routed_subs.set_read_timeout(Some(client_timeout)).unwrap();
    for sub in &subs {
        routed_subs.subscribe(sub, &schema).unwrap();
    }
    let mut client = BrokerClient::connect(&cluster.router_addr()).unwrap();
    client.set_read_timeout(Some(client_timeout)).unwrap();

    // Measuring pruning before the router has a summary for every
    // backend would just measure the conservative full-fan-out path.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let lines = client.topology().expect("topology");
        let fresh = (0..SKEW_BANDS).all(|m| {
            lines
                .iter()
                .any(|l| l.starts_with(&format!("summary {m} epoch")))
        });
        if fresh {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend summaries never reached the router"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Identical seeds: both sides see the same band sequence.
    let mut rng_direct = SplitMix(args.seed ^ 0x51EB);
    let mut rng_routed = SplitMix(args.seed ^ 0x51EB);
    pump_skewed(&mut direct_client, &schema, &mut rng_direct, warmup);
    pump_skewed(&mut client, &schema, &mut rng_routed, warmup);
    let base = client.stats().expect("router stats");

    let mut direct_samples = [0.0f64; 3];
    let mut routed_samples = [0.0f64; 3];
    for i in 0..3 {
        direct_samples[i] = pump_skewed(&mut direct_client, &schema, &mut rng_direct, sample);
        routed_samples[i] = pump_skewed(&mut client, &schema, &mut rng_routed, sample);
    }
    let direct = median3(direct_samples);
    let routed = median3(routed_samples);
    let stats = client.stats().expect("router stats");
    let sent = (stats["fanouts_sent"] - base["fanouts_sent"]) as f64;
    let possible = (stats["fanouts_possible"] - base["fanouts_possible"]) as f64;
    let ratio = if possible == 0.0 {
        1.0
    } else {
        sent / possible
    };
    let overhead = 100.0 * (direct / routed - 1.0);

    args.record(
        "e13",
        "direct-skewed",
        "n_backends=1".into(),
        "events_per_sec",
        direct,
    );
    args.record(
        "e13",
        "routed-skewed",
        "n_backends=3".into(),
        "events_per_sec",
        routed,
    );
    args.record(
        "e13",
        "routed-skewed",
        "n_backends=3".into(),
        "merge_overhead_pct",
        overhead,
    );
    args.record(
        "e13",
        "routed-skewed",
        "n_backends=3".into(),
        "pruned_fanout_ratio",
        ratio,
    );

    let mut table = Table::new(vec![
        "path",
        "backends",
        "events/s",
        "merge overhead %",
        "pruned fan-out",
    ]);
    table.row(vec![
        "direct".into(),
        "1".into(),
        fmt_rate(direct),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "routed".into(),
        format!("{SKEW_BANDS}"),
        fmt_rate(routed),
        format!("{overhead:.1}"),
        format!("{ratio:.3}"),
    ]);
    table.print();
    println!(
        "(catalog {n}, band-coherent 64-event windows, Zipf band choice; \
         pruned fan-out = fanouts_sent / fanouts_possible)\n"
    );

    drop(client);
    drop(routed_subs);
    cluster.shutdown();
    drop(direct_client);
    drop(direct_subs);
    server.shutdown();
}

/// E14 — replication tier: durable churn throughput through the router
/// with and without a live follower tailing the churn log, and the
/// failover blackout window — how long after killing a partition's
/// primary the router serves a full-coverage window again.
fn e14_replication(args: &Args) {
    println!("## E14 — replication: churn cost and failover blackout\n");
    let n = scaled(100_000, args.scale).min(10_000);
    let wl = base_spec(n, args.seed).build();
    let tmp = std::env::temp_dir().join(format!("apcm-e14-{}", std::process::id()));
    let node_config = |tag: String| ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        flush_interval: Duration::from_millis(2),
        persist: Some(PersistConfig::new(tmp.join(tag))),
        ..ServerConfig::default()
    };
    let client_timeout = Duration::from_secs(60);

    let mut table = Table::new(vec!["setup", "churn ops/s", "failover blackout"]);
    for (label, replicated) in [("unreplicated", false), ("replicated", true)] {
        let replica = replicated.then(|| node_config(format!("{label}-replica")));
        let mut cluster = ClusterHandle::start_replicated(
            wl.schema.clone(),
            vec![(node_config(format!("{label}-primary")), replica)],
            RouterConfig {
                health_interval: Duration::from_millis(25),
                ..RouterConfig::default()
            },
        )
        .expect("starting the cluster");
        let mut client = BrokerClient::connect(&cluster.router_addr()).unwrap();
        client.set_read_timeout(Some(client_timeout)).unwrap();
        client.set_churn_retry(40, Duration::from_millis(25));

        let rate = pump_churn(&mut client, &wl, args.budget);
        args.record(
            "e14",
            label,
            "n_partitions=1".into(),
            "churn_ops_per_sec",
            rate,
        );

        let mut blackout_cell = "-".to_string();
        if replicated {
            // The follower must drain the churn backlog before the router
            // will promote it, so wait for applied seqs to converge.
            let sync_deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match (cluster.node(0, 0), cluster.node(0, 1)) {
                    (Some(a), Some(b)) if a.current_seq() == b.current_seq() => break,
                    _ => {}
                }
                assert!(
                    Instant::now() < sync_deadline,
                    "replica never caught up after the churn run"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            let events = wl.events(8);
            let kill = Instant::now();
            cluster.kill_node(0, 0);
            let blackout = loop {
                match client.publish_batch_flagged(&events, &wl.schema) {
                    Ok(rows) if rows.values().all(|(_, partial)| !partial) => {
                        break kill.elapsed();
                    }
                    _ => {}
                }
                assert!(
                    kill.elapsed() < Duration::from_secs(30),
                    "failover never completed"
                );
                std::thread::sleep(Duration::from_millis(2));
            };
            let blackout_ms = blackout.as_secs_f64() * 1e3;
            args.record(
                "e14",
                label,
                "kill=primary".into(),
                "failover_blackout_ms",
                blackout_ms,
            );
            blackout_cell = format!("{blackout_ms:.1} ms");
        }
        table.row(vec![label.into(), fmt_rate(rate), blackout_cell]);
        drop(client);
        cluster.shutdown();
    }
    table.print();
    println!(
        "(single partition, corpus {n}; churn is SUB upserts through the router; \
         blackout is kill \u{2192} first full-coverage window)\n"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

/// E18 — replication chains: churn throughput through the pipelined-ack
/// replication stream at chain depth 0/1/2, and routed read (window)
/// throughput as followers are added — the seq-floor read guard should
/// let followers absorb reads without ever serving a stale row, and the
/// pipelined acks should keep replicated churn close to the
/// unreplicated rate (PR 5's hop-per-record acks paid ~40%).
fn e18_chains(args: &Args) {
    println!("## E18 — replication chains: pipelined acks and follower-served reads\n");
    let n = scaled(100_000, args.scale).min(10_000);
    let wl = base_spec(n, args.seed).build();
    let tmp = std::env::temp_dir().join(format!("apcm-e18-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let node_config = |tag: String| ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        flush_interval: Duration::from_millis(2),
        persist: Some(PersistConfig::new(tmp.join(tag))),
        ..ServerConfig::default()
    };

    let mut table = Table::new(vec![
        "followers",
        "churn ops/s",
        "vs depth 0",
        "routed reads ev/s",
        "follower-served",
    ]);
    let mut unreplicated_churn = None;
    for followers in [0usize, 1, 2] {
        let chain: Vec<ServerConfig> = (0..=followers)
            .map(|i| node_config(format!("f{followers}-n{i}")))
            .collect();
        let cluster = ClusterHandle::start_chained(
            wl.schema.clone(),
            vec![chain],
            RouterConfig {
                health_interval: Duration::from_millis(25),
                ..RouterConfig::default()
            },
        )
        .expect("starting the chained cluster");
        let mut client = BrokerClient::connect(&cluster.router_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        client.set_churn_retry(40, Duration::from_millis(25));
        let param = format!("followers={followers}");

        // Durable churn through the chain: each record is acked to the
        // client after the primary's append, and replicated hop-to-hop
        // with acks batched per drained burst.
        let churn_rate = pump_churn(&mut client, &wl, args.budget);
        args.record(
            "e18",
            "chained",
            param.clone(),
            "churn_ops_per_sec",
            churn_rate,
        );
        let ratio_cell = match unreplicated_churn {
            None => {
                unreplicated_churn = Some(churn_rate);
                "-".to_string()
            }
            Some(base) => {
                let ratio = churn_rate / base;
                args.record(
                    "e18",
                    "chained",
                    param.clone(),
                    "churn_ratio_vs_unreplicated",
                    ratio,
                );
                format!("{:.0}%", ratio * 1e2)
            }
        };

        // Every follower must clear the churn-ack floor before the
        // router will route windows to it: wait for applied sequences to
        // converge, then for the health sweep to certify a follower.
        let sync_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let seqs: Vec<u64> = (0..cluster.node_count(0))
                .filter_map(|i| cluster.node(0, i))
                .map(|s| s.current_seq())
                .collect();
            if seqs.windows(2).all(|w| w[0] == w[1]) {
                break;
            }
            assert!(
                Instant::now() < sync_deadline,
                "chain never caught up after the churn run"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let events = wl.events(64);
        if followers > 0 {
            let warm_deadline = Instant::now() + Duration::from_secs(10);
            while client.stats().unwrap()["reads_follower_served"] == 0 {
                client
                    .publish_batch_flagged(&events, &wl.schema)
                    .expect("warm-up window");
                assert!(
                    Instant::now() < warm_deadline,
                    "router never served a window from a follower"
                );
            }
        }

        // Routed reads: full windows through the scatter path, served by
        // the primary at depth 0 and round-robined across read-eligible
        // followers otherwise.
        let start = Instant::now();
        let mut n_events = 0usize;
        while start.elapsed() < args.budget {
            client
                .publish_batch_flagged(&events, &wl.schema)
                .expect("routed window");
            n_events += events.len();
        }
        let read_rate = n_events as f64 / start.elapsed().as_secs_f64();
        args.record(
            "e18",
            "chained",
            param.clone(),
            "read_events_per_sec",
            read_rate,
        );
        let served = client.stats().unwrap()["reads_follower_served"];
        args.record(
            "e18",
            "chained",
            param.clone(),
            "reads_follower_served",
            served as f64,
        );

        table.row(vec![
            format!("{followers}"),
            fmt_rate(churn_rate),
            ratio_cell,
            fmt_rate(read_rate),
            format!("{served}"),
        ]);
        drop(client);
        cluster.shutdown();
    }
    table.print();
    println!(
        "(single partition, corpus {n}; churn is SUB upserts acked after the primary's \
         append; reads are 64-event windows through the router, follower-served once \
         past the seq floor)\n"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

/// E15 — snapshot format: text v1 vs colstore v2. For each format, one
/// primary takes a full snapshot under live churn (file size, wall time,
/// and the longest churn-ack stall), restarts from it (recovery time),
/// and bootstraps a fresh follower (bytes shipped, catch-up time). The
/// colstore arm additionally dirties one partition and writes a delta.
fn e15_colstore(args: &Args) {
    println!("## E15 — snapshot format: text v1 vs colstore v2\n");
    let n = scaled(100_000, args.scale).min(20_000);
    let wl = base_spec(n, args.seed).build();
    let tmp = std::env::temp_dir().join(format!("apcm-e15-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    let mut table = Table::new(vec![
        "format",
        "snapshot",
        "write ms",
        "stall ms",
        "recovery ms",
        "bootstrap",
        "catch-up ms",
    ]);
    let mut sizes = Vec::new();
    for format in [SnapshotFormat::Text, SnapshotFormat::Colstore] {
        let label = format.name();
        let dir = tmp.join(label);
        let config = ServerConfig {
            shards: 2,
            engine: EngineChoice::Apcm,
            flush_interval: Duration::from_millis(2),
            persist: Some(PersistConfig {
                format,
                snapshot_interval: None,
                ..PersistConfig::new(&dir)
            }),
            ..ServerConfig::default()
        };
        let server = Server::start(wl.schema.clone(), config.clone(), "127.0.0.1:0").unwrap();
        let mut client = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        for sub in &wl.subs {
            client.subscribe(sub, &wl.schema).unwrap();
        }

        // Snapshot under live churn: a probe connection re-upserts one sub
        // in a tight loop; its longest ack-to-ack gap is the churn stall
        // the snapshot pass induced.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let probe = {
            let addr = server.local_addr().to_string();
            let stop = stop.clone();
            let schema = wl.schema.clone();
            let sub = wl.subs[0].clone();
            std::thread::spawn(move || {
                let mut c = BrokerClient::connect(&addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                let mut max_gap = Duration::ZERO;
                let mut last = Instant::now();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    c.subscribe(&sub, &schema).unwrap();
                    let now = Instant::now();
                    max_gap = max_gap.max(now - last);
                    last = now;
                }
                max_gap
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        client.snapshot().unwrap();
        let write_ms = t0.elapsed().as_secs_f64() * 1e3;
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let stall_ms = probe.join().unwrap().as_secs_f64() * 1e3;
        let snap_bytes = std::fs::metadata(dir.join("snapshot.apcm")).unwrap().len();
        sizes.push(snap_bytes);

        let param = format!("n={n}");
        args.record(
            "e15",
            label,
            param.clone(),
            "snapshot_bytes",
            snap_bytes as f64,
        );
        args.record("e15", label, param.clone(), "snapshot_write_ms", write_ms);
        args.record("e15", label, param.clone(), "churn_max_stall_ms", stall_ms);

        // Restart on the same dir: recovery = snapshot load + log replay.
        client.quit().ok();
        server.shutdown();
        let t0 = Instant::now();
        let server = Server::start(wl.schema.clone(), config, "127.0.0.1:0").unwrap();
        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(server.engine().len(), n, "{label}: recovery lost subs");
        args.record("e15", label, param.clone(), "recovery_ms", recovery_ms);

        // Colstore only: dirty one of the two partitions, then an
        // incremental pass writes a delta instead of a full.
        let mut delta_row = None;
        if format == SnapshotFormat::Colstore {
            let mut c = BrokerClient::connect(&server.local_addr().to_string()).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
            c.snapshot().unwrap(); // restart dropped the chain; re-anchor it
            let target = route_partition(wl.subs[0].id(), 2);
            let mut dirtied = 0usize;
            // Unsubscribes: a duplicate SUB is a no-op, but removals are
            // real churn confined to `target`, so only it goes dirty.
            for sub in &wl.subs {
                if route_partition(sub.id(), 2) == target {
                    c.unsubscribe(sub.id()).unwrap();
                    dirtied += 1;
                    if dirtied > n / 20 {
                        break;
                    }
                }
            }
            let t0 = Instant::now();
            let outcome = server.snapshot_incremental().unwrap();
            let delta_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(outcome.delta, "incremental pass fell back to a full");
            let delta_bytes = std::fs::metadata(dir.join("snapshot-delta-1.col"))
                .unwrap()
                .len();
            let dparam = format!("n={n} dirtied={dirtied}");
            args.record(
                "e15",
                "colstore+delta",
                dparam.clone(),
                "snapshot_bytes",
                delta_bytes as f64,
            );
            args.record(
                "e15",
                "colstore+delta",
                dparam,
                "snapshot_write_ms",
                delta_ms,
            );
            delta_row = Some(vec![
                "colstore+delta".into(),
                fmt_bytes(delta_bytes as usize),
                format!("{delta_ms:.1}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            c.quit().ok();
        }

        // Fresh follower from seq 0: the rotated log can't serve it, so
        // the primary ships a full bootstrap in its snapshot format.
        let rconfig = ServerConfig {
            replica_of: Some(server.local_addr().to_string()),
            shards: 2,
            engine: EngineChoice::Apcm,
            flush_interval: Duration::from_millis(2),
            persist: Some(PersistConfig {
                format,
                snapshot_interval: None,
                ..PersistConfig::new(tmp.join(format!("{label}-replica")))
            }),
            ..ServerConfig::default()
        };
        let target_seq = server.current_seq();
        let t0 = Instant::now();
        let replica = Server::start(wl.schema.clone(), rconfig, "127.0.0.1:0").unwrap();
        loop {
            if replica.current_seq() >= target_seq
                && ServerStats::get(&replica.stats().repl_bootstraps) >= 1
            {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "{label}: follower never bootstrapped"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let bootstrap_ms = t0.elapsed().as_secs_f64() * 1e3;
        let bootstrap_bytes = ServerStats::get(&server.stats().repl_bootstrap_bytes);
        args.record(
            "e15",
            label,
            param.clone(),
            "bootstrap_bytes",
            bootstrap_bytes as f64,
        );
        args.record("e15", label, param, "bootstrap_ms", bootstrap_ms);

        table.row(vec![
            label.into(),
            fmt_bytes(snap_bytes as usize),
            format!("{write_ms:.1}"),
            format!("{stall_ms:.1}"),
            format!("{recovery_ms:.1}"),
            fmt_bytes(bootstrap_bytes as usize),
            format!("{bootstrap_ms:.1}"),
        ]);
        if let Some(row) = delta_row {
            table.row(row);
        }
        replica.shutdown();
        server.shutdown();
    }
    table.print();
    if let [text, col] = sizes[..] {
        println!(
            "(corpus {n}; colstore full snapshot is {:.1}x smaller than text; \
             stall is the longest churn-ack gap while the pass ran)\n",
            text as f64 / col as f64
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
}

/// E16 — elastic resharding: live scale-out from two to three partitions
/// under continuous churn. Measures the end-to-end migration time, the
/// worst single churn-op stall (the ownership-flip blackout, absorbed by
/// the client's not-owner retry), the fraction of the id space the ring
/// moves (contract: ≈ 1/N), and acked churn lost across the move — which
/// must be zero, checked row-by-row against a brute-force oracle.
fn e16_resharding(args: &Args) {
    println!("## E16 — elastic resharding: live scale-out under churn\n");
    let n = scaled(100_000, args.scale).min(5_000);
    let wl = base_spec(n, args.seed).build();
    let tmp = std::env::temp_dir().join(format!("apcm-e16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let node_config = |tag: &str| ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        flush_interval: Duration::from_millis(2),
        persist: Some(PersistConfig::new(tmp.join(tag))),
        ..ServerConfig::default()
    };
    let mut cluster = ClusterHandle::start(
        wl.schema.clone(),
        vec![node_config("p0"), node_config("p1")],
        RouterConfig {
            health_interval: Duration::from_millis(25),
            ..RouterConfig::default()
        },
    )
    .expect("starting the cluster");
    let mut client = BrokerClient::connect(&cluster.router_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    client.set_churn_retry(400, Duration::from_millis(5));
    for sub in &wl.subs {
        client
            .subscribe(sub, &wl.schema)
            .expect("seeding subscriptions");
    }

    // The ring contract predicts the moved share before the drill runs.
    let old_ring = Ring::new(&[0, 1]);
    let new_ring = Ring::new(&[0, 1, 2]);
    let moved = wl
        .subs
        .iter()
        .filter(|s| old_ring.route(s.id()) != new_ring.route(s.id()))
        .count();
    let moved_fraction = moved as f64 / wl.subs.len() as f64;

    // Join a third partition and churn straight through the migration;
    // the longest single ack is the blackout a client actually observes.
    let joiner = cluster
        .add_backend_pair(node_config("p2"), None)
        .expect("starting the joiner");
    let joiner_addr = cluster.backend_addr(joiner).to_string();
    let start = Instant::now();
    client.reshard_add(&joiner_addr, None).expect("RESHARD ADD");
    let mut blackout = Duration::ZERO;
    let mut churn_ops = 0usize;
    let migration = loop {
        if client.reshard_status().expect("RESHARD STATUS") == "OK reshard idle" {
            break start.elapsed();
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "migration never settled"
        );
        for sub in wl.subs.iter().take(32) {
            let op = Instant::now();
            client
                .subscribe(sub, &wl.schema)
                .expect("churn during migration");
            blackout = blackout.max(op.elapsed());
            churn_ops += 1;
        }
    };

    // Every acked subscription must still match after the move: publish
    // a window through the router and diff it against the oracle.
    let events = wl.events(16);
    let expect: Vec<Vec<SubId>> = events
        .iter()
        .map(|ev| {
            wl.subs
                .iter()
                .filter(|s| s.matches(ev))
                .map(|s| s.id())
                .collect()
        })
        .collect();
    let results = client
        .publish_batch_flagged(&events, &wl.schema)
        .expect("post-reshard window");
    let base = *results.keys().next().unwrap();
    let mut dropped = 0usize;
    for (seq, (row, partial)) in &results {
        assert!(!partial, "post-reshard window flagged partial");
        let want = &expect[(seq - base) as usize];
        dropped += want.iter().filter(|id| !row.contains(id)).count();
        dropped += row.iter().filter(|id| !want.contains(id)).count();
    }
    assert_eq!(dropped, 0, "resharding dropped acked churn");

    let migration_ms = migration.as_secs_f64() * 1e3;
    let blackout_ms = blackout.as_secs_f64() * 1e3;
    let label = "scale-out 2\u{2192}3";
    let param = format!("n={n}");
    args.record("e16", label, param.clone(), "migration_ms", migration_ms);
    args.record(
        "e16",
        label,
        param.clone(),
        "churn_blackout_ms",
        blackout_ms,
    );
    args.record(
        "e16",
        label,
        param.clone(),
        "moved_fraction",
        moved_fraction,
    );
    args.record("e16", label, param, "dropped_churn", dropped as f64);

    let mut table = Table::new(vec![
        "drill",
        "migration ms",
        "blackout ms",
        "moved",
        "dropped churn",
    ]);
    table.row(vec![
        label.into(),
        format!("{migration_ms:.1}"),
        format!("{blackout_ms:.1}"),
        format!("{:.1}% (ideal {:.1}%)", moved_fraction * 1e2, 1e2 / 3.0),
        format!("{dropped}"),
    ]);
    table.print();
    println!(
        "(corpus {n}; {churn_ops} churn ops rode through the migration; blackout is \
         the longest single churn ack, absorbed by the client's not-owner retry)\n"
    );
    drop(client);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Drives subscription churn (`SUB` upserts) through `client` until the
/// budget elapses and returns acked churn ops/s. Every op is
/// ack-after-append on the backend, so this prices the durable path.
fn pump_churn(client: &mut BrokerClient, wl: &Workload, budget: Duration) -> f64 {
    let start = Instant::now();
    let mut ops = 0usize;
    'outer: loop {
        for sub in &wl.subs {
            client
                .subscribe(sub, &wl.schema)
                .expect("churn through the router");
            ops += 1;
            if ops.is_multiple_of(64) && start.elapsed() >= budget {
                break 'outer;
            }
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// E12 — construction and maintenance: build time per engine, dynamic
/// subscribe/unsubscribe rates for the engines that support them.
fn e12_build(args: &Args) {
    println!("## E12 — index construction and maintenance\n");
    let n = scaled(1_000_000, args.scale);
    let wl = base_spec(n, args.seed).build();
    let mut table = Table::new(vec!["engine", "build time", "subs/s (build)"]);
    for kind in EngineKind::ALL {
        let (_, build) = kind.build(&wl);
        args.record(
            "e12",
            kind.name(),
            format!("n={n}"),
            "build_secs",
            build.as_secs_f64(),
        );
        args.record(
            "e12",
            kind.name(),
            format!("n={n}"),
            "build_subs_per_sec",
            n as f64 / build.as_secs_f64(),
        );
        table.row(vec![
            kind.name().to_string(),
            format!("{build:.2?}"),
            fmt_rate(n as f64 / build.as_secs_f64()),
        ]);
    }
    table.print();
    println!();

    // Dynamic maintenance: A-PCM subscribe/unsubscribe throughput.
    let extra = base_spec(10_000, args.seed + 1).build();
    let fresh: Vec<Subscription> = extra
        .subs
        .iter()
        .map(|s| Subscription::new(SubId(s.id().0 + 50_000_000), s.predicates().to_vec()).unwrap())
        .collect();
    let matcher = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::default()).unwrap();
    let start = Instant::now();
    for sub in &fresh {
        matcher.subscribe(sub).unwrap();
    }
    let sub_time = start.elapsed();
    let start = Instant::now();
    for sub in &fresh {
        matcher.unsubscribe(sub.id());
    }
    let unsub_time = start.elapsed();
    args.record(
        "e12",
        "A-PCM subscribe",
        format!("ops={}", fresh.len()),
        "ops_per_sec",
        fresh.len() as f64 / sub_time.as_secs_f64(),
    );
    args.record(
        "e12",
        "A-PCM unsubscribe",
        format!("ops={}", fresh.len()),
        "ops_per_sec",
        fresh.len() as f64 / unsub_time.as_secs_f64(),
    );
    let mut table = Table::new(vec!["operation", "ops", "time", "ops/s"]);
    table.row(vec![
        "A-PCM subscribe".to_string(),
        format!("{}", fresh.len()),
        format!("{sub_time:.2?}"),
        fmt_rate(fresh.len() as f64 / sub_time.as_secs_f64()),
    ]);
    table.row(vec![
        "A-PCM unsubscribe".to_string(),
        format!("{}", fresh.len()),
        format!("{unsub_time:.2?}"),
        fmt_rate(fresh.len() as f64 / unsub_time.as_secs_f64()),
    ]);
    table.print();
    println!();
}

// ---------------------------------------------------------------------
// E17 — event-loop broker at connection scale.
//
// The broker runs in a *child process* (`--experiment e17-serve-loop` /
// `e17-serve-threads`) so its RSS is readable from
// `/proc/<pid>/status` without the measuring client's own sockets and
// buffers polluting the number. The parent dials N idle subscribers
// (SUB once, then silence) and samples the child's VmRSS per point,
// then measures PING round-trip percentiles across a fleet of active
// connections for both I/O models.

/// Child mode: start a broker, print `ADDR <addr>`, serve until stdin
/// closes or says `stop`. The shutdown render is discarded — stdout
/// must carry nothing but the ADDR line.
fn e17_serve(mode: &str) {
    use std::io::{BufRead, Write};
    let _ = apcm_netio::sys::raise_nofile_limit();
    let io_model = if mode.ends_with("threads") {
        IoModel::Threads
    } else {
        IoModel::EventLoop
    };
    let schema = Schema::uniform(8, 64);
    let config = ServerConfig {
        shards: 2,
        engine: EngineChoice::Apcm,
        io_model,
        ..ServerConfig::default()
    };
    let server = Server::start(schema, config, "127.0.0.1:0").expect("start e17 broker");
    println!("ADDR {}", server.local_addr());
    std::io::stdout().flush().expect("flush ADDR line");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(text) if text.trim() == "stop" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let _ = server.shutdown();
}

/// A broker child process plus the pipe that stops it.
struct ServeChild {
    child: std::process::Child,
    stdin: std::process::ChildStdin,
    /// Held so the pipe stays open for the child's (discarded) output.
    _stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
}

fn spawn_serve(mode: &str) -> ServeChild {
    use std::io::BufRead;
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .args(["--experiment", mode])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn e17 broker child");
    let stdin = child.stdin.take().expect("child stdin");
    let mut stdout = std::io::BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("child ADDR line");
    let addr = line
        .trim()
        .strip_prefix("ADDR ")
        .unwrap_or_else(|| panic!("expected `ADDR <addr>`, got {line:?}"))
        .to_string();
    ServeChild {
        child,
        stdin,
        _stdout: stdout,
        addr,
    }
}

impl ServeChild {
    /// The child's resident set in MiB, from `/proc/<pid>/status`.
    fn rss_mib(&self) -> f64 {
        std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))
            .ok()
            .and_then(|status| {
                status.lines().find_map(|l| {
                    l.strip_prefix("VmRSS:")?
                        .trim()
                        .strip_suffix("kB")?
                        .trim()
                        .parse::<f64>()
                        .ok()
                })
            })
            .map(|kb| kb / 1024.0)
            .unwrap_or(0.0)
    }

    fn stop(mut self) {
        use std::io::Write;
        let _ = writeln!(self.stdin, "stop");
        drop(self.stdin);
        let _ = self.child.wait();
    }
}

/// Reads one `\n`-terminated line a byte at a time — no per-connection
/// BufReader, so a 10k-socket fleet costs no parent-side read buffers.
fn read_line_raw(stream: &std::net::TcpStream) -> String {
    use std::io::Read;
    let mut out = Vec::with_capacity(16);
    let mut byte = [0u8; 1];
    let mut stream = stream;
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => out.push(byte[0]),
            Err(e) => panic!("reading broker reply: {e}"),
        }
    }
    String::from_utf8_lossy(&out).trim_end().to_string()
}

/// Dials `n` connections, subscribes each once, and leaves them idle.
fn e17_fleet(addr: &str, n: usize) -> Vec<std::net::TcpStream> {
    use std::io::Write;
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let stream = std::net::TcpStream::connect(addr).expect("dial e17 broker");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        {
            let mut w = &stream;
            writeln!(w, "SUB {i} a0 >= {}", i % 64).expect("send SUB");
        }
        let ack = read_line_raw(&stream);
        assert!(ack.starts_with("+OK"), "SUB refused: {ack}");
        conns.push(stream);
    }
    conns
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn e17_netio(args: &Args) {
    use std::io::Write;
    println!("## E17 — event-loop broker: idle-subscriber RSS + active-conn latency\n");
    let (soft, hard) = apcm_netio::sys::raise_nofile_limit().unwrap_or((1024, 1024));
    // Parent and child each spend ~one fd per connection; leave headroom
    // for the engines, persistence, and std handles on both sides.
    let fd_cap = (soft as usize).saturating_sub(1000);
    println!("(RLIMIT_NOFILE soft {soft}, hard {hard} -> per-point cap {fd_cap} conns)\n");

    let models: [(&str, &str); 2] = [
        ("event-loop", "e17-serve-loop"),
        ("threads", "e17-serve-threads"),
    ];
    let mut table = Table::new(vec!["io model", "idle conns", "server RSS", "MiB/1k conns"]);
    for (name, mode) in models {
        let mut baseline_mib = None;
        for target in [1_000usize, 10_000, 50_000] {
            let want = ((target as f64 * args.scale).ceil() as usize).clamp(100, target);
            let conns = want.min(fd_cap);
            if conns < want {
                println!("(note: {want} conns capped to {conns} by RLIMIT_NOFILE {soft})");
            }
            if name == "threads" && conns > 1_000 {
                // Two threads per connection makes large idle fleets a
                // thread-count benchmark, not a memory one; the threaded
                // baseline stops at 1k.
                println!("(note: threads model skips {conns} conns — 2 threads/conn)");
                continue;
            }
            let child = spawn_serve(mode);
            let fleet = e17_fleet(&child.addr, conns);
            // Let the child's allocator and loop settle before sampling.
            std::thread::sleep(Duration::from_millis(300));
            let rss = child.rss_mib();
            if baseline_mib.is_none() {
                baseline_mib = Some(rss);
            }
            args.record("e17", name, format!("conns={conns}"), "rss_mib", rss);
            args.record(
                "e17",
                name,
                format!("conns={conns}"),
                "rss_mib_per_1k_conns",
                rss / (conns as f64 / 1000.0),
            );
            table.row(vec![
                name.to_string(),
                format!("{conns}"),
                format!("{rss:.1} MiB"),
                format!("{:.2}", rss / (conns as f64 / 1000.0)),
            ]);
            drop(fleet);
            child.stop();
        }
    }
    table.print();
    println!();

    // Latency: a fleet of *active* connections round-robin PINGs the
    // broker; every round trip is one sample. Identical protocol work
    // under both I/O models, so the delta is scheduling + wakeup cost.
    let active = ((1_000f64 * args.scale).ceil() as usize)
        .clamp(100, 1_000)
        .min(fd_cap);
    let rounds = 5usize;
    let mut latency = Table::new(vec![
        "io model",
        "active conns",
        "p50 us",
        "p95 us",
        "p99 us",
    ]);
    for (name, mode) in models {
        let child = spawn_serve(mode);
        let fleet = e17_fleet(&child.addr, active);
        let mut samples = Vec::with_capacity(active * rounds);
        for _ in 0..rounds {
            for stream in &fleet {
                let start = Instant::now();
                {
                    let mut w = stream;
                    w.write_all(b"PING\n").expect("send PING");
                }
                let reply = read_line_raw(stream);
                assert_eq!(reply, "+PONG");
                samples.push(start.elapsed().as_secs_f64() * 1e6);
            }
        }
        samples.sort_by(f64::total_cmp);
        let (p50, p95, p99) = (
            percentile(&samples, 0.50),
            percentile(&samples, 0.95),
            percentile(&samples, 0.99),
        );
        for (metric, value) in [
            ("latency_p50_us", p50),
            ("latency_p95_us", p95),
            ("latency_p99_us", p99),
        ] {
            args.record("e17", name, format!("conns={active}"), metric, value);
        }
        latency.row(vec![
            name.to_string(),
            format!("{active}"),
            format!("{p50:.1}"),
            format!("{p95:.1}"),
            format!("{p99:.1}"),
        ]);
        drop(fleet);
        child.stop();
    }
    latency.print();
    println!("(PING round trips, {rounds} rounds over the whole fleet)\n");
}
