//! Sparse bit vectors: sorted id lists.
//!
//! Subscription bitmaps are extremely sparse (an expression with 7 predicates
//! sets 7 bits out of a predicate space of tens of thousands), so cluster
//! *residuals* are stored as sorted `u32` id lists rather than dense words.
//! A residual subset test is then a handful of indexed bit probes into the
//! dense event bitmap instead of a full-width word sweep — this is where the
//! "compressed" in PCM saves its time and memory.

use crate::FixedBitSet;
use serde::{Deserialize, Serialize};

/// A sparse bitset: a sorted, deduplicated list of set-bit indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SparseBits {
    ids: Box<[u32]>,
}

impl SparseBits {
    /// Builds from indices in any order; sorts and deduplicates.
    pub fn new(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self {
            ids: ids.into_boxed_slice(),
        }
    }

    /// An empty sparse set.
    pub fn empty() -> Self {
        Self { ids: Box::new([]) }
    }

    /// Extracts the set bits of a dense bitset.
    pub fn from_dense(dense: &FixedBitSet) -> Self {
        Self {
            ids: dense.ones().map(|i| i as u32).collect(),
        }
    }

    /// Materializes into a dense bitset of capacity `nbits`.
    pub fn to_dense(&self, nbits: usize) -> FixedBitSet {
        FixedBitSet::from_indices(nbits, self.ids.iter().map(|&i| i as usize))
    }

    /// Number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted indices.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Whether index `i` is set (binary search).
    pub fn contains(&self, i: u32) -> bool {
        self.ids.binary_search(&i).is_ok()
    }

    /// The residual-test kernel: every bit of `self` is set in `dense`.
    /// Probes `dense` per id with early exit, so cost is `O(len)` regardless
    /// of the dense set's width.
    #[inline]
    pub fn subset_of_dense(&self, dense: &FixedBitSet) -> bool {
        crate::arena::contains_all(dense.words(), &self.ids)
    }

    /// The blocked-test kernel: no bit of `self` is set in `dense`. Probes
    /// per id with early exit.
    #[inline]
    pub fn disjoint_from_dense(&self, dense: &FixedBitSet) -> bool {
        crate::arena::disjoint(dense.words(), &self.ids)
    }

    /// Sorted-merge subset test against another sparse set.
    pub fn subset_of_sparse(&self, other: &SparseBits) -> bool {
        let mut oi = 0;
        'outer: for &x in self.ids.iter() {
            while oi < other.ids.len() {
                match other.ids[oi].cmp(&x) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The ids of `self` that are **not** in `mask` — used to compute cluster
    /// residuals (`member \ shared`).
    pub fn difference_dense(&self, mask: &FixedBitSet) -> SparseBits {
        SparseBits {
            ids: self
                .ids
                .iter()
                .copied()
                .filter(|&i| !mask.contains(i as usize))
                .collect(),
        }
    }

    /// Sorted-merge intersection `self ∩ other`.
    pub fn intersect(&self, other: &SparseBits) -> SparseBits {
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::with_capacity(self.ids.len().min(other.ids.len()));
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        SparseBits {
            ids: out.into_boxed_slice(),
        }
    }

    /// Sorted-merge union `self ∪ other`.
    pub fn union(&self, other: &SparseBits) -> SparseBits {
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        SparseBits {
            ids: out.into_boxed_slice(),
        }
    }

    /// Sorted-merge difference `self \ other`.
    pub fn difference(&self, other: &SparseBits) -> SparseBits {
        let mut j = 0usize;
        let mut out = Vec::with_capacity(self.ids.len());
        for &x in self.ids.iter() {
            while j < other.ids.len() && other.ids[j] < x {
                j += 1;
            }
            if j >= other.ids.len() || other.ids[j] != x {
                out.push(x);
            }
        }
        SparseBits {
            ids: out.into_boxed_slice(),
        }
    }

    /// Approximate heap footprint in bytes, for the memory experiments.
    pub fn heap_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u32>()
    }
}

impl FromIterator<u32> for SparseBits {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = SparseBits::new(vec![9, 1, 9, 4]);
        assert_eq!(s.ids(), &[1, 4, 9]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(4) && !s.contains(5));
    }

    #[test]
    fn dense_round_trip() {
        let dense = FixedBitSet::from_indices(300, [0, 64, 128, 299]);
        let sparse = SparseBits::from_dense(&dense);
        assert_eq!(sparse.ids(), &[0, 64, 128, 299]);
        assert_eq!(sparse.to_dense(300), dense);
    }

    #[test]
    fn subset_of_dense_kernel() {
        let dense = FixedBitSet::from_indices(100, [2, 5, 9, 70]);
        assert!(SparseBits::new(vec![2, 70]).subset_of_dense(&dense));
        assert!(!SparseBits::new(vec![2, 3]).subset_of_dense(&dense));
        assert!(SparseBits::empty().subset_of_dense(&dense));
    }

    #[test]
    fn disjoint_from_dense_kernel() {
        let dense = FixedBitSet::from_indices(100, [2, 5, 9]);
        assert!(SparseBits::new(vec![1, 3, 70]).disjoint_from_dense(&dense));
        assert!(!SparseBits::new(vec![1, 5]).disjoint_from_dense(&dense));
        assert!(SparseBits::empty().disjoint_from_dense(&dense));
    }

    #[test]
    fn subset_of_sparse_merge() {
        let big = SparseBits::new(vec![1, 3, 5, 7, 9]);
        assert!(SparseBits::new(vec![3, 9]).subset_of_sparse(&big));
        assert!(SparseBits::new(vec![]).subset_of_sparse(&big));
        assert!(!SparseBits::new(vec![3, 4]).subset_of_sparse(&big));
        assert!(!SparseBits::new(vec![10]).subset_of_sparse(&big));
        assert!(big.subset_of_sparse(&big));
    }

    #[test]
    fn difference_dense_computes_residual() {
        let member = SparseBits::new(vec![1, 2, 3, 4]);
        let shared = FixedBitSet::from_indices(10, [2, 4]);
        assert_eq!(member.difference_dense(&shared).ids(), &[1, 3]);
    }

    #[test]
    fn from_iterator() {
        let s: SparseBits = [5u32, 1, 5].into_iter().collect();
        assert_eq!(s.ids(), &[1, 5]);
    }

    #[test]
    fn sparse_set_algebra() {
        let a = SparseBits::new(vec![1, 3, 5, 7]);
        let b = SparseBits::new(vec![3, 4, 7, 9]);
        assert_eq!(a.intersect(&b).ids(), &[3, 7]);
        assert_eq!(a.union(&b).ids(), &[1, 3, 4, 5, 7, 9]);
        assert_eq!(a.difference(&b).ids(), &[1, 5]);
        assert_eq!(b.difference(&a).ids(), &[4, 9]);
        let empty = SparseBits::empty();
        assert_eq!(a.intersect(&empty).ids(), &[] as &[u32]);
        assert_eq!(a.union(&empty), a);
        assert_eq!(a.difference(&empty), a);
        assert_eq!(empty.difference(&a).ids(), &[] as &[u32]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// Sparse and dense subset tests agree.
        #[test]
        fn sparse_dense_subset_agree(
            a in proptest::collection::btree_set(0u32..200, 0..20),
            b in proptest::collection::btree_set(0u32..200, 0..40),
        ) {
            let sa = SparseBits::new(a.iter().copied().collect());
            let sb = SparseBits::new(b.iter().copied().collect());
            let db = sb.to_dense(200);
            prop_assert_eq!(sa.subset_of_dense(&db), a.is_subset(&b));
            prop_assert_eq!(sa.subset_of_sparse(&sb), a.is_subset(&b));
        }

        /// Sparse set algebra models BTreeSet algebra.
        #[test]
        fn algebra_models_btreeset(
            a in proptest::collection::btree_set(0u32..100, 0..30),
            b in proptest::collection::btree_set(0u32..100, 0..30),
        ) {
            let sa = SparseBits::new(a.iter().copied().collect());
            let sb = SparseBits::new(b.iter().copied().collect());
            prop_assert_eq!(
                sa.intersect(&sb).ids().to_vec(),
                a.intersection(&b).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                sa.union(&sb).ids().to_vec(),
                a.union(&b).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                sa.difference(&sb).ids().to_vec(),
                a.difference(&b).copied().collect::<Vec<_>>()
            );
        }

        /// shared ∪ residual reconstructs the member exactly.
        #[test]
        fn residual_reconstructs(
            member in proptest::collection::btree_set(0u32..200, 1..20),
            shared in proptest::collection::btree_set(0u32..200, 0..20),
        ) {
            let m = SparseBits::new(member.iter().copied().collect());
            let s = FixedBitSet::from_indices(200, shared.iter().map(|&i| i as usize));
            let residual = m.difference_dense(&s);
            let reconstructed: BTreeSet<u32> = residual
                .ids()
                .iter()
                .copied()
                .chain(member.intersection(&shared).copied())
                .collect();
            prop_assert_eq!(reconstructed, member);
        }
    }
}
