//! Encoding layer for compressed Boolean-expression matching.
//!
//! A-PCM reduces expression matching to bit-parallel subset tests. This crate
//! provides the machinery for that reduction:
//!
//! * [`FixedBitSet`] / [`SparseBits`] — dense and sparse bit vectors with the
//!   word-level subset kernels the matcher's hot loop runs on,
//! * [`PredicateRegistry`] — deduplicates the corpus' predicates and assigns
//!   each distinct predicate a bit position (the *predicate space*),
//! * [`IntervalTree`] — a static centered interval tree used to answer
//!   stabbing queries ("which range predicates does value `v` satisfy?"),
//! * [`EventIndex`] — the per-attribute satisfaction index that turns an
//!   event into the bitmap of all predicates it satisfies, and
//! * [`PredicateSpace`] — the bundle of registry + index + subscription
//!   encodings that every bitmap-based engine builds on.
//!
//! With an event bitmap `E` and a subscription bitmap `S`, the subscription
//! matches iff `S ⊆ E`. The compressed matcher in `apcm-core` additionally
//! factors clusters of similar `S` into a shared mask plus sparse residuals.

pub mod arena;
pub mod bitset;
pub mod index;
pub mod interval;
pub mod registry;
pub mod space;
pub mod sparse;
pub mod summary;

pub use arena::MemberArena;
pub use bitset::FixedBitSet;
pub use index::EventIndex;
pub use interval::IntervalTree;
pub use registry::PredicateRegistry;
pub use space::{EncodedSub, PredicateSpace};
pub use sparse::SparseBits;
pub use summary::SummarySpace;
