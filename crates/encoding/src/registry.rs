//! Predicate registry: the corpus-wide predicate space.

use apcm_bexpr::{PredId, Predicate};
use std::collections::HashMap;

/// Deduplicates predicates and assigns each distinct predicate a dense
/// [`PredId`] — the bit position used by every bitmap in the system.
///
/// Real corpora reuse predicates heavily (millions of expressions share tens
/// of thousands of distinct predicates), which is exactly what makes
/// bitmap-based matching compact: the predicate space, not the corpus size,
/// determines bitmap width.
#[derive(Debug, Default)]
pub struct PredicateRegistry {
    preds: Vec<Predicate>,
    ids: HashMap<Predicate, PredId>,
}

impl PredicateRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `pred`, registering it if unseen.
    pub fn intern(&mut self, pred: &Predicate) -> PredId {
        if let Some(&id) = self.ids.get(pred) {
            return id;
        }
        let id = PredId::from_index(self.preds.len());
        self.preds.push(pred.clone());
        self.ids.insert(pred.clone(), id);
        id
    }

    /// Returns the id for `pred` if already registered.
    pub fn get(&self, pred: &Predicate) -> Option<PredId> {
        self.ids.get(pred).copied()
    }

    /// Returns the predicate registered under `id`.
    pub fn predicate(&self, id: PredId) -> Option<&Predicate> {
        self.preds.get(id.index())
    }

    /// Number of distinct predicates — the bitmap width of the system.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the registry is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterates `(id, predicate)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, &Predicate)> {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, p)| (PredId::from_index(i), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::{AttrId, Op};

    #[test]
    fn intern_dedups() {
        let mut reg = PredicateRegistry::new();
        let p1 = Predicate::new(AttrId(0), Op::Eq(5));
        let p2 = Predicate::new(AttrId(0), Op::Eq(5));
        let p3 = Predicate::new(AttrId(0), Op::Eq(6));
        let a = reg.intern(&p1);
        let b = reg.intern(&p2);
        let c = reg.intern(&p3);
        assert_eq!(a, b, "identical predicates share a bit");
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(&p1), Some(a));
        assert_eq!(reg.predicate(a), Some(&p1));
    }

    #[test]
    fn canonical_sets_share_bits() {
        let mut reg = PredicateRegistry::new();
        let a = reg.intern(&Predicate::new(AttrId(1), Op::in_set(vec![3, 1]).unwrap()));
        let b = reg.intern(&Predicate::new(
            AttrId(1),
            Op::in_set(vec![1, 3, 3]).unwrap(),
        ));
        assert_eq!(a, b, "IN-set canonicalization makes these identical");
    }

    #[test]
    fn iteration_order_is_registration_order() {
        let mut reg = PredicateRegistry::new();
        reg.intern(&Predicate::new(AttrId(0), Op::Lt(1)));
        reg.intern(&Predicate::new(AttrId(0), Op::Lt(2)));
        let ids: Vec<u32> = reg.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert!(!reg.is_empty());
    }
}
