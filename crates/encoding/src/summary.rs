//! Coarse predicate-space summaries for router-level partition pruning.
//!
//! A-PCM prunes whole clusters of subscriptions with a shared compressed mask
//! before testing members. This module lifts the same idea one level up, to
//! the cluster tier: each backend maintains a small bitset that *covers* every
//! subscription it holds, and the router skips backends whose summary cannot
//! possibly cover an event window.
//!
//! # Bit layout (wire contract)
//!
//! The summary bit-space is derived purely from the [`Schema`], so the router
//! and every backend agree on it without negotiation. Attributes are laid out
//! in registration order; attribute `a` with domain cardinality `card` gets
//! `B = min(card, 64)` *buckets*, each bucket covering an equal-width slice of
//! the domain. Bit `base(a) + bucket(a, v)` means "some subscription on this
//! backend can be satisfied by attribute `a` taking a value in `v`'s bucket".
//!
//! `bucket(a, v) = (v - min(a)) * B / card` — the same equal-width split for
//! every party. This layout is pinned by golden tests below; changing it is a
//! protocol break and requires a `SUMMARY` verb version bump.
//!
//! # Soundness
//!
//! Predicates are conjunctive and an absent attribute never satisfies a
//! predicate (including `Ne`/`NotIn` — see `apcm-bexpr`'s semantics note).
//! Therefore for any single predicate `p` of a subscription `s`, "the event's
//! value for `p.attr` falls in a bucket that `p` can be satisfied in" is a
//! *necessary* condition for `s` to match. Each subscription contributes one
//! witness predicate's bucket cover (the smallest available) to the backend
//! summary; an event whose bits miss the whole summary cannot match any
//! subscription on that backend. False positives only cost fan-out; false
//! negatives are impossible **for events whose values lie inside the schema
//! domains** (the wire parser enforces this; direct library callers passing
//! out-of-domain values get them clamped, which is only sound for validated
//! input).

use crate::FixedBitSet;
use apcm_bexpr::{Event, Predicate, Schema, Subscription, Value};

/// Upper bound on buckets per attribute; keeps the whole summary at
/// `dims * 64` bits worst-case (20 words for the default 20-dim schema).
pub const MAX_BUCKETS_PER_ATTR: u64 = 64;

/// Per-attribute slot in the summary layout.
#[derive(Debug, Clone, Copy)]
struct AttrSlot {
    base: u32,
    buckets: u32,
    min: Value,
    cardinality: u64,
}

/// Schema-derived layout of the coarse summary bit-space, shared by the
/// router and all backends. See the module docs for the exact bit contract.
#[derive(Debug, Clone)]
pub struct SummarySpace {
    slots: Vec<AttrSlot>,
    nbits: usize,
}

impl SummarySpace {
    /// Builds the layout for `schema`. Deterministic: same schema, same bits.
    pub fn new(schema: &Schema) -> Self {
        let mut slots = Vec::with_capacity(schema.dims());
        let mut base = 0u32;
        for (_, info) in schema.iter() {
            let domain = info.domain();
            let cardinality = domain.cardinality();
            let buckets = cardinality.min(MAX_BUCKETS_PER_ATTR) as u32;
            slots.push(AttrSlot {
                base,
                buckets,
                min: domain.min(),
                cardinality,
            });
            base += buckets;
        }
        Self {
            slots,
            nbits: base as usize,
        }
    }

    /// Total number of bits in the summary space.
    #[inline]
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Bucket index of `v` within attribute slot `slot`, clamping
    /// out-of-domain values to the nearest edge bucket.
    #[inline]
    fn bucket(slot: &AttrSlot, v: Value) -> u32 {
        let off =
            (v.clamp(slot.min, slot.min + (slot.cardinality - 1) as Value) - slot.min) as u128;
        (off * slot.buckets as u128 / slot.cardinality as u128) as u32
    }

    /// Encodes an event as the set of `(attr, bucket)` bits its present
    /// values occupy. Attributes outside the schema are ignored (the wire
    /// parser never produces them).
    pub fn event_bits(&self, event: &Event) -> FixedBitSet {
        let mut bits = FixedBitSet::new(self.nbits);
        for &(attr, value) in event.pairs() {
            if let Some(slot) = self.slots.get(attr.index()) {
                bits.insert((slot.base + Self::bucket(slot, value)) as usize);
            }
        }
        bits
    }

    /// The bucket cover of one predicate: every bit whose bucket overlaps a
    /// satisfying interval of the operator. Sorted and deduplicated. An empty
    /// cover means the predicate is unsatisfiable within its domain.
    pub fn predicate_cover(&self, pred: &Predicate) -> Vec<u32> {
        let Some(slot) = self.slots.get(pred.attr.index()) else {
            // Attribute outside the schema: no valid event carries it, so the
            // predicate (and thus its subscription) can never match.
            return Vec::new();
        };
        let domain = apcm_bexpr::Domain::new(slot.min, slot.min + (slot.cardinality - 1) as Value);
        let mut cover = Vec::new();
        for (lo, hi) in pred.op.satisfying_intervals(domain) {
            let (b_lo, b_hi) = (Self::bucket(slot, lo), Self::bucket(slot, hi));
            for b in b_lo..=b_hi {
                if cover.last() != Some(&(slot.base + b)) {
                    cover.push(slot.base + b);
                }
            }
        }
        cover
    }

    /// The witness cover of a subscription: the smallest single-predicate
    /// cover among its conjuncts. Since every predicate must hold for the
    /// subscription to match, any one predicate's cover is a sound necessary
    /// condition; picking the smallest maximizes pruning power.
    pub fn sub_cover(&self, sub: &Subscription) -> Vec<u32> {
        sub.predicates()
            .iter()
            .map(|p| self.predicate_cover(p))
            .min_by_key(Vec::len)
            .unwrap_or_default()
    }

    /// Whether a summary bitset can cover an event window: true iff `summary`
    /// intersects the bits of at least one event. A `false` return proves no
    /// subscription behind `summary` matches any event in the window.
    pub fn window_may_match(&self, summary: &FixedBitSet, event_bits: &[FixedBitSet]) -> bool {
        event_bits.iter().any(|ev| summary.intersects(ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::{AttrId, Domain, Op, SubId};

    fn ev(pairs: &[(u32, Value)]) -> Event {
        Event::new(pairs.iter().map(|&(a, v)| (AttrId(a), v)).collect()).unwrap()
    }

    fn sub(id: u32, preds: Vec<Predicate>) -> Subscription {
        Subscription::new(SubId(id), preds).unwrap()
    }

    /// Golden pin of the bit layout: this is a wire contract between router
    /// and backends. If this test changes, the SUMMARY verb needs versioning.
    #[test]
    fn layout_golden_pins() {
        // Small cardinality (< 64): one bucket per value, bases accumulate.
        let s = Schema::uniform(3, 10);
        let space = SummarySpace::new(&s);
        assert_eq!(space.nbits(), 30);
        let bits = space.event_bits(&ev(&[(0, 0), (1, 9), (2, 5)]));
        assert_eq!(bits.ones().collect::<Vec<_>>(), vec![0, 19, 25]);

        // Large cardinality (1000): capped at 64 equal-width buckets.
        let s = Schema::uniform(2, 1000);
        let space = SummarySpace::new(&s);
        assert_eq!(space.nbits(), 128);
        let bits = space.event_bits(&ev(&[(0, 0), (1, 999)]));
        assert_eq!(bits.ones().collect::<Vec<_>>(), vec![0, 64 + 63]);
        // Mid-domain value lands in the proportional bucket.
        let bits = space.event_bits(&ev(&[(0, 500)]));
        assert_eq!(bits.ones().collect::<Vec<_>>(), vec![32]);
    }

    #[test]
    fn non_zero_domain_min() {
        let mut s = Schema::new();
        s.add_attr("x", Domain::new(100, 109)).unwrap();
        let space = SummarySpace::new(&s);
        assert_eq!(space.nbits(), 10);
        let bits = space.event_bits(&ev(&[(0, 103)]));
        assert_eq!(bits.ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn predicate_cover_shapes() {
        let s = Schema::uniform(1, 10);
        let space = SummarySpace::new(&s);
        let cov = |op: Op| space.predicate_cover(&Predicate::new(AttrId(0), op));
        assert_eq!(cov(Op::Eq(3)), vec![3]);
        assert_eq!(cov(Op::Between(2, 4)), vec![2, 3, 4]);
        assert_eq!(cov(Op::Lt(2)), vec![0, 1]);
        // Ne excludes exactly the complement bucket at full resolution.
        assert_eq!(cov(Op::Ne(0)), (1..10).collect::<Vec<_>>());
        // Disjoint In runs stay disjoint.
        assert_eq!(cov(Op::in_set(vec![1, 2, 7]).unwrap()), vec![1, 2, 7]);
        // Unsatisfiable within the domain: empty cover.
        assert_eq!(cov(Op::Lt(0)), Vec::<u32>::new());
    }

    #[test]
    fn sub_cover_picks_smallest_witness() {
        let s = Schema::uniform(2, 10);
        let space = SummarySpace::new(&s);
        let sub = sub(
            1,
            vec![
                Predicate::new(AttrId(0), Op::Ge(0)), // covers all 10 buckets
                Predicate::new(AttrId(1), Op::Eq(7)), // covers 1 bucket
            ],
        );
        assert_eq!(space.sub_cover(&sub), vec![10 + 7]);
    }

    /// Core soundness property on a deterministic sweep: if a subscription
    /// matches an event, the subscription's cover intersects the event bits.
    #[test]
    fn cover_is_necessary_condition_exhaustive() {
        let s = Schema::uniform(2, 25);
        let space = SummarySpace::new(&s);
        let subs = vec![
            sub(1, vec![Predicate::new(AttrId(0), Op::Between(3, 17))]),
            sub(2, vec![Predicate::new(AttrId(1), Op::Ne(12))]),
            sub(
                3,
                vec![
                    Predicate::new(AttrId(0), Op::not_in_set(vec![4, 9]).unwrap()),
                    Predicate::new(AttrId(1), Op::in_set(vec![0, 24]).unwrap()),
                ],
            ),
            sub(
                4,
                vec![
                    Predicate::new(AttrId(0), Op::Gt(20)),
                    Predicate::new(AttrId(1), Op::Le(2)),
                ],
            ),
        ];
        for a in 0..25 {
            for b in 0..25 {
                let event = ev(&[(0, a), (1, b)]);
                let ebits = space.event_bits(&event);
                for sc in &subs {
                    let cover = FixedBitSet::from_indices(
                        space.nbits(),
                        space.sub_cover(sc).iter().map(|&b| b as usize),
                    );
                    if sc.matches(&event) {
                        assert!(
                            cover.intersects(&ebits),
                            "false negative: sub {:?} matches ({a},{b}) but cover misses",
                            sc.id()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn window_may_match_semantics() {
        let s = Schema::uniform(1, 10);
        let space = SummarySpace::new(&s);
        let summary = FixedBitSet::from_indices(space.nbits(), [3usize, 4]);
        let hit = space.event_bits(&ev(&[(0, 4)]));
        let miss = space.event_bits(&ev(&[(0, 8)]));
        assert!(space.window_may_match(&summary, &[miss.clone(), hit]));
        assert!(!space.window_may_match(&summary, &[miss]));
        assert!(!space.window_may_match(&summary, &[]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use apcm_bexpr::{AttrId, Op, SubId};
    use proptest::prelude::*;

    const DIMS: usize = 4;
    const CARD: i64 = 150; // > 64 so bucketing is genuinely lossy

    fn arb_op() -> impl Strategy<Value = Op> {
        let v = 0i64..CARD;
        prop_oneof![
            v.clone().prop_map(Op::Eq),
            v.clone().prop_map(Op::Ne),
            v.clone().prop_map(Op::Lt),
            v.clone().prop_map(Op::Le),
            v.clone().prop_map(Op::Gt),
            v.clone().prop_map(Op::Ge),
            (v.clone(), 0i64..40i64).prop_map(|(lo, w)| Op::Between(lo, (lo + w).min(CARD - 1))),
            proptest::collection::vec(v.clone(), 1..6)
                .prop_map(|vs| Op::in_set(vs).expect("non-empty")),
            proptest::collection::vec(v, 1..6)
                .prop_map(|vs| Op::not_in_set(vs).expect("non-empty")),
        ]
    }

    fn arb_sub(id: u32) -> impl Strategy<Value = Subscription> {
        proptest::collection::vec((0u32..DIMS as u32, arb_op()), 1..4).prop_map(move |preds| {
            Subscription::new(
                SubId(id),
                preds
                    .into_iter()
                    .map(|(a, op)| Predicate::new(AttrId(a), op))
                    .collect(),
            )
            .expect("non-empty")
        })
    }

    fn arb_event() -> impl Strategy<Value = Event> {
        proptest::collection::vec((0u32..DIMS as u32, 0i64..CARD), 1..DIMS + 1).prop_map(|pairs| {
            // Deduplicate attributes, keeping the first value for each.
            let mut seen = std::collections::BTreeMap::new();
            for (a, v) in pairs {
                seen.entry(a).or_insert(v);
            }
            Event::new(seen.into_iter().map(|(a, v)| (AttrId(a), v)).collect())
                .expect("valid event")
        })
    }

    proptest! {
        /// The witness cover never produces a false negative: whenever the
        /// subscription matches the event, the cover intersects the event's
        /// summary bits.
        #[test]
        fn sub_cover_sound(sub in arb_sub(7), event in arb_event()) {
            let schema = Schema::uniform(DIMS, CARD as u64);
            let space = SummarySpace::new(&schema);
            let ebits = space.event_bits(&event);
            let cover = FixedBitSet::from_indices(
                space.nbits(),
                space.sub_cover(&sub).iter().map(|&b| b as usize),
            );
            if sub.matches(&event) {
                prop_assert!(cover.intersects(&ebits));
            }
        }

        /// Every predicate's full cover contains the bucket of every value
        /// that satisfies it (per-predicate necessary condition).
        #[test]
        fn predicate_cover_contains_satisfying_buckets(op in arb_op(), v in 0i64..CARD) {
            let schema = Schema::uniform(DIMS, CARD as u64);
            let space = SummarySpace::new(&schema);
            let pred = Predicate::new(AttrId(0), op);
            if pred.matches(Some(v)) {
                let cover = space.predicate_cover(&pred);
                let ebits = space.event_bits(
                    &Event::new(vec![(AttrId(0), v)]).unwrap(),
                );
                let bit = ebits.ones().next().unwrap() as u32;
                prop_assert!(cover.contains(&bit));
            }
        }
    }
}
