//! Dense fixed-width bitsets with the word-level kernels the matcher runs on.
//!
//! A purpose-built bitset (rather than an external crate) keeps the hot
//! subset/union kernels in one screen of code, gives the compression layer
//! direct word access, and avoids generic-block indirection.

use serde::{Deserialize, Serialize};
use std::fmt;

const BITS: usize = u64::BITS as usize;

/// A fixed-capacity dense bitset backed by `u64` words.
///
/// Capacity is fixed at construction; all binary operations require equal
/// capacity (enforced by `debug_assert!` in release-hot paths and by
/// `assert!` in constructors).
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedBitSet {
    nbits: usize,
    words: Box<[u64]>,
}

impl FixedBitSet {
    /// An empty bitset with capacity for `nbits` bits.
    pub fn new(nbits: usize) -> Self {
        Self {
            nbits,
            words: vec![0u64; nbits.div_ceil(BITS)].into_boxed_slice(),
        }
    }

    /// Builds a bitset of capacity `nbits` with the given bits set.
    ///
    /// # Panics
    /// Panics if any index is `>= nbits`.
    pub fn from_indices(nbits: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut set = Self::new(nbits);
        for i in indices {
            set.insert(i);
        }
        set
    }

    /// Bit capacity.
    #[inline]
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= nbits` (in all build profiles — an out-of-range write
    /// would silently corrupt matching results).
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / BITS] |= 1u64 << (i % BITS);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / BITS] &= !(1u64 << (i % BITS));
    }

    /// Whether bit `i` is set. Out-of-range reads return `false`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.nbits {
            return false;
        }
        self.words[i / BITS] & (1u64 << (i % BITS)) != 0
    }

    /// Clears all bits, keeping capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The matcher's hot kernel: `self ⊆ other`, i.e. every set bit of
    /// `self` is also set in `other`. Early-exits on the first word that
    /// fails.
    ///
    /// Read-only comparisons tolerate unequal capacities (bits beyond a
    /// set's capacity are treated as unset) so that structures built before
    /// a dynamic predicate-space growth remain directly comparable.
    #[inline]
    pub fn is_subset(&self, other: &FixedBitSet) -> bool {
        let n = self.words.len().min(other.words.len());
        self.words[..n]
            .iter()
            .zip(other.words[..n].iter())
            .all(|(&a, &b)| a & !b == 0)
            && self.words[n..].iter().all(|&a| a == 0)
    }

    /// Whether `self` and `other` share at least one set bit. Tolerates
    /// unequal capacities like [`FixedBitSet::is_subset`].
    #[inline]
    pub fn intersects(&self, other: &FixedBitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// `self |= other`.
    #[inline]
    pub fn union_with(&mut self, other: &FixedBitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `self &= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    #[inline]
    pub fn difference_with(&mut self, other: &FixedBitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Number of bits set in both `self` and `other` without materializing
    /// the intersection. Tolerates unequal capacities.
    #[inline]
    pub fn intersection_count(&self, other: &FixedBitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of bits set in `self` or `other`. Tolerates unequal
    /// capacities.
    #[inline]
    pub fn union_count(&self, other: &FixedBitSet) -> usize {
        let n = self.words.len().min(other.words.len());
        let shared: usize = self.words[..n]
            .iter()
            .zip(other.words[..n].iter())
            .map(|(&a, &b)| (a | b).count_ones() as usize)
            .sum();
        let tail_a: usize = self.words[n..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let tail_b: usize = other.words[n..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        shared + tail_a + tail_b
    }

    /// Jaccard similarity `|A∩B| / |A∪B|`; two empty sets are defined as
    /// similarity 1.0 (they are identical). Used by the clustering policies.
    pub fn jaccard(&self, other: &FixedBitSet) -> f64 {
        let union = self.union_count(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_count(other) as f64 / union as f64
    }

    /// Iterates over set bit indices in ascending order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw word access (read), for the compression layer.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Raw word access (write), for encoders that fill the set word-wise.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Approximate heap footprint in bytes, for the memory experiments.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

impl fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FixedBitSet({}; ", self.nbits)?;
        f.debug_set().entries(self.ones()).finish()?;
        write!(f, ")")
    }
}

/// Iterator over set bits; see [`FixedBitSet::ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(!s.contains(999), "out-of-range read is false");
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        FixedBitSet::new(10).insert(10);
    }

    #[test]
    fn zero_capacity() {
        let s = FixedBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.ones().count(), 0);
    }

    #[test]
    fn subset_and_intersects() {
        let a = FixedBitSet::from_indices(200, [1, 70, 150]);
        let b = FixedBitSet::from_indices(200, [1, 2, 70, 150, 151]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a), "subset is reflexive");
        assert!(a.intersects(&b));
        let c = FixedBitSet::from_indices(200, [3, 4]);
        assert!(!a.intersects(&c));
        assert!(FixedBitSet::new(200).is_subset(&c), "empty ⊆ anything");
    }

    #[test]
    fn binary_ops() {
        let mut a = FixedBitSet::from_indices(100, [1, 2, 3]);
        let b = FixedBitSet::from_indices(100, [3, 4]);
        a.union_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        a.intersect_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![3, 4]);
        a.difference_with(&FixedBitSet::from_indices(100, [4]));
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn counting_ops() {
        let a = FixedBitSet::from_indices(128, [0, 1, 2, 64]);
        let b = FixedBitSet::from_indices(128, [2, 64, 100]);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.union_count(&b), 5);
        assert!((a.jaccard(&b) - 0.4).abs() < 1e-12);
        let empty = FixedBitSet::new(128);
        assert!((empty.jaccard(&empty) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ones_iterates_across_words() {
        let idx = vec![0, 5, 63, 64, 65, 127, 128, 300];
        let s = FixedBitSet::from_indices(301, idx.clone());
        assert_eq!(s.ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn clear_resets() {
        let mut s = FixedBitSet::from_indices(64, [5, 6]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.nbits(), 64);
    }

    #[test]
    fn debug_render() {
        let s = FixedBitSet::from_indices(70, [3, 65]);
        assert_eq!(format!("{s:?}"), "FixedBitSet(70; {3, 65})");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn arb_indices() -> impl Strategy<Value = BTreeSet<usize>> {
        proptest::collection::btree_set(0usize..256, 0..40)
    }

    proptest! {
        /// The bitset behaves exactly like a set of indices.
        #[test]
        fn models_btreeset(a in arb_indices(), b in arb_indices()) {
            let sa = FixedBitSet::from_indices(256, a.iter().copied());
            let sb = FixedBitSet::from_indices(256, b.iter().copied());

            prop_assert_eq!(sa.count_ones(), a.len());
            prop_assert_eq!(sa.ones().collect::<Vec<_>>(), a.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
            prop_assert_eq!(sa.intersects(&sb), !a.is_disjoint(&b));
            prop_assert_eq!(sa.intersection_count(&sb), a.intersection(&b).count());
            prop_assert_eq!(sa.union_count(&sb), a.union(&b).count());

            let mut u = sa.clone();
            u.union_with(&sb);
            prop_assert_eq!(
                u.ones().collect::<Vec<_>>(),
                a.union(&b).copied().collect::<Vec<_>>()
            );

            let mut i = sa.clone();
            i.intersect_with(&sb);
            prop_assert_eq!(
                i.ones().collect::<Vec<_>>(),
                a.intersection(&b).copied().collect::<Vec<_>>()
            );

            let mut d = sa.clone();
            d.difference_with(&sb);
            prop_assert_eq!(
                d.ones().collect::<Vec<_>>(),
                a.difference(&b).copied().collect::<Vec<_>>()
            );
        }

        /// `A∩B ⊆ A ⊆ A∪B` holds for any pair.
        #[test]
        fn lattice_laws(a in arb_indices(), b in arb_indices()) {
            let sa = FixedBitSet::from_indices(256, a.iter().copied());
            let sb = FixedBitSet::from_indices(256, b.iter().copied());
            let mut inter = sa.clone();
            inter.intersect_with(&sb);
            let mut uni = sa.clone();
            uni.union_with(&sb);
            prop_assert!(inter.is_subset(&sa));
            prop_assert!(sa.is_subset(&uni));
        }
    }
}
