//! Static centered interval tree for stabbing queries.
//!
//! The event index must answer, per attribute, "which registered range
//! predicates does value `v` satisfy?". Predicates reduce to inclusive
//! intervals (see `apcm_bexpr::Op::satisfying_intervals`), so this is a
//! classic stabbing query: `O(log n + k)` with a centered interval tree,
//! versus `O(n)` for a flat scan — the difference dominates event-encoding
//! cost on corpora with many range predicates per attribute.

use apcm_bexpr::Value;

/// One stored interval with its payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    lo: Value,
    hi: Value,
    payload: T,
}

#[derive(Debug)]
struct Node<T> {
    center: Value,
    /// Intervals overlapping `center`, sorted ascending by `lo`.
    by_lo: Box<[Entry<T>]>,
    /// The same intervals, sorted descending by `hi`.
    by_hi: Box<[Entry<T>]>,
    left: Option<u32>,
    right: Option<u32>,
}

/// An immutable interval tree over inclusive `[lo, hi]` intervals.
///
/// Built once from the full interval list; the encoding layer handles
/// post-build predicate insertions with a small linear overflow list and
/// periodically rebuilds (see `EventIndex`).
#[derive(Debug)]
pub struct IntervalTree<T> {
    nodes: Vec<Node<T>>,
    root: Option<u32>,
    len: usize,
}

impl<T: Clone> IntervalTree<T> {
    /// Builds a tree from `(lo, hi, payload)` triples.
    ///
    /// # Panics
    /// Panics if any interval has `lo > hi` (upstream predicate
    /// normalization guarantees non-empty intervals).
    pub fn build(intervals: Vec<(Value, Value, T)>) -> Self {
        let entries: Vec<Entry<T>> = intervals
            .into_iter()
            .map(|(lo, hi, payload)| {
                assert!(lo <= hi, "empty interval [{lo}, {hi}]");
                Entry { lo, hi, payload }
            })
            .collect();
        let len = entries.len();
        let mut tree = Self {
            nodes: Vec::new(),
            root: None,
            len,
        };
        tree.root = tree.build_node(entries);
        tree
    }

    fn build_node(&mut self, mut entries: Vec<Entry<T>>) -> Option<u32> {
        if entries.is_empty() {
            return None;
        }
        // Center on the median interval midpoint: the median interval itself
        // always overlaps its own midpoint, so every recursion strictly
        // shrinks the input and the build terminates.
        let mut mids: Vec<Value> = entries.iter().map(|e| e.lo + (e.hi - e.lo) / 2).collect();
        let mid_idx = mids.len() / 2;
        let (_, center, _) = mids.select_nth_unstable(mid_idx);
        let center = *center;

        let mut overlapping = Vec::new();
        let mut left_entries = Vec::new();
        let mut right_entries = Vec::new();
        for e in entries.drain(..) {
            if e.hi < center {
                left_entries.push(e);
            } else if e.lo > center {
                right_entries.push(e);
            } else {
                overlapping.push(e);
            }
        }
        debug_assert!(!overlapping.is_empty(), "median midpoint must overlap");

        let mut by_lo = overlapping.clone();
        by_lo.sort_by_key(|e| e.lo);
        let mut by_hi = overlapping;
        by_hi.sort_by_key(|e| std::cmp::Reverse(e.hi));

        let left = self.build_node(left_entries);
        let right = self.build_node(right_entries);
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            center,
            by_lo: by_lo.into_boxed_slice(),
            by_hi: by_hi.into_boxed_slice(),
            left,
            right,
        });
        Some(idx)
    }

    /// Number of stored intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Visits the payload of every interval containing `v`.
    pub fn stab_visit(&self, v: Value, mut f: impl FnMut(&T)) {
        let mut cursor = self.root;
        while let Some(idx) = cursor {
            let node = &self.nodes[idx as usize];
            match v.cmp(&node.center) {
                std::cmp::Ordering::Less => {
                    // Only intervals starting at or before v can contain it;
                    // by_lo is ascending, so stop at the first lo > v.
                    for e in node.by_lo.iter().take_while(|e| e.lo <= v) {
                        f(&e.payload);
                    }
                    cursor = node.left;
                }
                std::cmp::Ordering::Greater => {
                    // Symmetric: by_hi is descending, stop at first hi < v.
                    for e in node.by_hi.iter().take_while(|e| e.hi >= v) {
                        f(&e.payload);
                    }
                    cursor = node.right;
                }
                std::cmp::Ordering::Equal => {
                    // Every interval at this node contains the center.
                    for e in node.by_lo.iter() {
                        f(&e.payload);
                    }
                    return;
                }
            }
        }
    }

    /// Collects the payloads of every interval containing `v`.
    pub fn stab_collect(&self, v: Value) -> Vec<T> {
        let mut out = Vec::new();
        self.stab_visit(v, |p| out.push(p.clone()));
        out
    }

    /// Consumes the tree, returning every stored `(lo, hi, payload)` triple.
    /// Used when merging a tree with freshly inserted intervals into a new
    /// build.
    pub fn into_entries(self) -> Vec<(Value, Value, T)> {
        self.nodes
            .into_iter()
            .flat_map(|n| {
                n.by_lo
                    .into_vec()
                    .into_iter()
                    .map(|e| (e.lo, e.hi, e.payload))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stab_sorted(tree: &IntervalTree<u32>, v: Value) -> Vec<u32> {
        let mut out = tree.stab_collect(v);
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree() {
        let tree: IntervalTree<u32> = IntervalTree::build(vec![]);
        assert!(tree.is_empty());
        assert!(tree.stab_collect(5).is_empty());
    }

    #[test]
    fn single_interval() {
        let tree = IntervalTree::build(vec![(3, 7, 1u32)]);
        assert_eq!(tree.len(), 1);
        for v in 3..=7 {
            assert_eq!(stab_sorted(&tree, v), vec![1]);
        }
        assert!(tree.stab_collect(2).is_empty());
        assert!(tree.stab_collect(8).is_empty());
    }

    #[test]
    fn point_intervals() {
        let tree = IntervalTree::build(vec![(5, 5, 1u32), (5, 5, 2), (6, 6, 3)]);
        assert_eq!(stab_sorted(&tree, 5), vec![1, 2]);
        assert_eq!(stab_sorted(&tree, 6), vec![3]);
    }

    #[test]
    fn nested_and_disjoint() {
        let tree = IntervalTree::build(vec![
            (0, 100, 0u32),
            (10, 20, 1),
            (15, 17, 2),
            (50, 60, 3),
            (200, 210, 4),
        ]);
        assert_eq!(stab_sorted(&tree, 16), vec![0, 1, 2]);
        assert_eq!(stab_sorted(&tree, 55), vec![0, 3]);
        assert_eq!(stab_sorted(&tree, 205), vec![4]);
        assert_eq!(stab_sorted(&tree, 150), Vec::<u32>::new());
    }

    #[test]
    fn identical_intervals() {
        let tree = IntervalTree::build((0..50).map(|i| (10, 20, i as u32)).collect());
        assert_eq!(stab_sorted(&tree, 15).len(), 50);
        assert!(tree.stab_collect(21).is_empty());
    }

    #[test]
    fn negative_values() {
        let tree = IntervalTree::build(vec![(-50, -10, 0u32), (-20, 5, 1)]);
        assert_eq!(stab_sorted(&tree, -15), vec![0, 1]);
        assert_eq!(stab_sorted(&tree, 0), vec![1]);
        assert_eq!(stab_sorted(&tree, -60), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn rejects_inverted_interval() {
        let _ = IntervalTree::build(vec![(5, 3, 0u32)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Tree stabbing agrees with a brute-force scan for every probe.
        #[test]
        fn agrees_with_linear_scan(
            intervals in proptest::collection::vec((-100i64..100, 0i64..50), 0..60),
            probes in proptest::collection::vec(-120i64..160, 1..20),
        ) {
            let triples: Vec<(i64, i64, u32)> = intervals
                .iter()
                .enumerate()
                .map(|(i, &(lo, w))| (lo, lo + w, i as u32))
                .collect();
            let tree = IntervalTree::build(triples.clone());
            for &v in &probes {
                let mut expect: Vec<u32> = triples
                    .iter()
                    .filter(|&&(lo, hi, _)| lo <= v && v <= hi)
                    .map(|&(_, _, id)| id)
                    .collect();
                expect.sort_unstable();
                let mut got = tree.stab_collect(v);
                got.sort_unstable();
                prop_assert_eq!(got, expect, "probe {}", v);
            }
        }
    }
}

#[cfg(test)]
mod entry_tests {
    use super::*;

    #[test]
    fn into_entries_returns_every_interval() {
        let input: Vec<(i64, i64, u32)> = (0..40).map(|i| (i, i + (i % 7), i as u32)).collect();
        let tree = IntervalTree::build(input.clone());
        let mut out = tree.into_entries();
        out.sort_by_key(|&(_, _, id)| id);
        let mut expect = input;
        expect.sort_by_key(|&(_, _, id)| id);
        assert_eq!(out, expect);
    }

    #[test]
    fn into_entries_empty_tree() {
        let tree: IntervalTree<u8> = IntervalTree::build(vec![]);
        assert!(tree.into_entries().is_empty());
    }
}
