//! CSR member arena and raw word-slice kernels.
//!
//! The matching hot loop probes thousands of cluster members per event. With
//! members stored as `Vec<Member>`-of-`SparseBits`, every probe chases two
//! `Box<[u32]>` pointers (residual + blocked) scattered across the heap. The
//! [`MemberArena`] flattens a whole cluster into three contiguous buffers —
//! member ids (SoA), per-member spans, and one shared `u32` bit arena — so a
//! member sweep is a linear walk over at most two slices.
//!
//! The free functions at the top are the word-level kernels: they operate on
//! raw `&[u64]` event rows so the matcher can probe flat encoded-event tables
//! without materializing a `FixedBitSet` per event.

use serde::{Deserialize, Serialize};

const BITS: usize = u64::BITS as usize;

/// Whether bit `i` is set in a raw word row. Out-of-range reads are `false`,
/// matching `FixedBitSet::contains`.
#[inline(always)]
pub fn has_bit(words: &[u64], i: usize) -> bool {
    match words.get(i / BITS) {
        Some(w) => (w >> (i % BITS)) & 1 != 0,
        None => false,
    }
}

/// Sets bit `i` in a raw word row. Panics when `i` is out of range, matching
/// `FixedBitSet::insert`.
#[inline(always)]
pub fn set_bit(words: &mut [u64], i: usize) {
    words[i / BITS] |= 1u64 << (i % BITS);
}

/// The residual-test kernel: every id in `ids` is set in `words`.
#[inline(always)]
pub fn contains_all(words: &[u64], ids: &[u32]) -> bool {
    ids.iter().all(|&i| has_bit(words, i as usize))
}

/// The blocked-test kernel: no id in `ids` is set in `words`.
#[inline(always)]
pub fn disjoint(words: &[u64], ids: &[u32]) -> bool {
    ids.iter().all(|&i| !has_bit(words, i as usize))
}

/// Bit ranges of one member inside the arena: `bits[start..start+res_len]`
/// is the residual, the next `blk_len` ids are the blocked set. Lengths are
/// `u16` — a single subscription holds at most a few dozen predicates.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Span {
    start: u32,
    res_len: u16,
    blk_len: u16,
}

/// Cluster members in CSR form: ids as a SoA slice, residual/blocked bits in
/// one contiguous `u32` arena addressed by `(offset, len)` spans.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberArena {
    ids: Vec<u32>,
    spans: Vec<Span>,
    bits: Vec<u32>,
}

impl MemberArena {
    /// An empty arena sized for `members` entries and `bit_capacity` total
    /// residual + blocked ids.
    pub fn with_capacity(members: usize, bit_capacity: usize) -> Self {
        Self {
            ids: Vec::with_capacity(members),
            spans: Vec::with_capacity(members),
            bits: Vec::with_capacity(bit_capacity),
        }
    }

    /// Appends a member. `residual` and `blocked` must each be sorted id
    /// lists (as produced by `SparseBits::ids`).
    pub fn push(&mut self, id: u32, residual: &[u32], blocked: &[u32]) {
        assert!(
            residual.len() <= u16::MAX as usize && blocked.len() <= u16::MAX as usize,
            "member bit list exceeds span width"
        );
        let start = u32::try_from(self.bits.len()).expect("cluster arena exceeds u32 offsets");
        self.bits.extend_from_slice(residual);
        self.bits.extend_from_slice(blocked);
        self.ids.push(id);
        self.spans.push(Span {
            start,
            res_len: residual.len() as u16,
            blk_len: blocked.len() as u16,
        });
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena holds no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Member ids in arena order.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The `k`-th member as `(id, residual, blocked)`.
    #[inline]
    pub fn member(&self, k: usize) -> (u32, &[u32], &[u32]) {
        let span = self.spans[k];
        let start = span.start as usize;
        let mid = start + span.res_len as usize;
        let end = mid + span.blk_len as usize;
        (self.ids[k], &self.bits[start..mid], &self.bits[mid..end])
    }

    /// Iterates members as `(id, residual, blocked)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32], &[u32])> + '_ {
        (0..self.len()).map(move |k| self.member(k))
    }

    /// Position of member `id`, if present.
    pub fn position(&self, id: u32) -> Option<usize> {
        self.ids.iter().position(|&m| m == id)
    }

    /// Removes the `k`-th member by swap, leaving its bits as a hole in the
    /// arena until the cluster is next rebuilt. Returns the removed id.
    pub fn swap_remove(&mut self, k: usize) -> u32 {
        self.spans.swap_remove(k);
        self.ids.swap_remove(k)
    }

    /// The member sweep: appends every member whose residual is contained in
    /// the event row and whose blocked set is disjoint from it. Returns the
    /// number of hits. Pure — no counters, no allocation beyond `out` growth.
    #[inline]
    pub fn match_into(&self, ewords: &[u64], out: &mut Vec<u32>) -> u32 {
        let mut hits = 0u32;
        for (k, &span) in self.spans.iter().enumerate() {
            let start = span.start as usize;
            let mid = start + span.res_len as usize;
            let end = mid + span.blk_len as usize;
            if contains_all(ewords, &self.bits[start..mid])
                && disjoint(ewords, &self.bits[mid..end])
            {
                out.push(self.ids[k]);
                hits += 1;
            }
        }
        hits
    }

    /// Heap footprint in bytes, counting removal holes until rebuild.
    pub fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<u32>()
            + self.spans.capacity() * std::mem::size_of::<Span>()
            + self.bits.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(nbits: usize, set: &[usize]) -> Vec<u64> {
        let mut words = vec![0u64; nbits.div_ceil(BITS)];
        for &i in set {
            set_bit(&mut words, i);
        }
        words
    }

    #[test]
    fn word_kernels_match_bit_semantics() {
        let words = row(130, &[0, 63, 64, 129]);
        assert!(has_bit(&words, 0) && has_bit(&words, 63) && has_bit(&words, 64));
        assert!(!has_bit(&words, 1) && !has_bit(&words, 128));
        // Out-of-range reads are false, like FixedBitSet::contains.
        assert!(!has_bit(&words, 4096));
        assert!(contains_all(&words, &[0, 64, 129]));
        assert!(!contains_all(&words, &[0, 1]));
        assert!(contains_all(&words, &[]));
        assert!(disjoint(&words, &[1, 62, 128]));
        assert!(!disjoint(&words, &[63]));
        assert!(disjoint(&words, &[]));
    }

    #[test]
    fn arena_layout_and_member_access() {
        let mut a = MemberArena::with_capacity(2, 8);
        a.push(7, &[1, 5], &[9]);
        a.push(8, &[], &[2, 3]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.ids(), &[7, 8]);
        assert_eq!(a.member(0), (7, &[1u32, 5][..], &[9u32][..]));
        assert_eq!(a.member(1), (8, &[][..], &[2u32, 3][..]));
        assert_eq!(a.position(8), Some(1));
        assert_eq!(a.position(99), None);
    }

    #[test]
    fn arena_sweep_applies_residual_and_blocked() {
        let mut a = MemberArena::with_capacity(3, 8);
        a.push(1, &[2, 4], &[]); // matches iff bits 2 and 4 set
        a.push(2, &[2], &[4]); // vetoed by bit 4
        a.push(3, &[], &[]); // empty residual always matches
        let mut out = Vec::new();
        let hits = a.match_into(&row(64, &[2, 4]), &mut out);
        assert_eq!(out, vec![1, 3]);
        assert_eq!(hits, 2);

        out.clear();
        a.match_into(&row(64, &[2]), &mut out);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn swap_remove_keeps_survivors_intact() {
        let mut a = MemberArena::with_capacity(3, 8);
        a.push(1, &[2], &[]);
        a.push(2, &[3], &[]);
        a.push(3, &[4], &[]);
        let before = a.heap_bytes();
        assert_eq!(a.swap_remove(0), 1);
        assert_eq!(a.ids(), &[3, 2]);
        assert_eq!(a.member(0), (3, &[4u32][..], &[][..]));
        assert_eq!(a.member(1), (2, &[3u32][..], &[][..]));
        // The hole stays until rebuild; the footprint does not shrink.
        assert_eq!(a.heap_bytes(), before);
        let mut out = Vec::new();
        a.match_into(&row(64, &[3, 4]), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3]);
    }
}
