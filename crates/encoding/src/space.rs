//! The predicate space: registry + event index + subscription encodings.

use crate::{EventIndex, FixedBitSet, PredicateRegistry, SparseBits};
use apcm_bexpr::{BexprError, Event, Schema, SubId, Subscription};

/// A subscription encoded into the bitmap space (see the layout and
/// polarity rules in [`crate::index`]):
///
/// * `required` — bits that must **all** be set in the event bitmap:
///   narrow predicate bits plus the presence bit of every attribute a broad
///   predicate constrains;
/// * `blocked` — broad (violation-indexed) predicate bits, **none** of
///   which may be set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSub {
    /// The subscription's identifier.
    pub id: SubId,
    /// Bits that must all be present.
    pub required: SparseBits,
    /// Bits that must all be absent.
    pub blocked: SparseBits,
}

impl EncodedSub {
    /// Whether an event with bitmap `b` matches this subscription.
    #[inline]
    pub fn matches_bitmap(&self, b: &FixedBitSet) -> bool {
        self.matches_words(b.words())
    }

    /// Whether an event with raw word row `ewords` matches this
    /// subscription; the kernel behind [`EncodedSub::matches_bitmap`].
    #[inline]
    pub fn matches_words(&self, ewords: &[u64]) -> bool {
        crate::arena::contains_all(ewords, self.required.ids())
            && crate::arena::disjoint(ewords, self.blocked.ids())
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.required.heap_bytes() + self.blocked.heap_bytes()
    }
}

/// The corpus-wide predicate space every bitmap engine builds on.
///
/// Owns the [`PredicateRegistry`], the [`EventIndex`], and a copy of the
/// schema, and keeps them consistent across dynamic subscription inserts.
#[derive(Debug)]
pub struct PredicateSpace {
    schema: Schema,
    registry: PredicateRegistry,
    index: EventIndex,
    /// Rebuild the event index once this many interval predicates sit in
    /// overflow lists.
    rebuild_threshold: usize,
}

impl PredicateSpace {
    /// Builds the space from a corpus, returning the space and each
    /// subscription's encoding.
    ///
    /// Every subscription is validated against `schema`; encoding an invalid
    /// corpus is rejected up front rather than yielding silently-wrong
    /// bitmaps.
    pub fn build(
        schema: &Schema,
        subs: &[Subscription],
    ) -> Result<(Self, Vec<EncodedSub>), BexprError> {
        let mut registry = PredicateRegistry::new();
        for sub in subs {
            sub.validate(schema)?;
            for pred in sub.predicates() {
                registry.intern(pred);
            }
        }
        let index = EventIndex::build(schema, &registry);
        let space = Self {
            schema: schema.clone(),
            registry,
            index,
            rebuild_threshold: 256,
        };
        let encoded = subs
            .iter()
            .map(|sub| space.encode_subscription(sub))
            .collect();
        Ok((space, encoded))
    }

    /// Encodes a subscription whose predicates are all interned.
    fn encode_subscription(&self, sub: &Subscription) -> EncodedSub {
        let mut required = Vec::with_capacity(sub.len());
        let mut blocked = Vec::new();
        for pred in sub.predicates() {
            let id = self
                .registry
                .get(pred)
                .expect("predicate interned during build/add");
            if self.index.is_flipped(id) {
                required.push(self.index.presence_bit(pred.attr));
                blocked.push(self.index.bit_of(id));
            } else {
                required.push(self.index.bit_of(id));
            }
        }
        EncodedSub {
            id: sub.id(),
            required: SparseBits::new(required),
            blocked: SparseBits::new(blocked),
        }
    }

    /// Encodes a subscription whose predicates are all already interned;
    /// `None` if any predicate is unknown to the registry. Used by engines
    /// that organize an existing corpus (e.g. per-bucket compression) and
    /// must never mutate the space while doing so.
    pub fn try_encode(&self, sub: &Subscription) -> Option<EncodedSub> {
        for pred in sub.predicates() {
            self.registry.get(pred)?;
        }
        Some(self.encode_subscription(sub))
    }

    /// Adds one subscription after the build, interning any new predicates
    /// and lazily maintaining the event index.
    pub fn add_subscription(&mut self, sub: &Subscription) -> Result<EncodedSub, BexprError> {
        sub.validate(&self.schema)?;
        for pred in sub.predicates() {
            if self.registry.get(pred).is_none() {
                let id = self.registry.intern(pred);
                self.index.insert(&self.schema, pred, id);
            }
        }
        if self.index.overflow_len() >= self.rebuild_threshold {
            self.index.rebuild();
        }
        Ok(self.encode_subscription(sub))
    }

    /// Current bitmap width (presence bits + one bit per distinct
    /// predicate).
    #[inline]
    pub fn width(&self) -> usize {
        self.index.width()
    }

    /// The schema the space was built for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The deduplicated predicate registry.
    pub fn registry(&self) -> &PredicateRegistry {
        &self.registry
    }

    /// The event index (polarity queries, bit layout).
    pub fn index(&self) -> &EventIndex {
        &self.index
    }

    /// Encodes `ev` into a fresh event bitmap.
    pub fn encode_event(&self, ev: &Event) -> FixedBitSet {
        self.index.encode(ev)
    }

    /// Encodes `ev` into a reusable buffer; see [`EventIndex::encode_into`].
    pub fn encode_event_into(&self, ev: &Event, out: &mut FixedBitSet) {
        self.index.encode_into(ev, out)
    }

    /// Encodes `ev` into a raw word row; see
    /// [`EventIndex::encode_into_words`].
    pub fn encode_event_into_words(&self, ev: &Event, words: &mut [u64]) {
        self.index.encode_into_words(ev, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::{parser, Domain};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_attr("x", Domain::new(0, 99)).unwrap();
        s.add_attr("y", Domain::new(0, 99)).unwrap();
        s
    }

    fn subs(schema: &Schema, texts: &[&str]) -> Vec<Subscription> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| parser::parse_subscription_with_id(schema, SubId(i as u32), t).unwrap())
            .collect()
    }

    #[test]
    fn build_dedups_predicates_across_subs() {
        let schema = schema();
        let corpus = subs(&schema, &["x = 5 AND y > 10", "x = 5 AND y > 20", "y > 10"]);
        let (space, encoded) = PredicateSpace::build(&schema, &corpus).unwrap();
        // Distinct predicates: x=5, y>10, y>20 → width = 2 presence + 3.
        assert_eq!(space.width(), 5);
        assert_eq!(encoded.len(), 3);
        // Sub 0 and sub 2 share the `y > 10` bit.
        let shared: Vec<u32> = encoded[0]
            .required
            .ids()
            .iter()
            .copied()
            .filter(|b| encoded[2].required.contains(*b))
            .collect();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn encoded_test_equals_brute_force() {
        let schema = schema();
        let corpus = subs(
            &schema,
            &[
                "x BETWEEN 10 AND 20",
                "x != 15 AND y <= 50",
                "x IN {1, 15, 30} AND y NOT IN {7}",
                "y = 7",
                "x != 3 AND x != 4",
            ],
        );
        let (space, encoded) = PredicateSpace::build(&schema, &corpus).unwrap();
        for x in [0, 1, 3, 4, 10, 15, 20, 30, 99] {
            for y in [0, 7, 50, 51] {
                let ev = parser::parse_event(&schema, &format!("x = {x}, y = {y}")).unwrap();
                let b = space.encode_event(&ev);
                for (sub, enc) in corpus.iter().zip(encoded.iter()) {
                    assert_eq!(
                        enc.matches_bitmap(&b),
                        sub.matches(&ev),
                        "sub {:?} at x={x} y={y}",
                        sub.id()
                    );
                }
            }
        }
    }

    #[test]
    fn absent_attribute_fails_broad_predicates() {
        let schema = schema();
        let corpus = subs(&schema, &["x != 5"]);
        let (space, encoded) = PredicateSpace::build(&schema, &corpus).unwrap();
        // Event without x: the presence bit is missing from `required`.
        let ev = parser::parse_event(&schema, "y = 1").unwrap();
        assert!(!encoded[0].matches_bitmap(&space.encode_event(&ev)));
        // Event with x = 6 satisfies.
        let ev = parser::parse_event(&schema, "x = 6").unwrap();
        assert!(encoded[0].matches_bitmap(&space.encode_event(&ev)));
        // Event with x = 5 is blocked.
        let ev = parser::parse_event(&schema, "x = 5").unwrap();
        assert!(!encoded[0].matches_bitmap(&space.encode_event(&ev)));
    }

    #[test]
    fn invalid_corpus_rejected() {
        let schema = schema();
        let bad = Subscription::new(
            SubId(0),
            vec![apcm_bexpr::Predicate::new(
                apcm_bexpr::AttrId(9),
                apcm_bexpr::Op::Eq(1),
            )],
        )
        .unwrap();
        assert!(PredicateSpace::build(&schema, &[bad]).is_err());
    }

    #[test]
    fn dynamic_add_grows_width_and_matches() {
        let schema = schema();
        let corpus = subs(&schema, &["x = 1"]);
        let (mut space, _) = PredicateSpace::build(&schema, &corpus).unwrap();
        assert_eq!(space.width(), 3);

        let new_sub =
            parser::parse_subscription_with_id(&schema, SubId(9), "x > 40 AND y != 2").unwrap();
        let enc = space.add_subscription(&new_sub).unwrap();
        assert_eq!(space.width(), 5);

        let ev = parser::parse_event(&schema, "x = 50, y = 3").unwrap();
        assert!(enc.matches_bitmap(&space.encode_event(&ev)));
        let ev = parser::parse_event(&schema, "x = 50, y = 2").unwrap();
        assert!(
            !enc.matches_bitmap(&space.encode_event(&ev)),
            "blocked by y != 2"
        );
        let ev = parser::parse_event(&schema, "x = 50").unwrap();
        assert!(
            !enc.matches_bitmap(&space.encode_event(&ev)),
            "y absent fails the broad predicate"
        );
        let ev = parser::parse_event(&schema, "x = 30, y = 3").unwrap();
        assert!(!enc.matches_bitmap(&space.encode_event(&ev)));
    }

    #[test]
    fn dynamic_add_reuses_existing_bits() {
        let schema = schema();
        let corpus = subs(&schema, &["x = 1 AND y = 2"]);
        let (mut space, encoded) = PredicateSpace::build(&schema, &corpus).unwrap();
        let dup = parser::parse_subscription_with_id(&schema, SubId(5), "y = 2 AND x = 1").unwrap();
        let enc = space.add_subscription(&dup).unwrap();
        assert_eq!(
            enc.required, encoded[0].required,
            "identical expressions share bits"
        );
        assert_eq!(space.width(), 4);
    }

    #[test]
    fn overflow_rebuild_keeps_results_stable() {
        let schema = schema();
        let corpus = subs(&schema, &["x = 0"]);
        let (mut space, _) = PredicateSpace::build(&schema, &corpus).unwrap();
        space.rebuild_threshold = 8;
        let mut encs = Vec::new();
        for i in 0..40 {
            let sub = parser::parse_subscription_with_id(
                &schema,
                SubId(100 + i),
                &format!("x > {}", i % 30),
            )
            .unwrap();
            encs.push(space.add_subscription(&sub).unwrap());
        }
        let ev = parser::parse_event(&schema, "x = 35").unwrap();
        let b = space.encode_event(&ev);
        for (i, enc) in encs.iter().enumerate() {
            let expect = 35 > (i as i64 % 30);
            assert_eq!(enc.matches_bitmap(&b), expect, "sub {i}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use apcm_bexpr::{AttrId, Op, Predicate};
    use proptest::prelude::*;

    fn arb_op(card: i64) -> impl Strategy<Value = Op> {
        let v = 0..card;
        prop_oneof![
            v.clone().prop_map(Op::Eq),
            v.clone().prop_map(Op::Ne),
            (1..card).prop_map(Op::Lt),
            v.clone().prop_map(Op::Le),
            (0..card - 1).prop_map(Op::Gt),
            v.clone().prop_map(Op::Ge),
            (v.clone(), 0..card / 2)
                .prop_map(move |(lo, w)| Op::Between(lo, (lo + w).min(card - 1))),
            proptest::collection::vec(v.clone(), 1..6).prop_map(|vs| Op::in_set(vs).unwrap()),
            proptest::collection::vec(v, 1..6).prop_map(|vs| Op::not_in_set(vs).unwrap()),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The whole encoding pipeline — registry, polarity flipping,
        /// interval trees, presence bits, required/blocked split — agrees
        /// with direct predicate evaluation for arbitrary subscriptions and
        /// events, including events missing attributes.
        #[test]
        fn pipeline_equals_brute_force(
            preds in proptest::collection::vec((0u32..5, arb_op(40)), 1..7),
            pairs in proptest::collection::vec((0u32..5, 0i64..40), 1..5),
        ) {
            let schema = Schema::uniform(5, 40);
            let sub = Subscription::new(
                SubId(0),
                preds
                    .into_iter()
                    .map(|(a, op)| Predicate::new(AttrId(a), op))
                    .collect(),
            )
            .unwrap();
            // Dedup attrs for the event; first value wins.
            let mut dedup: Vec<(AttrId, i64)> = Vec::new();
            for (a, v) in pairs {
                if dedup.iter().all(|&(x, _)| x != AttrId(a)) {
                    dedup.push((AttrId(a), v));
                }
            }
            let ev = Event::new(dedup).unwrap();

            let (space, encoded) = PredicateSpace::build(&schema, std::slice::from_ref(&sub)).unwrap();
            let b = space.encode_event(&ev);
            prop_assert_eq!(encoded[0].matches_bitmap(&b), sub.matches(&ev));
        }
    }
}
