//! Event satisfaction index: event → bitmap over presence + predicate bits.
//!
//! ## Bit layout
//!
//! The event bitmap has `dims + |predicates|` bits:
//!
//! * bits `0..dims` — **presence**: bit `a` is set iff the event carries
//!   attribute `a`;
//! * bit `dims + p` — predicate `p`'s slot, whose meaning depends on the
//!   predicate's *polarity* (below).
//!
//! Presence bits come first so the layout is stable under dynamic predicate
//! interning (new predicates append bits; nothing shifts).
//!
//! ## Polarity flipping
//!
//! A *narrow* predicate (selectivity ≤ ½: equalities, small `IN` sets,
//! short ranges) is indexed by its **satisfying** values: its bit is set
//! when the event satisfies it, and subscriptions list it in their
//! `required` set.
//!
//! A *broad* predicate (selectivity > ½: `≠`, `NOT IN`, wide ranges) is
//! satisfied by almost every event; materializing all those bits would make
//! per-event cost `Σ selectivity` — tens of thousands of bit writes. It is
//! instead indexed by its **violating** values: its bit is set only when the
//! event carries the attribute *and* the value violates the predicate.
//! Subscriptions list it in their `blocked` set together with the
//! attribute's presence bit in `required` (absence must fail the match).
//! Per-event cost becomes `Σ min(sel, 1 − sel)`, which is what makes the
//! bitmap encoding viable on negation-heavy corpora.
//!
//! A subscription therefore matches iff `required ⊆ B` and
//! `blocked ∩ B = ∅` over the event bitmap `B`.
//!
//! For each attribute the index stores predicate intervals in three forms
//! chosen by their geometry: singleton intervals in a point hash map, wider
//! intervals in a centered [`IntervalTree`], and post-build insertions in a
//! linear overflow list folded in by [`EventIndex::rebuild`].

use crate::{FixedBitSet, IntervalTree, PredicateRegistry};
use apcm_bexpr::{Event, PredId, Predicate, Schema, Value};
use std::collections::HashMap;

#[derive(Debug, Default)]
struct AttrIndex {
    points: HashMap<Value, Vec<PredId>>,
    tree: Option<IntervalTree<PredId>>,
    /// `(lo, hi, id)` triples inserted since the last [`EventIndex::rebuild`].
    overflow: Vec<(Value, Value, PredId)>,
}

impl AttrIndex {
    fn visit(&self, v: Value, f: &mut impl FnMut(PredId)) {
        if let Some(ids) = self.points.get(&v) {
            ids.iter().copied().for_each(&mut *f);
        }
        if let Some(tree) = &self.tree {
            tree.stab_visit(v, |&id| f(id));
        }
        for &(lo, hi, id) in &self.overflow {
            if lo <= v && v <= hi {
                f(id);
            }
        }
    }
}

/// The per-attribute satisfaction index; see the module docs.
#[derive(Debug)]
pub struct EventIndex {
    dims: usize,
    attrs: Vec<AttrIndex>,
    /// Polarity by predicate: `true` means the predicate is broad and
    /// indexed by violations.
    flips: Vec<bool>,
    overflow_len: usize,
}

impl EventIndex {
    /// Selectivity above which a predicate is indexed by violations.
    pub const FLIP_THRESHOLD: f64 = 0.5;

    /// Builds the index for every predicate currently in `registry`.
    pub fn build(schema: &Schema, registry: &PredicateRegistry) -> Self {
        let mut index = Self {
            dims: schema.dims(),
            attrs: (0..schema.dims()).map(|_| AttrIndex::default()).collect(),
            flips: Vec::with_capacity(registry.len()),
            overflow_len: 0,
        };
        let mut tree_input: Vec<Vec<(Value, Value, PredId)>> = vec![Vec::new(); schema.dims()];
        for (id, pred) in registry.iter() {
            let (slot, flipped, intervals) = index.classify(schema, pred);
            index.flips.push(flipped);
            debug_assert_eq!(id.index() + 1, index.flips.len());
            for (lo, hi) in intervals {
                if lo == hi {
                    index.attrs[slot].points.entry(lo).or_default().push(id);
                } else {
                    tree_input[slot].push((lo, hi, id));
                }
            }
        }
        for (slot, input) in tree_input.into_iter().enumerate() {
            if !input.is_empty() {
                index.attrs[slot].tree = Some(IntervalTree::build(input));
            }
        }
        index
    }

    /// Decides polarity and returns the interval set to index.
    fn classify(&self, schema: &Schema, pred: &Predicate) -> (usize, bool, Vec<(Value, Value)>) {
        let slot = pred.attr.index();
        assert!(
            slot < self.attrs.len(),
            "predicate attribute outside the schema"
        );
        let domain = schema.domain(pred.attr);
        let flipped = pred.op.selectivity(domain) > Self::FLIP_THRESHOLD;
        let intervals = if flipped {
            pred.op.violating_intervals(domain)
        } else {
            pred.op.satisfying_intervals(domain)
        };
        (slot, flipped, intervals)
    }

    /// Registers a predicate added after the build. Singleton intervals go
    /// straight into the point maps; wider intervals land in the overflow
    /// list until the next [`EventIndex::rebuild`].
    ///
    /// # Panics
    /// Panics if ids are not interned densely in order (`id` must be the
    /// next unseen predicate).
    pub fn insert(&mut self, schema: &Schema, pred: &Predicate, id: PredId) {
        assert_eq!(
            id.index(),
            self.flips.len(),
            "predicates must be interned in order"
        );
        let (slot, flipped, intervals) = self.classify(schema, pred);
        self.flips.push(flipped);
        for (lo, hi) in intervals {
            if lo == hi {
                self.attrs[slot].points.entry(lo).or_default().push(id);
            } else {
                self.attrs[slot].overflow.push((lo, hi, id));
                self.overflow_len += 1;
            }
        }
    }

    /// Number of interval predicates waiting in overflow lists; callers use
    /// this to decide when a [`EventIndex::rebuild`] pays off.
    pub fn overflow_len(&self) -> usize {
        self.overflow_len
    }

    /// Folds all overflow intervals into the per-attribute trees.
    pub fn rebuild(&mut self) {
        for attr in &mut self.attrs {
            if attr.overflow.is_empty() {
                continue;
            }
            let mut input = std::mem::take(&mut attr.overflow);
            if let Some(tree) = attr.tree.take() {
                input.extend(tree.into_entries());
            }
            attr.tree = Some(IntervalTree::build(input));
        }
        self.overflow_len = 0;
    }

    /// Number of presence bits (= schema dimensionality).
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether predicate `id` is broad (indexed by violations).
    #[inline]
    pub fn is_flipped(&self, id: PredId) -> bool {
        self.flips[id.index()]
    }

    /// Total bitmap width: presence bits plus one bit per predicate.
    #[inline]
    pub fn width(&self) -> usize {
        self.dims + self.flips.len()
    }

    /// The bitmap slot of predicate `id`.
    #[inline]
    pub fn bit_of(&self, id: PredId) -> u32 {
        (self.dims + id.index()) as u32
    }

    /// The bitmap slot of attribute `attr`'s presence bit.
    #[inline]
    pub fn presence_bit(&self, attr: apcm_bexpr::AttrId) -> u32 {
        attr.0
    }

    /// Encodes `ev` into a fresh bitmap.
    pub fn encode(&self, ev: &Event) -> FixedBitSet {
        let mut out = FixedBitSet::new(self.width());
        self.encode_into(ev, &mut out);
        out
    }

    /// Encodes `ev` into `out` (cleared first). `out` must be at least
    /// [`EventIndex::width`] bits wide; reusing one buffer per worker thread
    /// avoids an allocation per event on the hot path.
    pub fn encode_into(&self, ev: &Event, out: &mut FixedBitSet) {
        assert!(
            out.nbits() >= self.width(),
            "event bitmap narrower than the predicate space"
        );
        self.encode_into_words(ev, out.words_mut());
    }

    /// Encodes `ev` into a raw word row (cleared first). `words` must span at
    /// least [`EventIndex::width`] bits; this is the kernel behind
    /// [`EventIndex::encode_into`] and the matcher's flat per-window event
    /// tables, which hold many encoded events in one contiguous buffer.
    pub fn encode_into_words(&self, ev: &Event, words: &mut [u64]) {
        assert!(
            words.len() * 64 >= self.width(),
            "event word row narrower than the predicate space"
        );
        words.fill(0);
        let dims = self.dims;
        for &(attr, v) in ev.pairs() {
            if let Some(index) = self.attrs.get(attr.index()) {
                crate::arena::set_bit(words, attr.index());
                index.visit(v, &mut |id: PredId| {
                    crate::arena::set_bit(words, dims + id.index())
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::{AttrId, Domain, Op};

    /// Two narrow, one broad (Ne), one broad range, one In.
    fn setup() -> (Schema, PredicateRegistry, Vec<PredId>) {
        let mut schema = Schema::new();
        schema.add_attr("x", Domain::new(0, 99)).unwrap();
        schema.add_attr("y", Domain::new(0, 99)).unwrap();
        let mut reg = PredicateRegistry::new();
        let ids = vec![
            reg.intern(&Predicate::new(AttrId(0), Op::Eq(5))), // narrow
            reg.intern(&Predicate::new(AttrId(0), Op::Between(3, 10))), // narrow
            reg.intern(&Predicate::new(AttrId(0), Op::Ne(7))), // broad → flipped
            reg.intern(&Predicate::new(AttrId(1), Op::Ge(50))), // sel 0.5 → narrow
            reg.intern(&Predicate::new(
                AttrId(1),
                Op::in_set(vec![1, 2, 3, 60]).unwrap(),
            )),
        ];
        (schema, reg, ids)
    }

    fn encode(index: &EventIndex, schema: &Schema, text: &str) -> FixedBitSet {
        let ev = apcm_bexpr::parser::parse_event(schema, text).unwrap();
        index.encode(&ev)
    }

    #[test]
    fn polarity_classification() {
        let (schema, reg, ids) = setup();
        let index = EventIndex::build(&schema, &reg);
        assert!(!index.is_flipped(ids[0]), "Eq is narrow");
        assert!(!index.is_flipped(ids[1]), "narrow Between");
        assert!(index.is_flipped(ids[2]), "Ne is broad");
        assert!(!index.is_flipped(ids[3]), "Ge(50) is exactly 0.5");
        assert!(!index.is_flipped(ids[4]), "small IN is narrow");
        assert_eq!(index.width(), 2 + 5);
    }

    #[test]
    fn presence_bits_set_for_event_attrs() {
        let (schema, reg, _) = setup();
        let index = EventIndex::build(&schema, &reg);
        let b = encode(&index, &schema, "x = 50");
        assert!(b.contains(0), "x present");
        assert!(!b.contains(1), "y absent");
        let b = encode(&index, &schema, "x = 50, y = 2");
        assert!(b.contains(0) && b.contains(1));
    }

    #[test]
    fn narrow_bits_mean_satisfied() {
        let (schema, reg, ids) = setup();
        let index = EventIndex::build(&schema, &reg);
        let b = encode(&index, &schema, "x = 5, y = 60");
        assert!(b.contains(index.bit_of(ids[0]) as usize), "Eq(5) satisfied");
        assert!(
            b.contains(index.bit_of(ids[1]) as usize),
            "Between satisfied"
        );
        assert!(
            b.contains(index.bit_of(ids[3]) as usize),
            "Ge(50) satisfied"
        );
        assert!(b.contains(index.bit_of(ids[4]) as usize), "In satisfied");
    }

    #[test]
    fn broad_bits_mean_violated() {
        let (schema, reg, ids) = setup();
        let index = EventIndex::build(&schema, &reg);
        let ne_bit = index.bit_of(ids[2]) as usize;
        // x = 7 violates Ne(7) → bit SET.
        assert!(encode(&index, &schema, "x = 7").contains(ne_bit));
        // x = 8 satisfies Ne(7) → bit clear.
        assert!(!encode(&index, &schema, "x = 8").contains(ne_bit));
        // x absent → bit clear (absence handled via presence bits).
        assert!(!encode(&index, &schema, "y = 1").contains(ne_bit));
    }

    #[test]
    fn event_popcount_is_small_despite_negations() {
        // A corpus of negations: the old satisfaction encoding would set
        // one bit per Ne predicate per event; the flipped encoding sets at
        // most one.
        let mut schema = Schema::new();
        schema.add_attr("x", Domain::new(0, 999)).unwrap();
        let mut reg = PredicateRegistry::new();
        for v in 0..500 {
            reg.intern(&Predicate::new(AttrId(0), Op::Ne(v)));
        }
        let index = EventIndex::build(&schema, &reg);
        let ev = apcm_bexpr::Event::new(vec![(AttrId(0), 42)]).unwrap();
        let b = index.encode(&ev);
        // presence bit + the single violated Ne(42).
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn dynamic_insert_and_rebuild() {
        let (schema, mut reg, _) = setup();
        let mut index = EventIndex::build(&schema, &reg);
        let p_point = Predicate::new(AttrId(1), Op::Eq(42));
        let p_range = Predicate::new(AttrId(0), Op::Lt(20));
        let p_broad = Predicate::new(AttrId(0), Op::not_in_set(vec![9]).unwrap());
        for pred in [&p_point, &p_range, &p_broad] {
            let id = reg.intern(pred);
            index.insert(&schema, pred, id);
        }
        assert_eq!(index.width(), 2 + 8);
        assert!(index.is_flipped(reg.get(&p_broad).unwrap()));
        assert_eq!(
            index.overflow_len(),
            1,
            "only the range predicate overflows"
        );

        let range_bit = index.bit_of(reg.get(&p_range).unwrap()) as usize;
        let broad_bit = index.bit_of(reg.get(&p_broad).unwrap()) as usize;
        let b = encode(&index, &schema, "x = 9");
        assert!(b.contains(range_bit));
        assert!(b.contains(broad_bit), "x = 9 violates NOT IN {{9}}");

        index.rebuild();
        assert_eq!(index.overflow_len(), 0);
        let b = encode(&index, &schema, "x = 9");
        assert!(b.contains(range_bit), "rebuild preserves predicates");
        // Pre-existing tree predicates survive the rebuild too.
        assert!(encode(&index, &schema, "x = 4").contains(index.bit_of(PredId(1)) as usize));
    }

    #[test]
    fn encode_into_reuses_wider_buffer() {
        let (schema, reg, _) = setup();
        let index = EventIndex::build(&schema, &reg);
        let mut buf = FixedBitSet::new(64);
        let ev = apcm_bexpr::Event::new(vec![(AttrId(0), 5)]).unwrap();
        index.encode_into(&ev, &mut buf);
        assert!(buf.contains(0));
        // A second encode clears the previous contents.
        let ev2 = apcm_bexpr::Event::new(vec![(AttrId(1), 0)]).unwrap();
        index.encode_into(&ev2, &mut buf);
        assert!(!buf.contains(0));
        assert!(buf.contains(1));
    }

    #[test]
    #[should_panic(expected = "narrower")]
    fn encode_into_narrow_buffer_panics() {
        let (schema, reg, _) = setup();
        let index = EventIndex::build(&schema, &reg);
        let mut buf = FixedBitSet::new(2);
        let ev = apcm_bexpr::Event::new(vec![(AttrId(0), 5)]).unwrap();
        index.encode_into(&ev, &mut buf);
    }

    #[test]
    #[should_panic(expected = "interned in order")]
    fn out_of_order_insert_panics() {
        let (schema, reg, _) = setup();
        let mut index = EventIndex::build(&schema, &reg);
        index.insert(&schema, &Predicate::new(AttrId(0), Op::Eq(1)), PredId(99));
    }
}
