//! Parallel execution layer.
//!
//! Clusters are independent, and so are the events of a batch, so matching
//! parallelizes along either axis. This module wraps the two executors
//! behind one interface:
//!
//! * **rayon** (default) — a thread pool owned by the matcher, so the
//!   thread-count sweep (experiment E2) controls parallelism per matcher
//!   instance instead of fighting over the global pool;
//! * **crossbeam** scoped threads — one spawn per chunk per call, kept as a
//!   dependency-minimal comparison point for the executor ablation.

use crate::config::Executor;

/// An executor instance bound to a thread count.
#[derive(Debug)]
pub struct Pool {
    executor: Executor,
    rayon: Option<rayon::ThreadPool>,
    threads: usize,
}

impl Pool {
    /// Builds the pool; `threads = None` uses all available parallelism.
    pub fn new(executor: Executor, threads: Option<usize>) -> Self {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = threads.unwrap_or(available).max(1);
        let rayon = match executor {
            Executor::Rayon => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("building a rayon pool cannot fail with valid thread count"),
            ),
            _ => None,
        };
        Self {
            executor,
            rayon,
            threads: match executor {
                Executor::Sequential => 1,
                _ => threads,
            },
        }
    }

    /// Worker threads this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel ordered map: `out[i] = f(i)` for `i in 0..n`.
    ///
    /// Every executor preserves index order in the result, so batch matching
    /// keeps event order without a post-pass.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        match self.executor {
            Executor::Sequential => (0..n).map(f).collect(),
            Executor::Rayon => {
                use rayon::prelude::*;
                self.rayon
                    .as_ref()
                    .expect("rayon pool built in constructor")
                    .install(|| (0..n).into_par_iter().map(f).collect())
            }
            Executor::Crossbeam => {
                if n == 0 {
                    return Vec::new();
                }
                let chunk = n.div_ceil(self.threads);
                let mut slots: Vec<Vec<T>> = Vec::new();
                crossbeam::scope(|scope| {
                    let mut handles = Vec::new();
                    for t in 0..self.threads {
                        let lo = t * chunk;
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        let f = &f;
                        handles.push(scope.spawn(move |_| (lo..hi).map(f).collect::<Vec<T>>()));
                    }
                    for h in handles {
                        slots.push(h.join().expect("matching worker panicked"));
                    }
                })
                .expect("crossbeam scope panicked");
                slots.into_iter().flatten().collect()
            }
        }
    }

    /// Parallel flat-map over chunks: applies `f` to each contiguous chunk
    /// of `items` and concatenates the results in chunk order.
    pub fn flat_map_chunks<I, T, F>(&self, items: &[I], chunk_size: usize, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&[I]) -> Vec<T> + Sync + Send,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let chunk_size = chunk_size.max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        self.map_indexed(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            f(&items[lo..hi])
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Chunk size that gives each worker several chunks to steal.
    pub fn cluster_chunk_size(&self, n_clusters: usize) -> usize {
        (n_clusters / (self.threads * 8)).max(1)
    }

    /// Splits `data` into per-worker contiguous chunks — each a multiple of
    /// `align` elements — and runs `f(chunk_start, chunk)` on each in
    /// parallel. Used to fill one flat output buffer (e.g. a window's
    /// encoded-event table, `align` = words per row) without per-item
    /// allocation.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], align: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync + Send,
    {
        let n = data.len();
        let align = align.max(1);
        debug_assert_eq!(n % align, 0, "buffer must be whole rows");
        if n == 0 {
            return;
        }
        let rows = n / align;
        let workers = self.threads.min(rows).max(1);
        if workers <= 1 {
            f(0, data);
            return;
        }
        let rows_per = rows.div_ceil(workers);
        let chunk = rows_per * align;
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = data;
            let mut start = 0usize;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let lo = start;
                scope.spawn(move || f(lo, head));
                start += take;
                rest = tail;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> Vec<Pool> {
        vec![
            Pool::new(Executor::Sequential, None),
            Pool::new(Executor::Rayon, Some(4)),
            Pool::new(Executor::Crossbeam, Some(4)),
        ]
    }

    #[test]
    fn map_indexed_preserves_order() {
        for pool in pools() {
            let out = pool.map_indexed(100, |i| i * 2);
            assert_eq!(
                out,
                (0..100).map(|i| i * 2).collect::<Vec<_>>(),
                "{:?}",
                pool.executor
            );
        }
    }

    #[test]
    fn map_indexed_empty() {
        for pool in pools() {
            assert!(pool.map_indexed(0, |i| i).is_empty());
        }
    }

    #[test]
    fn flat_map_chunks_concatenates_in_order() {
        let items: Vec<u32> = (0..97).collect();
        for pool in pools() {
            let out = pool.flat_map_chunks(&items, 10, |chunk| chunk.to_vec());
            assert_eq!(out, items, "{:?}", pool.executor);
        }
    }

    #[test]
    fn sequential_pool_reports_one_thread() {
        assert_eq!(Pool::new(Executor::Sequential, Some(8)).threads(), 1);
        assert_eq!(Pool::new(Executor::Rayon, Some(3)).threads(), 3);
    }

    #[test]
    fn chunk_size_positive() {
        let pool = Pool::new(Executor::Rayon, Some(4));
        assert!(pool.cluster_chunk_size(0) >= 1);
        assert!(pool.cluster_chunk_size(1_000_000) >= 1);
    }

    #[test]
    fn for_each_chunk_mut_covers_every_row_once() {
        for pool in pools() {
            let mut data = vec![0u32; 7 * 3]; // 7 rows of 3
            pool.for_each_chunk_mut(&mut data, 3, |start, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot += (start + i) as u32 + 1;
                }
            });
            let expect: Vec<u32> = (1..=21).collect();
            assert_eq!(data, expect, "{:?}", pool.executor);
            // Empty buffer is a no-op.
            pool.for_each_chunk_mut(&mut [] as &mut [u32], 3, |_, _| panic!("no chunks"));
        }
    }

    #[test]
    fn crossbeam_more_threads_than_items() {
        let pool = Pool::new(Executor::Crossbeam, Some(16));
        let out = pool.map_indexed(3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
