//! Engine configuration.

use crate::{AdaptiveConfig, ClusteringPolicy};

/// Which parallel executor fans matching work across cores. Rayon is the
/// default; the crossbeam-scoped executor exists for the executor ablation
/// (DESIGN.md, E2) and as a dependency-minimal fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// No parallelism: sequential cluster sweep (the paper's "PCM
    /// sequential" configuration).
    Sequential,
    /// A rayon thread pool owned by the matcher.
    Rayon,
    /// Crossbeam scoped threads, one spawn per chunk per call.
    Crossbeam,
}

/// Full A-PCM configuration. [`ApcmConfig::default`] reflects the paper's
/// recommended operating point: compressed clusters, all cores, OSR on,
/// adaptivity on.
#[derive(Debug, Clone)]
pub struct ApcmConfig {
    /// Worker threads; `None` uses all available cores.
    pub threads: Option<usize>,
    /// Parallel executor.
    pub executor: Executor,
    /// How subscription bitmaps are grouped into clusters.
    pub clustering: ClusteringPolicy,
    /// Upper bound on members per cluster. Larger clusters amortize the
    /// shared-mask test over more members but dilute the shared mask.
    pub max_cluster_size: usize,
    /// OSR window: events buffered and reordered per batch. `1` disables
    /// re-ordering (every event is its own batch).
    pub batch_size: usize,
    /// Whether `match_batch` re-orders events within a window (OSR). Batch
    /// union pruning is applied whenever `batch_size > 1`, ordered or not.
    pub reorder: bool,
    /// Adaptive maintenance settings.
    pub adaptive: AdaptiveConfig,
}

impl Default for ApcmConfig {
    fn default() -> Self {
        Self {
            threads: None,
            executor: Executor::Rayon,
            clustering: ClusteringPolicy::default(),
            max_cluster_size: 64,
            batch_size: 256,
            reorder: true,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl ApcmConfig {
    /// The paper's PCM baseline: compression and parallelism, no OSR, no
    /// adaptivity.
    pub fn pcm() -> Self {
        Self {
            batch_size: 1,
            reorder: false,
            adaptive: AdaptiveConfig::disabled(),
            ..Self::default()
        }
    }

    /// Fully sequential compressed matching (for the parallelism ablation).
    pub fn sequential() -> Self {
        Self {
            executor: Executor::Sequential,
            ..Self::pcm()
        }
    }

    /// Sets the thread count (fluent).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the OSR batch size (fluent).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_cluster_size == 0 {
            return Err("max_cluster_size must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if let Some(0) = self.threads {
            return Err("threads must be positive when set".into());
        }
        self.adaptive.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(ApcmConfig::default().validate(), Ok(()));
        assert_eq!(ApcmConfig::pcm().validate(), Ok(()));
        assert_eq!(ApcmConfig::sequential().validate(), Ok(()));
    }

    #[test]
    fn presets_shape() {
        let pcm = ApcmConfig::pcm();
        assert_eq!(pcm.batch_size, 1);
        assert!(!pcm.adaptive.enabled);
        let seq = ApcmConfig::sequential();
        assert_eq!(seq.executor, Executor::Sequential);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = ApcmConfig {
            max_cluster_size: 0,
            ..ApcmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ApcmConfig {
            batch_size: 0,
            ..ApcmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ApcmConfig {
            threads: Some(0),
            ..ApcmConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn fluent_setters() {
        let c = ApcmConfig::default().with_threads(4).with_batch_size(32);
        assert_eq!(c.threads, Some(4));
        assert_eq!(c.batch_size, 32);
    }
}
