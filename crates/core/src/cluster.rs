//! Compressed subscription clusters — the "C" in PCM.

use apcm_bexpr::SubId;
use apcm_encoding::{EncodedSub, FixedBitSet, SparseBits};
use std::sync::atomic::{AtomicU64, Ordering};

/// One member of a compressed cluster: a subscription id, the sparse
/// `required` bits it needs *beyond* the cluster's shared mask, and its
/// `blocked` bits (broad predicates, none of which may be set — see
/// `apcm_encoding::index` for the polarity rules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// The subscription.
    pub id: SubId,
    /// `required \ shared`; the member matches when the shared mask, this
    /// residual, and the blocked test all pass.
    pub residual: SparseBits,
    /// Bits that must be absent from the event bitmap.
    pub blocked: SparseBits,
}

/// Cluster payload: compressed (shared mask + residuals) or direct (full
/// encodings, no shared test). The adaptive controller switches
/// representations when compression stops paying.
///
/// The shared mask is stored **sparse**: it is the intersection of
/// subscription `required` sets, so its population is bounded by the
/// smallest expression size (a handful of bits), and testing it costs
/// `O(|shared|)` indexed probes into the dense event bitmap — independent
/// of the predicate-space width. This is where compressed matching beats
/// scanning: the shared predicates of a whole cluster are evaluated once,
/// in a few probes.
#[derive(Debug, Clone)]
pub enum ClusterRepr {
    /// Intersection-factored storage with whole-cluster pruning.
    Compressed {
        /// AND of every member's `required` set; `shared ⊆ event` is
        /// necessary for any member to match, so a failed test skips the
        /// whole cluster.
        shared: SparseBits,
        /// Per-member leftovers.
        members: Vec<Member>,
    },
    /// Plain storage: every member keeps its full encoding. Chosen when
    /// members share no required bits (empty mask ⇒ the shared test never
    /// prunes and only costs time).
    Direct {
        /// Full member encodings.
        members: Vec<EncodedSub>,
    },
}

/// A cluster plus its runtime counters (updated with relaxed atomics from
/// the read-locked match path).
#[derive(Debug)]
pub struct Cluster {
    /// Storage representation.
    pub repr: ClusterRepr,
    /// Events whose bitmap was tested against this cluster.
    pub probes: AtomicU64,
    /// Probes rejected by the shared-mask test (compressed only).
    pub prunes: AtomicU64,
    /// Matches produced.
    pub hits: AtomicU64,
}

impl Cluster {
    /// Builds the compressed representation of `members`, factoring out the
    /// intersection of their `required` sets. Falls back to
    /// [`ClusterRepr::Direct`] when the intersection is empty (no
    /// compression possible) — unless the cluster is a singleton, where the
    /// "shared mask" is the whole required set, which is still the cheapest
    /// test order.
    pub fn compressed(members: &[EncodedSub]) -> Self {
        assert!(!members.is_empty(), "a cluster needs members");
        let mut shared = members[0].required.clone();
        for m in &members[1..] {
            shared = shared.intersect(&m.required);
            if shared.is_empty() {
                break;
            }
        }
        if shared.is_empty() && members.len() > 1 {
            return Self::direct(members);
        }
        let members = members
            .iter()
            .map(|m| Member {
                id: m.id,
                residual: m.required.difference(&shared),
                blocked: m.blocked.clone(),
            })
            .collect();
        Self::new(ClusterRepr::Compressed { shared, members })
    }

    /// Builds the direct (uncompressed) representation.
    pub fn direct(members: &[EncodedSub]) -> Self {
        assert!(!members.is_empty(), "a cluster needs members");
        Self::new(ClusterRepr::Direct {
            members: members.to_vec(),
        })
    }

    fn new(repr: ClusterRepr) -> Self {
        Self {
            repr,
            probes: AtomicU64::new(0),
            prunes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Number of member subscriptions.
    pub fn len(&self) -> usize {
        match &self.repr {
            ClusterRepr::Compressed { members, .. } => members.len(),
            ClusterRepr::Direct { members } => members.len(),
        }
    }

    /// Whether the cluster has no members (possible after removals; the
    /// next maintenance sweep drops it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The matching kernel: appends every member whose required bits are
    /// contained in `ebits` and whose blocked bits are absent from it.
    #[inline]
    pub fn match_into(&self, ebits: &FixedBitSet, out: &mut Vec<SubId>) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        match &self.repr {
            ClusterRepr::Compressed { shared, members } => {
                if !shared.subset_of_dense(ebits) {
                    self.prunes.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                for m in members {
                    if m.residual.subset_of_dense(ebits) && m.blocked.disjoint_from_dense(ebits) {
                        out.push(m.id);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            ClusterRepr::Direct { members } => {
                for m in members {
                    if m.matches_bitmap(ebits) {
                        out.push(m.id);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Whether the whole cluster can be skipped for a batch whose event
    /// bitmaps union to `batch_union`: if the shared mask is not contained
    /// in the union, it is contained in no event of the batch. (Blocked
    /// bits cannot batch-prune: a bit set in the union may come from a
    /// different event.)
    #[inline]
    pub fn batch_prunable(&self, batch_union: &FixedBitSet) -> bool {
        match &self.repr {
            ClusterRepr::Compressed { shared, .. } => !shared.subset_of_dense(batch_union),
            ClusterRepr::Direct { .. } => false,
        }
    }

    /// Reconstructs every member's full encoding (used by re-clustering).
    pub fn to_encoded(&self) -> Vec<EncodedSub> {
        match &self.repr {
            ClusterRepr::Compressed { shared, members } => members
                .iter()
                .map(|m| EncodedSub {
                    id: m.id,
                    required: m.residual.union(shared),
                    blocked: m.blocked.clone(),
                })
                .collect(),
            ClusterRepr::Direct { members } => members.clone(),
        }
    }

    /// Iterates member subscription ids without materializing encodings.
    pub fn member_ids(&self) -> impl Iterator<Item = SubId> + '_ {
        let (compressed, direct) = match &self.repr {
            ClusterRepr::Compressed { members, .. } => (Some(members.iter()), None),
            ClusterRepr::Direct { members } => (None, Some(members.iter())),
        };
        compressed
            .into_iter()
            .flatten()
            .map(|m| m.id)
            .chain(direct.into_iter().flatten().map(|m| m.id))
    }

    /// Removes a member by id; returns whether it was present.
    ///
    /// Shrinking a compressed cluster keeps the shared mask valid (the
    /// intersection over a superset is contained in every remaining member);
    /// the mask is re-tightened at the next maintenance rebuild.
    pub fn remove(&mut self, id: SubId) -> bool {
        match &mut self.repr {
            ClusterRepr::Compressed { members, .. } => {
                if let Some(pos) = members.iter().position(|m| m.id == id) {
                    members.swap_remove(pos);
                    return true;
                }
                false
            }
            ClusterRepr::Direct { members } => {
                if let Some(pos) = members.iter().position(|m| m.id == id) {
                    members.swap_remove(pos);
                    return true;
                }
                false
            }
        }
    }

    /// Heap bytes of the stored bitmaps (compression-ratio experiment).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            ClusterRepr::Compressed { shared, members } => {
                shared.heap_bytes()
                    + members
                        .iter()
                        .map(|m| {
                            m.residual.heap_bytes()
                                + m.blocked.heap_bytes()
                                + std::mem::size_of::<Member>()
                        })
                        .sum::<usize>()
            }
            ClusterRepr::Direct { members } => members
                .iter()
                .map(|m| m.heap_bytes() + std::mem::size_of::<EncodedSub>())
                .sum(),
        }
    }

    /// Observed prune rate: fraction of probes rejected by the shared mask.
    pub fn prune_rate(&self) -> f64 {
        let probes = self.probes.load(Ordering::Relaxed);
        if probes == 0 {
            return 0.0;
        }
        self.prunes.load(Ordering::Relaxed) as f64 / probes as f64
    }

    /// Resets the runtime counters (start of an adaptive epoch).
    pub fn reset_stats(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.prunes.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
pub(crate) fn enc_for_test(id: u32, required: &[u32], blocked: &[u32]) -> EncodedSub {
    EncodedSub {
        id: SubId(id),
        required: SparseBits::new(required.to_vec()),
        blocked: SparseBits::new(blocked.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(id: u32, bits: &[u32]) -> EncodedSub {
        enc_for_test(id, bits, &[])
    }

    fn ev(width: usize, bits: &[usize]) -> FixedBitSet {
        FixedBitSet::from_indices(width, bits.iter().copied())
    }

    #[test]
    fn compression_factors_intersection() {
        let members = [enc(0, &[1, 2, 3]), enc(1, &[1, 2, 4]), enc(2, &[1, 2])];
        let c = Cluster::compressed(&members);
        match &c.repr {
            ClusterRepr::Compressed { shared, members } => {
                assert_eq!(shared.ids(), &[1, 2]);
                assert_eq!(members[0].residual.ids(), &[3]);
                assert_eq!(members[1].residual.ids(), &[4]);
                assert!(members[2].residual.is_empty());
            }
            _ => panic!("expected compressed"),
        }
    }

    #[test]
    fn empty_intersection_falls_back_to_direct() {
        let members = [enc(0, &[1]), enc(1, &[2])];
        let c = Cluster::compressed(&members);
        assert!(matches!(c.repr, ClusterRepr::Direct { .. }));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn singleton_stays_compressed() {
        let c = Cluster::compressed(&[enc(7, &[3, 4])]);
        match &c.repr {
            ClusterRepr::Compressed { shared, members } => {
                assert_eq!(shared.len(), 2);
                assert!(members[0].residual.is_empty());
            }
            _ => panic!("singleton should compress to shared-only"),
        }
    }

    #[test]
    fn match_kernel_compressed() {
        let members = [enc(0, &[1, 2, 3]), enc(1, &[1, 2, 4])];
        let c = Cluster::compressed(&members);
        let mut out = Vec::new();

        c.match_into(&ev(10, &[1, 2, 3]), &mut out);
        assert_eq!(out, vec![SubId(0)]);

        out.clear();
        c.match_into(&ev(10, &[1, 2, 3, 4]), &mut out);
        assert_eq!(out, vec![SubId(0), SubId(1)]);

        out.clear();
        // Shared mask fails → pruned, no member checks.
        c.match_into(&ev(10, &[1, 3, 4]), &mut out);
        assert!(out.is_empty());
        assert_eq!(c.prunes.load(Ordering::Relaxed), 1);
        assert_eq!(c.probes.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn blocked_bits_veto_members() {
        // Member 0 requires {1} and blocks {5}; member 1 requires {1} only.
        let members = [enc_for_test(0, &[1], &[5]), enc(1, &[1])];
        let c = Cluster::compressed(&members);
        let mut out = Vec::new();
        c.match_into(&ev(10, &[1]), &mut out);
        assert_eq!(out, vec![SubId(0), SubId(1)]);
        out.clear();
        c.match_into(&ev(10, &[1, 5]), &mut out);
        assert_eq!(out, vec![SubId(1)], "bit 5 blocks member 0");
    }

    #[test]
    fn match_kernel_direct() {
        let members = [enc(0, &[1]), enc_for_test(1, &[2], &[3])];
        let c = Cluster::direct(&members);
        let mut out = Vec::new();
        c.match_into(&ev(10, &[2]), &mut out);
        assert_eq!(out, vec![SubId(1)]);
        out.clear();
        c.match_into(&ev(10, &[2, 3]), &mut out);
        assert!(out.is_empty(), "blocked in direct representation too");
        assert_eq!(c.prunes.load(Ordering::Relaxed), 0, "direct never prunes");
    }

    #[test]
    fn batch_prune_logic() {
        let c = Cluster::compressed(&[enc(0, &[1, 2, 3])]);
        assert!(!c.batch_prunable(&ev(10, &[1, 2, 3, 5])));
        assert!(c.batch_prunable(&ev(10, &[1, 2])));
        let d = Cluster::direct(&[enc(0, &[1])]);
        assert!(
            !d.batch_prunable(&ev(10, &[])),
            "direct clusters never batch-prune"
        );
    }

    #[test]
    fn to_encoded_round_trips() {
        let members = [
            enc_for_test(3, &[1, 2, 3], &[9]),
            enc_for_test(4, &[1, 2, 7], &[]),
        ];
        let c = Cluster::compressed(&members);
        let back = c.to_encoded();
        assert_eq!(back, members.to_vec());
        let d = Cluster::direct(&members);
        assert_eq!(d.to_encoded(), members.to_vec());
    }

    #[test]
    fn remove_member_keeps_mask_sound() {
        let members = [enc(0, &[1, 2, 3]), enc(1, &[1, 2, 4])];
        let mut c = Cluster::compressed(&members);
        assert!(c.remove(SubId(0)));
        assert!(!c.remove(SubId(0)));
        assert_eq!(c.len(), 1);
        // Remaining member still matches exactly its own bitmap.
        let mut out = Vec::new();
        c.match_into(&ev(10, &[1, 2, 4]), &mut out);
        assert_eq!(out, vec![SubId(1)]);
        out.clear();
        c.match_into(&ev(10, &[1, 2]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stats_reset() {
        let c = Cluster::compressed(&[enc(0, &[5])]);
        let mut out = Vec::new();
        c.match_into(&ev(10, &[5]), &mut out);
        c.match_into(&ev(10, &[1]), &mut out);
        assert!(c.prune_rate() > 0.0);
        c.reset_stats();
        assert_eq!(c.prune_rate(), 0.0);
        assert_eq!(c.probes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn heap_accounting_smaller_when_compressed() {
        // 32 members sharing 6 of their 8 bits: compression must beat
        // direct storage.
        let members: Vec<EncodedSub> = (0..32)
            .map(|i| enc(i, &[0, 1, 2, 3, 4, 5, 100 + i, 200 + i]))
            .collect();
        let c = Cluster::compressed(&members);
        let d = Cluster::direct(&members);
        assert!(
            c.heap_bytes() < d.heap_bytes(),
            "compressed {} vs direct {}",
            c.heap_bytes(),
            d.heap_bytes()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Compressed and direct representations produce identical matches
        /// for any member set and any event.
        #[test]
        fn representations_agree(
            member_bits in proptest::collection::vec(
                (
                    proptest::collection::btree_set(0u32..48, 1..8),
                    proptest::collection::btree_set(48u32..64, 0..3),
                ),
                1..12,
            ),
            event_bits in proptest::collection::btree_set(0usize..64, 0..32),
        ) {
            let members: Vec<EncodedSub> = member_bits
                .iter()
                .enumerate()
                .map(|(i, (req, blk))| EncodedSub {
                    id: SubId(i as u32),
                    required: SparseBits::new(req.iter().copied().collect()),
                    blocked: SparseBits::new(blk.iter().copied().collect()),
                })
                .collect();
            let ebits = FixedBitSet::from_indices(64, event_bits.iter().copied());
            let compressed = Cluster::compressed(&members);
            let direct = Cluster::direct(&members);
            let mut a = Vec::new();
            let mut b = Vec::new();
            compressed.match_into(&ebits, &mut a);
            direct.match_into(&ebits, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(&a, &b);
            // Both agree with the reference predicate.
            let mut expect: Vec<SubId> = members
                .iter()
                .filter(|m| m.matches_bitmap(&ebits))
                .map(|m| m.id)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(a, expect);
        }
    }
}
