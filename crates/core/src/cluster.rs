//! Compressed subscription clusters — the "C" in PCM.

use apcm_bexpr::SubId;
use apcm_encoding::{arena, EncodedSub, FixedBitSet, MemberArena, SparseBits};
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of probing one cluster with one event: whether the shared mask
/// rejected the whole cluster, and how many members matched. The kernel
/// returns this instead of touching shared atomics so concurrent workers can
/// batch counter updates in thread-local cells (see `crate::scratch`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Probe {
    /// The shared-mask test failed; no member was swept.
    pub pruned: bool,
    /// Members appended to the output row.
    pub hits: u32,
}

/// Cluster payload: compressed (shared mask + residuals) or direct (full
/// encodings, no shared test). The adaptive controller switches
/// representations when compression stops paying.
///
/// The shared mask is stored **sparse**: it is the intersection of
/// subscription `required` sets, so its population is bounded by the
/// smallest expression size (a handful of bits), and testing it costs
/// `O(|shared|)` indexed probes into the dense event bitmap — independent
/// of the predicate-space width. This is where compressed matching beats
/// scanning: the shared predicates of a whole cluster are evaluated once,
/// in a few probes.
///
/// Members live in a [`MemberArena`]: ids in one SoA slice, residual and
/// blocked bits packed into a single contiguous `u32` arena addressed by
/// `(offset, len)` spans. A member sweep is a linear walk over two flat
/// buffers instead of two `Box<[u32]>` dereferences per member.
#[derive(Debug, Clone)]
pub enum ClusterRepr {
    /// Intersection-factored storage with whole-cluster pruning.
    Compressed {
        /// AND of every member's `required` set; `shared ⊆ event` is
        /// necessary for any member to match, so a failed test skips the
        /// whole cluster.
        shared: SparseBits,
        /// Per-member leftovers (`required \ shared` in the residual span).
        members: MemberArena,
    },
    /// Plain storage: every member keeps its full encoding (the full
    /// `required` set sits in the residual span). Chosen when members share
    /// no required bits (empty mask ⇒ the shared test never prunes and only
    /// costs time).
    Direct {
        /// Full member encodings.
        members: MemberArena,
    },
}

/// A cluster plus its runtime counters.
///
/// The counters are epoch-scoped inputs to the adaptive controller. The
/// matching kernel itself ([`Cluster::match_words`]) never touches them;
/// workers accumulate per-probe outcomes thread-locally and flush them here
/// in one `fetch_add` per touched cluster per window (see
/// `crate::scratch::ProbeCounts`).
#[derive(Debug)]
pub struct Cluster {
    /// Storage representation.
    pub repr: ClusterRepr,
    /// Events whose bitmap was tested against this cluster.
    pub probes: AtomicU64,
    /// Probes rejected by the shared-mask test (compressed only).
    pub prunes: AtomicU64,
    /// Matches produced.
    pub hits: AtomicU64,
}

impl Cluster {
    /// Builds the compressed representation of `members`, factoring out the
    /// intersection of their `required` sets. Falls back to
    /// [`ClusterRepr::Direct`] when the intersection is empty (no
    /// compression possible) — unless the cluster is a singleton, where the
    /// "shared mask" is the whole required set, which is still the cheapest
    /// test order.
    pub fn compressed(members: &[EncodedSub]) -> Self {
        assert!(!members.is_empty(), "a cluster needs members");
        let mut shared = members[0].required.clone();
        for m in &members[1..] {
            shared = shared.intersect(&m.required);
            if shared.is_empty() {
                break;
            }
        }
        if shared.is_empty() && members.len() > 1 {
            return Self::direct(members);
        }
        let residuals: Vec<SparseBits> = members
            .iter()
            .map(|m| m.required.difference(&shared))
            .collect();
        let bit_cap: usize = members
            .iter()
            .zip(&residuals)
            .map(|(m, r)| r.len() + m.blocked.len())
            .sum();
        let mut arena = MemberArena::with_capacity(members.len(), bit_cap);
        for (m, res) in members.iter().zip(&residuals) {
            arena.push(m.id.0, res.ids(), m.blocked.ids());
        }
        Self::new(ClusterRepr::Compressed {
            shared,
            members: arena,
        })
    }

    /// Builds the direct (uncompressed) representation.
    pub fn direct(members: &[EncodedSub]) -> Self {
        assert!(!members.is_empty(), "a cluster needs members");
        let bit_cap: usize = members
            .iter()
            .map(|m| m.required.len() + m.blocked.len())
            .sum();
        let mut arena = MemberArena::with_capacity(members.len(), bit_cap);
        for m in members {
            arena.push(m.id.0, m.required.ids(), m.blocked.ids());
        }
        Self::new(ClusterRepr::Direct { members: arena })
    }

    fn new(repr: ClusterRepr) -> Self {
        Self {
            repr,
            probes: AtomicU64::new(0),
            prunes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    #[inline]
    fn members(&self) -> &MemberArena {
        match &self.repr {
            ClusterRepr::Compressed { members, .. } => members,
            ClusterRepr::Direct { members } => members,
        }
    }

    /// Number of member subscriptions.
    pub fn len(&self) -> usize {
        self.members().len()
    }

    /// Whether the cluster has no members (possible after removals; the
    /// next maintenance sweep drops it).
    pub fn is_empty(&self) -> bool {
        self.members().is_empty()
    }

    /// The matching kernel: appends every member whose required bits are
    /// contained in the event row and whose blocked bits are absent from it.
    /// Pure — no atomics, no allocation beyond `out` growth; the returned
    /// [`Probe`] carries the counter deltas for the caller to accumulate.
    #[inline]
    pub fn match_words(&self, ewords: &[u64], out: &mut Vec<SubId>) -> Probe {
        let members = match &self.repr {
            ClusterRepr::Compressed { shared, members } => {
                if !arena::contains_all(ewords, shared.ids()) {
                    return Probe {
                        pruned: true,
                        hits: 0,
                    };
                }
                members
            }
            ClusterRepr::Direct { members } => members,
        };
        let mut hits = 0u32;
        for (id, residual, blocked) in members.iter() {
            if arena::contains_all(ewords, residual) && arena::disjoint(ewords, blocked) {
                out.push(SubId(id));
                hits += 1;
            }
        }
        Probe {
            pruned: false,
            hits,
        }
    }

    /// Counting convenience over [`Cluster::match_words`] for callers
    /// probing one cluster at a time outside the batched scratch path.
    #[inline]
    pub fn match_into(&self, ebits: &FixedBitSet, out: &mut Vec<SubId>) {
        let probe = self.match_words(ebits.words(), out);
        self.record(probe);
    }

    /// Folds one probe outcome into the cluster counters.
    #[inline]
    pub fn record(&self, probe: Probe) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if probe.pruned {
            self.prunes.fetch_add(1, Ordering::Relaxed);
        }
        if probe.hits > 0 {
            self.hits
                .fetch_add(u64::from(probe.hits), Ordering::Relaxed);
        }
    }

    /// Folds a batch of probe outcomes into the cluster counters — one
    /// `fetch_add` per non-zero counter, the flush half of the thread-local
    /// accumulation scheme.
    #[inline]
    pub fn add_counts(&self, probes: u64, prunes: u64, hits: u64) {
        if probes > 0 {
            self.probes.fetch_add(probes, Ordering::Relaxed);
        }
        if prunes > 0 {
            self.prunes.fetch_add(prunes, Ordering::Relaxed);
        }
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
    }

    /// Whether the whole cluster can be skipped for a batch whose event
    /// bitmaps union to `batch_union`: if the shared mask is not contained
    /// in the union, it is contained in no event of the batch. (Blocked
    /// bits cannot batch-prune: a bit set in the union may come from a
    /// different event.)
    #[inline]
    pub fn batch_prunable(&self, batch_union: &FixedBitSet) -> bool {
        match &self.repr {
            ClusterRepr::Compressed { shared, .. } => !shared.subset_of_dense(batch_union),
            ClusterRepr::Direct { .. } => false,
        }
    }

    /// Reconstructs every member's full encoding (used by re-clustering).
    pub fn to_encoded(&self) -> Vec<EncodedSub> {
        match &self.repr {
            ClusterRepr::Compressed { shared, members } => members
                .iter()
                .map(|(id, residual, blocked)| EncodedSub {
                    id: SubId(id),
                    required: SparseBits::new(residual.to_vec()).union(shared),
                    blocked: SparseBits::new(blocked.to_vec()),
                })
                .collect(),
            ClusterRepr::Direct { members } => members
                .iter()
                .map(|(id, required, blocked)| EncodedSub {
                    id: SubId(id),
                    required: SparseBits::new(required.to_vec()),
                    blocked: SparseBits::new(blocked.to_vec()),
                })
                .collect(),
        }
    }

    /// Iterates member subscription ids without materializing encodings.
    pub fn member_ids(&self) -> impl Iterator<Item = SubId> + '_ {
        self.members().ids().iter().map(|&id| SubId(id))
    }

    /// Removes a member by id; returns whether it was present.
    ///
    /// Shrinking a compressed cluster keeps the shared mask valid (the
    /// intersection over a superset is contained in every remaining member);
    /// the mask is re-tightened at the next maintenance rebuild.
    pub fn remove(&mut self, id: SubId) -> bool {
        let members = match &mut self.repr {
            ClusterRepr::Compressed { members, .. } => members,
            ClusterRepr::Direct { members } => members,
        };
        match members.position(id.0) {
            Some(pos) => {
                members.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// Heap bytes of the stored bitmaps (compression-ratio experiment).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            ClusterRepr::Compressed { shared, members } => {
                shared.heap_bytes() + members.heap_bytes()
            }
            ClusterRepr::Direct { members } => members.heap_bytes(),
        }
    }

    /// Observed prune rate: fraction of probes rejected by the shared mask.
    pub fn prune_rate(&self) -> f64 {
        let probes = self.probes.load(Ordering::Relaxed);
        if probes == 0 {
            return 0.0;
        }
        self.prunes.load(Ordering::Relaxed) as f64 / probes as f64
    }

    /// Resets the runtime counters (start of an adaptive epoch).
    pub fn reset_stats(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.prunes.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
pub(crate) fn enc_for_test(id: u32, required: &[u32], blocked: &[u32]) -> EncodedSub {
    EncodedSub {
        id: SubId(id),
        required: SparseBits::new(required.to_vec()),
        blocked: SparseBits::new(blocked.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(id: u32, bits: &[u32]) -> EncodedSub {
        enc_for_test(id, bits, &[])
    }

    fn ev(width: usize, bits: &[usize]) -> FixedBitSet {
        FixedBitSet::from_indices(width, bits.iter().copied())
    }

    #[test]
    fn compression_factors_intersection() {
        let members = [enc(0, &[1, 2, 3]), enc(1, &[1, 2, 4]), enc(2, &[1, 2])];
        let c = Cluster::compressed(&members);
        match &c.repr {
            ClusterRepr::Compressed { shared, members } => {
                assert_eq!(shared.ids(), &[1, 2]);
                assert_eq!(members.member(0).1, &[3]);
                assert_eq!(members.member(1).1, &[4]);
                assert!(members.member(2).1.is_empty());
            }
            _ => panic!("expected compressed"),
        }
    }

    #[test]
    fn empty_intersection_falls_back_to_direct() {
        let members = [enc(0, &[1]), enc(1, &[2])];
        let c = Cluster::compressed(&members);
        assert!(matches!(c.repr, ClusterRepr::Direct { .. }));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn singleton_stays_compressed() {
        let c = Cluster::compressed(&[enc(7, &[3, 4])]);
        match &c.repr {
            ClusterRepr::Compressed { shared, members } => {
                assert_eq!(shared.len(), 2);
                assert!(members.member(0).1.is_empty());
            }
            _ => panic!("singleton should compress to shared-only"),
        }
    }

    #[test]
    fn match_kernel_compressed() {
        let members = [enc(0, &[1, 2, 3]), enc(1, &[1, 2, 4])];
        let c = Cluster::compressed(&members);
        let mut out = Vec::new();

        c.match_into(&ev(10, &[1, 2, 3]), &mut out);
        assert_eq!(out, vec![SubId(0)]);

        out.clear();
        c.match_into(&ev(10, &[1, 2, 3, 4]), &mut out);
        assert_eq!(out, vec![SubId(0), SubId(1)]);

        out.clear();
        // Shared mask fails → pruned, no member checks.
        c.match_into(&ev(10, &[1, 3, 4]), &mut out);
        assert!(out.is_empty());
        assert_eq!(c.prunes.load(Ordering::Relaxed), 1);
        assert_eq!(c.probes.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn probe_outcomes_reported_without_counting() {
        let members = [enc(0, &[1, 2, 3]), enc(1, &[1, 2, 4])];
        let c = Cluster::compressed(&members);
        let mut out = Vec::new();
        let hit = c.match_words(ev(10, &[1, 2, 3, 4]).words(), &mut out);
        assert_eq!(
            hit,
            Probe {
                pruned: false,
                hits: 2
            }
        );
        let pruned = c.match_words(ev(10, &[3, 4]).words(), &mut out);
        assert_eq!(
            pruned,
            Probe {
                pruned: true,
                hits: 0
            }
        );
        // The pure kernel leaves the counters alone …
        assert_eq!(c.probes.load(Ordering::Relaxed), 0);
        // … and a batched flush lands them exactly.
        c.add_counts(2, 1, 2);
        assert_eq!(c.probes.load(Ordering::Relaxed), 2);
        assert_eq!(c.prunes.load(Ordering::Relaxed), 1);
        assert_eq!(c.hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn blocked_bits_veto_members() {
        // Member 0 requires {1} and blocks {5}; member 1 requires {1} only.
        let members = [enc_for_test(0, &[1], &[5]), enc(1, &[1])];
        let c = Cluster::compressed(&members);
        let mut out = Vec::new();
        c.match_into(&ev(10, &[1]), &mut out);
        assert_eq!(out, vec![SubId(0), SubId(1)]);
        out.clear();
        c.match_into(&ev(10, &[1, 5]), &mut out);
        assert_eq!(out, vec![SubId(1)], "bit 5 blocks member 0");
    }

    #[test]
    fn match_kernel_direct() {
        let members = [enc(0, &[1]), enc_for_test(1, &[2], &[3])];
        let c = Cluster::direct(&members);
        let mut out = Vec::new();
        c.match_into(&ev(10, &[2]), &mut out);
        assert_eq!(out, vec![SubId(1)]);
        out.clear();
        c.match_into(&ev(10, &[2, 3]), &mut out);
        assert!(out.is_empty(), "blocked in direct representation too");
        assert_eq!(c.prunes.load(Ordering::Relaxed), 0, "direct never prunes");
    }

    #[test]
    fn batch_prune_logic() {
        let c = Cluster::compressed(&[enc(0, &[1, 2, 3])]);
        assert!(!c.batch_prunable(&ev(10, &[1, 2, 3, 5])));
        assert!(c.batch_prunable(&ev(10, &[1, 2])));
        let d = Cluster::direct(&[enc(0, &[1])]);
        assert!(
            !d.batch_prunable(&ev(10, &[])),
            "direct clusters never batch-prune"
        );
    }

    #[test]
    fn to_encoded_round_trips() {
        let members = [
            enc_for_test(3, &[1, 2, 3], &[9]),
            enc_for_test(4, &[1, 2, 7], &[]),
        ];
        let c = Cluster::compressed(&members);
        let back = c.to_encoded();
        assert_eq!(back, members.to_vec());
        let d = Cluster::direct(&members);
        assert_eq!(d.to_encoded(), members.to_vec());
    }

    #[test]
    fn remove_member_keeps_mask_sound() {
        let members = [enc(0, &[1, 2, 3]), enc(1, &[1, 2, 4])];
        let mut c = Cluster::compressed(&members);
        assert!(c.remove(SubId(0)));
        assert!(!c.remove(SubId(0)));
        assert_eq!(c.len(), 1);
        // Remaining member still matches exactly its own bitmap.
        let mut out = Vec::new();
        c.match_into(&ev(10, &[1, 2, 4]), &mut out);
        assert_eq!(out, vec![SubId(1)]);
        out.clear();
        c.match_into(&ev(10, &[1, 2]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stats_reset() {
        let c = Cluster::compressed(&[enc(0, &[5])]);
        let mut out = Vec::new();
        c.match_into(&ev(10, &[5]), &mut out);
        c.match_into(&ev(10, &[1]), &mut out);
        assert!(c.prune_rate() > 0.0);
        c.reset_stats();
        assert_eq!(c.prune_rate(), 0.0);
        assert_eq!(c.probes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn heap_accounting_smaller_when_compressed() {
        // 32 members sharing 6 of their 8 bits: compression must beat
        // direct storage.
        let members: Vec<EncodedSub> = (0..32)
            .map(|i| enc(i, &[0, 1, 2, 3, 4, 5, 100 + i, 200 + i]))
            .collect();
        let c = Cluster::compressed(&members);
        let d = Cluster::direct(&members);
        assert!(
            c.heap_bytes() < d.heap_bytes(),
            "compressed {} vs direct {}",
            c.heap_bytes(),
            d.heap_bytes()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// Compressed and direct representations produce identical matches
        /// for any member set and any event.
        #[test]
        fn representations_agree(
            member_bits in proptest::collection::vec(
                (
                    proptest::collection::btree_set(0u32..48, 1..8),
                    proptest::collection::btree_set(48u32..64, 0..3),
                ),
                1..12,
            ),
            event_bits in proptest::collection::btree_set(0usize..64, 0..32),
        ) {
            let members: Vec<EncodedSub> = member_bits
                .iter()
                .enumerate()
                .map(|(i, (req, blk))| EncodedSub {
                    id: SubId(i as u32),
                    required: SparseBits::new(req.iter().copied().collect()),
                    blocked: SparseBits::new(blk.iter().copied().collect()),
                })
                .collect();
            let ebits = FixedBitSet::from_indices(64, event_bits.iter().copied());
            let compressed = Cluster::compressed(&members);
            let direct = Cluster::direct(&members);
            let mut a = Vec::new();
            let mut b = Vec::new();
            compressed.match_into(&ebits, &mut a);
            direct.match_into(&ebits, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(&a, &b);
            // Both agree with the reference predicate.
            let mut expect: Vec<SubId> = members
                .iter()
                .filter(|m| m.matches_bitmap(&ebits))
                .map(|m| m.id)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(a, expect);
        }

        /// The arena-backed kernel agrees with a `BTreeSet`-model oracle:
        /// a member matches iff `required ⊆ event` and `blocked ∩ event = ∅`
        /// over the raw id sets — including empty residuals (members whose
        /// `required` equals the shared mask) and blocked-only vetoes, and
        /// still after removing a member mid-life.
        #[test]
        fn arena_kernel_agrees_with_set_model(
            // A common core many members share, so empty residuals occur.
            core in proptest::collection::btree_set(0u32..16, 1..4),
            extras in proptest::collection::vec(
                (
                    proptest::collection::btree_set(16u32..48, 0..5),
                    proptest::collection::btree_set(48u32..64, 0..3),
                ),
                1..10,
            ),
            event_bits in proptest::collection::btree_set(0usize..64, 0..40),
            removed in 0usize..64,
        ) {
            let members: Vec<(BTreeSet<u32>, BTreeSet<u32>)> = extras
                .iter()
                .map(|(req, blk)| {
                    let req: BTreeSet<u32> = core.union(req).copied().collect();
                    (req, blk.clone())
                })
                .collect();
            let encoded: Vec<EncodedSub> = members
                .iter()
                .enumerate()
                .map(|(i, (req, blk))| EncodedSub {
                    id: SubId(i as u32),
                    required: SparseBits::new(req.iter().copied().collect()),
                    blocked: SparseBits::new(blk.iter().copied().collect()),
                })
                .collect();
            let event: BTreeSet<u32> = event_bits.iter().map(|&i| i as u32).collect();
            let ewords = FixedBitSet::from_indices(64, event_bits.iter().copied());

            let oracle = |skip: Option<usize>| -> Vec<SubId> {
                members
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| Some(i) != skip)
                    .filter(|(_, (req, blk))| {
                        req.is_subset(&event) && blk.is_disjoint(&event)
                    })
                    .map(|(i, _)| SubId(i as u32))
                    .collect()
            };

            for mut cluster in [Cluster::compressed(&encoded), Cluster::direct(&encoded)] {
                let mut got = Vec::new();
                let probe = cluster.match_words(ewords.words(), &mut got);
                got.sort_unstable();
                prop_assert_eq!(&got, &oracle(None));
                prop_assert_eq!(probe.hits as usize, got.len());
                if probe.pruned {
                    prop_assert!(got.is_empty());
                }

                // Removal keeps the surviving members' semantics exact.
                let victim = removed % encoded.len();
                cluster.remove(SubId(victim as u32));
                let mut after = Vec::new();
                cluster.match_words(ewords.words(), &mut after);
                after.sort_unstable();
                prop_assert_eq!(after, oracle(Some(victim)));
            }
        }
    }
}
