//! Sharded matcher-lifetime counters.
//!
//! Every rayon/crossbeam worker used to `fetch_add` the same per-cluster
//! atomics once per probe, so concurrent matching threads ping-ponged the
//! cluster cache lines. The matcher now keeps its lifetime totals in a small
//! array of cache-line-padded [`CounterCell`]s: each worker thread hashes to
//! one cell and flushes its thread-local deltas there once per window, and
//! `Matcher::stats` sums the cells lazily. Totals are exact — every flush
//! lands in exactly one cell — only *when* a delta becomes visible is
//! deferred to the end of the window that produced it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One cache line of counters. The padding keeps two workers flushing to
/// neighboring cells from sharing a line (no false sharing).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CounterCell {
    probes: AtomicU64,
    prunes: AtomicU64,
    hits: AtomicU64,
}

impl CounterCell {
    /// Adds a flushed batch of deltas to this cell.
    #[inline]
    pub fn add(&self, probes: u64, prunes: u64, hits: u64) {
        if probes > 0 {
            self.probes.fetch_add(probes, Ordering::Relaxed);
        }
        if prunes > 0 {
            self.prunes.fetch_add(prunes, Ordering::Relaxed);
        }
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
    }
}

/// Process-wide worker numbering: each thread draws a dense id once and
/// keeps it for life, so a thread always flushes to the same cell.
static NEXT_WORKER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static WORKER_ID: usize = NEXT_WORKER.fetch_add(1, Ordering::Relaxed);
}

/// A power-of-two array of [`CounterCell`]s indexed by worker id.
#[derive(Debug)]
pub struct CounterShards {
    cells: Box<[CounterCell]>,
}

impl CounterShards {
    /// Builds shards for roughly `workers` concurrent threads (rounded up to
    /// a power of two so cell selection is a mask, capped to keep the lazy
    /// aggregation cheap).
    pub fn new(workers: usize) -> Self {
        let n = workers.max(1).next_power_of_two().min(64);
        Self {
            cells: (0..n).map(|_| CounterCell::default()).collect(),
        }
    }

    /// The calling thread's cell.
    #[inline]
    pub fn cell(&self) -> &CounterCell {
        let id = WORKER_ID.with(|id| *id);
        &self.cells[id & (self.cells.len() - 1)]
    }

    /// Sums every cell: `(probes, prunes, hits)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64);
        for cell in self.cells.iter() {
            t.0 += cell.probes.load(Ordering::Relaxed);
            t.1 += cell.prunes.load(Ordering::Relaxed);
            t.2 += cell.hits.load(Ordering::Relaxed);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(CounterShards::new(0).cells.len(), 1);
        assert_eq!(CounterShards::new(1).cells.len(), 1);
        assert_eq!(CounterShards::new(3).cells.len(), 4);
        assert_eq!(CounterShards::new(1000).cells.len(), 64);
    }

    #[test]
    fn totals_sum_all_cells_exactly() {
        let shards = CounterShards::new(4);
        shards.cell().add(5, 2, 1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| shards.cell().add(10, 3, 2));
            }
        });
        assert_eq!(shards.totals(), (5 + 80, 2 + 24, 1 + 16));
    }

    #[test]
    fn zero_deltas_skip_the_rmw() {
        let shards = CounterShards::new(1);
        shards.cell().add(0, 0, 0);
        assert_eq!(shards.totals(), (0, 0, 0));
    }
}
