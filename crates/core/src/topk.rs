//! Top-k scored matching.
//!
//! The paper's first motivating application is computational advertising,
//! where matching is followed by ranking: of all campaigns eligible for an
//! impression, only the highest-value few reach the auction.
//! [`ScoredMatcher`] attaches a weight (bid, priority) to every subscription
//! and answers *top-k* queries: the k highest-weighted matches, without
//! materializing scores for the rest of the corpus.

use crate::{ApcmConfig, ApcmMatcher};
use apcm_bexpr::{BexprError, Event, Matcher, Schema, SubId, Subscription};
use parking_lot::RwLock;
use std::collections::HashMap;

/// A matcher whose subscriptions carry scores; see the module docs.
#[derive(Debug)]
pub struct ScoredMatcher {
    matcher: ApcmMatcher,
    weights: RwLock<HashMap<SubId, f64>>,
}

impl ScoredMatcher {
    /// Builds from `(subscription, weight)` pairs.
    ///
    /// # Panics
    /// Panics if any weight is non-finite (NaN weights would make ranking
    /// unstable).
    pub fn build(
        schema: &Schema,
        subs: &[(Subscription, f64)],
        config: &ApcmConfig,
    ) -> Result<Self, BexprError> {
        let mut weights = HashMap::with_capacity(subs.len());
        let mut plain = Vec::with_capacity(subs.len());
        for (sub, weight) in subs {
            assert!(weight.is_finite(), "weights must be finite");
            weights.insert(sub.id(), *weight);
            plain.push(sub.clone());
        }
        Ok(Self {
            matcher: ApcmMatcher::build(schema, &plain, config)?,
            weights: RwLock::new(weights),
        })
    }

    /// Registers a subscription with a weight; `false` if the id is taken.
    pub fn subscribe(&self, sub: &Subscription, weight: f64) -> Result<bool, BexprError> {
        assert!(weight.is_finite(), "weights must be finite");
        if self.matcher.subscribe(sub)? {
            self.weights.write().insert(sub.id(), weight);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Removes a subscription; returns whether it was present.
    pub fn unsubscribe(&self, id: SubId) -> bool {
        if self.matcher.unsubscribe(id) {
            self.weights.write().remove(&id);
            true
        } else {
            false
        }
    }

    /// Updates a weight in place (no re-indexing); `false` if unknown id.
    pub fn set_weight(&self, id: SubId, weight: f64) -> bool {
        assert!(weight.is_finite(), "weights must be finite");
        match self.weights.write().get_mut(&id) {
            Some(slot) => {
                *slot = weight;
                true
            }
            None => false,
        }
    }

    /// Number of scored subscriptions.
    pub fn len(&self) -> usize {
        self.matcher.len()
    }

    /// Whether the matcher is empty.
    pub fn is_empty(&self) -> bool {
        self.matcher.is_empty()
    }

    /// The k highest-weighted matches for `ev`, sorted by descending weight
    /// (ties: ascending id, so results are deterministic).
    pub fn match_top_k(&self, ev: &Event, k: usize) -> Vec<(SubId, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let matched = self.matcher.match_event(ev);
        let weights = self.weights.read();
        let mut scored: Vec<(SubId, f64)> = matched
            .into_iter()
            .map(|id| (id, weights.get(&id).copied().unwrap_or(0.0)))
            .collect();
        drop(weights);
        let k = k.min(scored.len());
        if k == 0 {
            return Vec::new();
        }
        // Partial selection: O(n) to isolate the top k, then sort just them.
        scored.select_nth_unstable_by(k - 1, |a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite weights")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite weights")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored
    }

    /// All matches with their weights, descending (the `k = ∞` case).
    pub fn match_scored(&self, ev: &Event) -> Vec<(SubId, f64)> {
        self.match_top_k(ev, usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::parser;

    fn setup(weights: &[f64]) -> (Schema, ScoredMatcher) {
        let schema = Schema::uniform(3, 100);
        // All subscriptions match any event with a0 = 1.
        let subs: Vec<(Subscription, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                (
                    parser::parse_subscription_with_id(&schema, SubId(i as u32), "a0 = 1").unwrap(),
                    w,
                )
            })
            .collect();
        let matcher = ScoredMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
        (schema, matcher)
    }

    #[test]
    fn top_k_orders_by_weight() {
        let (schema, matcher) = setup(&[1.0, 5.0, 3.0, 4.0, 2.0]);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        let top = matcher.match_top_k(&ev, 3);
        assert_eq!(top, vec![(SubId(1), 5.0), (SubId(3), 4.0), (SubId(2), 3.0)]);
    }

    #[test]
    fn ties_break_by_id() {
        let (schema, matcher) = setup(&[2.0, 2.0, 2.0]);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        let top = matcher.match_top_k(&ev, 2);
        assert_eq!(top, vec![(SubId(0), 2.0), (SubId(1), 2.0)]);
    }

    #[test]
    fn k_larger_than_matches_and_zero() {
        let (schema, matcher) = setup(&[1.0, 2.0]);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert_eq!(matcher.match_top_k(&ev, 100).len(), 2);
        assert!(matcher.match_top_k(&ev, 0).is_empty());
        let miss = parser::parse_event(&schema, "a0 = 2").unwrap();
        assert!(matcher.match_top_k(&miss, 3).is_empty());
    }

    #[test]
    fn only_matching_subscriptions_are_ranked() {
        let schema = Schema::uniform(3, 100);
        let subs = vec![
            (
                parser::parse_subscription_with_id(&schema, SubId(0), "a0 = 1").unwrap(),
                10.0,
            ),
            (
                parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 2").unwrap(),
                99.0,
            ),
        ];
        let matcher = ScoredMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        // The heavy subscription does not match and must not appear.
        assert_eq!(matcher.match_top_k(&ev, 5), vec![(SubId(0), 10.0)]);
    }

    #[test]
    fn weight_update_and_churn() {
        let (schema, matcher) = setup(&[1.0, 2.0]);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(matcher.set_weight(SubId(0), 9.0));
        assert!(!matcher.set_weight(SubId(7), 1.0));
        assert_eq!(matcher.match_top_k(&ev, 1), vec![(SubId(0), 9.0)]);

        let fresh = parser::parse_subscription_with_id(&schema, SubId(9), "a0 = 1").unwrap();
        matcher.subscribe(&fresh, 100.0).unwrap();
        assert_eq!(matcher.match_top_k(&ev, 1), vec![(SubId(9), 100.0)]);
        assert!(matcher.unsubscribe(SubId(9)));
        assert_eq!(matcher.match_top_k(&ev, 1), vec![(SubId(0), 9.0)]);
        assert_eq!(matcher.len(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_rejected() {
        let (_, matcher) = setup(&[1.0]);
        matcher.set_weight(SubId(0), f64::NAN);
    }

    #[test]
    fn match_scored_returns_everything() {
        let (schema, matcher) = setup(&[1.0, 3.0, 2.0]);
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        let all = matcher.match_scored(&ev);
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
