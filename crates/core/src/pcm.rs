//! PCM: parallel compressed matching (static engine).

use crate::{parallel::Pool, scratch, ApcmConfig, Cluster, ClusterIndex};
use apcm_bexpr::{BexprError, Event, Matcher, Schema, SubId, Subscription};
use apcm_encoding::{FixedBitSet, PredicateSpace};

/// The paper's PCM configuration: compressed clusters swept in parallel,
/// no stream re-ordering, no adaptivity, static corpus.
///
/// [`crate::ApcmMatcher`] layers OSR, adaptivity, and dynamic maintenance on
/// the same kernel; PCM exists separately because the evaluation repeatedly
/// compares the two (e.g. experiments E3 and E10 isolate what OSR and
/// adaptivity add).
#[derive(Debug)]
pub struct PcmMatcher {
    space: PredicateSpace,
    index: ClusterIndex,
    pool: Pool,
    len: usize,
}

impl PcmMatcher {
    /// Encodes the corpus, clusters it, and readies the thread pool.
    pub fn build(
        schema: &Schema,
        subs: &[Subscription],
        config: &ApcmConfig,
    ) -> Result<Self, BexprError> {
        config.validate().expect("invalid ApcmConfig");
        let (space, encoded) = PredicateSpace::build(schema, subs)?;
        let selectivity = crate::clustering::selectivity_table(&space);
        let clusters = config
            .clustering
            .cluster(&encoded, config.max_cluster_size, &selectivity);
        let index = ClusterIndex::build(clusters, space.width(), &selectivity);
        let pool = Pool::new(config.executor, config.threads);
        Ok(Self {
            space,
            index,
            pool,
            len: subs.len(),
        })
    }

    /// Matches a pre-encoded event bitmap (sorted, deduplicated ids).
    ///
    /// The pivot index narrows the cluster sweep to clusters whose pivot
    /// predicate the event satisfies; those candidates are then fanned out
    /// across the pool.
    pub fn match_encoded(&self, ebits: &FixedBitSet) -> Vec<SubId> {
        scratch::with_scratch(|s| {
            self.index.candidates_into(ebits.words(), &mut s.candidates);
            s.row.clear();
            if self.pool.threads() > 1 && s.candidates.len() >= 64 {
                let index = &self.index;
                let chunk = self.pool.cluster_chunk_size(s.candidates.len());
                let found = self.pool.flat_map_chunks(&s.candidates, chunk, |idxs| {
                    scratch::with_scratch(|ws| {
                        ws.counts.ensure(index.len());
                        let mut local = Vec::new();
                        for &idx in idxs {
                            let probe = index.probe_words(idx, ebits.words(), &mut local);
                            ws.counts.count(idx, probe);
                        }
                        ws.counts.flush(index.clusters(), None);
                        local
                    })
                });
                s.row.extend(found);
            } else {
                s.counts.ensure(self.index.len());
                for &idx in &s.candidates {
                    let probe = self.index.probe_words(idx, ebits.words(), &mut s.row);
                    s.counts.count(idx, probe);
                }
                s.counts.flush(self.index.clusters(), None);
            }
            s.row.sort_unstable();
            s.row.dedup();
            s.row.as_slice().to_vec()
        })
    }

    /// The underlying predicate space (shared with the harness for encode
    /// timing).
    pub fn space(&self) -> &PredicateSpace {
        &self.space
    }

    /// The cluster set (read-only; exposed for the compression experiment).
    pub fn clusters(&self) -> &[Cluster] {
        self.index.clusters()
    }

    /// Heap bytes of all stored bitmaps (compression-ratio metric).
    pub fn heap_bytes(&self) -> usize {
        self.clusters().iter().map(Cluster::heap_bytes).sum()
    }

    /// Clusters the pivot index would skip for this event (access-pruning
    /// metric for the stats tables).
    pub fn skipped_clusters(&self, ev: &Event) -> usize {
        self.index.skipped(&self.space.encode_event(ev))
    }

    /// Candidate cluster indexes for a pre-encoded event (profiling hook).
    pub fn index_candidates(&self, ebits: &FixedBitSet) -> Vec<u32> {
        self.index.candidates(ebits)
    }
}

impl Matcher for PcmMatcher {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        // Borrow the thread's scratch bitmap for the encode, then hand it to
        // the shared single-event kernel. (`match_encoded` re-enters
        // `with_scratch`, so the bitmap is moved out rather than borrowed
        // across the call.)
        let ebits = scratch::with_scratch(|s| {
            s.ensure_width(self.space.width());
            self.space.encode_event_into(ev, &mut s.ebits);
            std::mem::take(&mut s.ebits)
        });
        let out = self.match_encoded(&ebits);
        scratch::with_scratch(|s| s.ebits = ebits);
        out
    }

    fn match_batch(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        // Parallelize along the event axis — better locality than fanning
        // every single event across all cores. Each worker reuses its own
        // thread-local scratch across the events it processes.
        let width = self.space.width();
        self.pool.map_indexed(events.len(), |i| {
            scratch::with_scratch(|s| {
                s.ensure_width(width);
                self.space.encode_event_into(&events[i], &mut s.ebits);
                s.counts.ensure(self.index.len());
                self.index
                    .candidates_into(s.ebits.words(), &mut s.candidates);
                s.row.clear();
                for &idx in &s.candidates {
                    let probe = self.index.probe_words(idx, s.ebits.words(), &mut s.row);
                    s.counts.count(idx, probe);
                }
                s.counts.flush(self.index.clusters(), None);
                s.row.sort_unstable();
                s.row.dedup();
                s.row.as_slice().to_vec()
            })
        })
    }

    fn name(&self) -> &'static str {
        "PCM"
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use apcm_baselines::SequentialScan;
    use apcm_workload::{OperatorMix, WorkloadSpec};

    fn configs() -> Vec<ApcmConfig> {
        vec![
            ApcmConfig::sequential(),
            ApcmConfig::pcm().with_threads(4),
            ApcmConfig {
                executor: Executor::Crossbeam,
                ..ApcmConfig::pcm().with_threads(4)
            },
            ApcmConfig {
                clustering: crate::ClusteringPolicy::GreedyLeader {
                    threshold: 0.3,
                    window: 16,
                },
                ..ApcmConfig::pcm()
            },
        ]
    }

    #[test]
    fn agrees_with_scan_across_configs() {
        let wl = WorkloadSpec::new(800)
            .seed(51)
            .planted_fraction(0.3)
            .build();
        let scan = SequentialScan::new(&wl.subs);
        let events = wl.events(40);
        for config in configs() {
            let pcm = PcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            assert_eq!(pcm.len(), 800);
            for ev in &events {
                assert_eq!(
                    pcm.match_event(ev),
                    scan.match_event(ev),
                    "config {config:?}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_per_event_results() {
        let wl = WorkloadSpec::new(500)
            .seed(52)
            .planted_fraction(0.5)
            .build();
        let pcm = PcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::pcm()).unwrap();
        let events = wl.events(64);
        let rows = pcm.match_batch(&events);
        assert_eq!(rows.len(), events.len());
        for (ev, row) in events.iter().zip(rows.iter()) {
            assert_eq!(row, &pcm.match_event(ev));
        }
    }

    #[test]
    fn range_heavy_workload_agrees() {
        let wl = WorkloadSpec::new(400)
            .operators(OperatorMix::range_heavy())
            .planted_fraction(0.4)
            .seed(53)
            .build();
        let scan = SequentialScan::new(&wl.subs);
        let pcm = PcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::pcm()).unwrap();
        for ev in wl.events(40) {
            assert_eq!(pcm.match_event(&ev), scan.match_event(&ev));
        }
    }

    #[test]
    fn compression_saves_memory_on_similar_corpus() {
        // Low-dimensional equality corpus: heavy predicate sharing.
        let wl = WorkloadSpec::new(2000)
            .dims(6)
            .cardinality(8)
            .sub_preds(3, 5)
            .event_size(6)
            .operators(OperatorMix::equality_only())
            .seed(54)
            .build();
        let compressed = PcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::pcm()).unwrap();
        let direct_cfg = ApcmConfig {
            max_cluster_size: 1,
            ..ApcmConfig::pcm()
        };
        let direct = PcmMatcher::build(&wl.schema, &wl.subs, &direct_cfg).unwrap();
        assert!(
            compressed.clusters().len() < direct.clusters().len(),
            "clustering must group"
        );
        // Pruning statistics should show the shared mask doing work.
        let events = wl.events(200);
        let _ = compressed.match_batch(&events);
        let prunes: u64 = compressed
            .clusters()
            .iter()
            .map(|c| c.prunes.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        assert!(prunes > 0, "shared masks should prune");
    }

    #[test]
    fn empty_corpus() {
        let schema = apcm_bexpr::Schema::uniform(2, 10);
        let pcm = PcmMatcher::build(&schema, &[], &ApcmConfig::pcm()).unwrap();
        let ev = apcm_bexpr::parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(pcm.match_event(&ev).is_empty());
        assert!(pcm.is_empty());
        assert_eq!(pcm.heap_bytes(), 0);
    }
}
