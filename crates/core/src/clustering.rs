//! Clustering policies: grouping similar subscription bitmaps.
//!
//! Compression quality is decided here: the larger the intersection within a
//! cluster, the more work the shared-mask test saves. Three policies are
//! provided and ablated in experiment E9:
//!
//! * [`ClusteringPolicy::PivotPredicate`] (default) — group subscriptions by
//!   their most corpus-frequent predicate. Guarantees a non-empty shared
//!   mask (the pivot), which powers the pivot access index.
//! * [`ClusteringPolicy::SortedSignature`] — sort bitmaps lexicographically
//!   by their sorted bit ids and cut into fixed-size runs. `O(n log n)`,
//!   cache-friendly, and effective because lexicographic neighbors share
//!   their most significant (lowest-id) predicates — typically the popular
//!   ones.
//! * [`ClusteringPolicy::GreedyLeader`] — single-pass leader clustering: each
//!   bitmap joins the first recent leader within a Jaccard similarity
//!   threshold, else founds a new cluster. Produces tighter clusters on
//!   heterogeneous corpora at a higher build cost.

use crate::Cluster;
use apcm_encoding::{EncodedSub, PredicateSpace};
use std::collections::HashMap;

/// Per-predicate selectivity (fraction of the attribute's domain the
/// predicate accepts), indexed by predicate bit. The pivot policy uses it to
/// guard each cluster behind its members' most selective shared predicate —
/// the access-predicate rule from the k-index / BE-Tree literature.
pub fn selectivity_table(space: &PredicateSpace) -> Vec<f64> {
    let schema = space.schema();
    // Bit layout: presence bits first (see `apcm_encoding::index`). A
    // presence bit fires whenever the attribute appears in an event, so it
    // is a poor pivot; 0.99 keeps it available as a last resort for
    // subscriptions whose predicates are all broad.
    let mut table = vec![0.99; schema.dims()];
    table.extend(
        space
            .registry()
            .iter()
            .map(|(_, pred)| pred.op.selectivity(schema.domain(pred.attr))),
    );
    table
}

/// How subscription bitmaps are grouped; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ClusteringPolicy {
    /// Group by each subscription's most corpus-frequent predicate (the
    /// default). Every cluster gets a non-empty shared mask containing the
    /// pivot, so the pivot index (`crate::index`) skips the cluster whenever
    /// the event misses that predicate, and popular predicates — the ones
    /// most subscriptions hang off — are evaluated once per cluster instead
    /// of once per subscription.
    #[default]
    PivotPredicate,
    /// Lexicographic sort + fixed-size runs.
    SortedSignature,
    /// Greedy leader clustering with the given Jaccard threshold in
    /// `[0, 1]`, scanning at most `window` most-recent leaders per insert.
    GreedyLeader {
        /// Minimum Jaccard similarity to join a leader's cluster.
        threshold: f64,
        /// Leaders scanned per insertion (bounds build time to `O(n·window)`).
        window: usize,
    },
}

impl ClusteringPolicy {
    /// Groups `subs` into clusters of at most `max_size` members and builds
    /// the compressed representation of each group.
    ///
    /// `selectivity` maps predicate bit → selectivity (see
    /// [`selectivity_table`]); pass an empty slice to fall back to pure
    /// frequency-based pivots (only the pivot policy reads it).
    pub fn cluster(
        &self,
        subs: &[EncodedSub],
        max_size: usize,
        selectivity: &[f64],
    ) -> Vec<Cluster> {
        assert!(max_size > 0, "max cluster size must be positive");
        if subs.is_empty() {
            return Vec::new();
        }
        match self {
            ClusteringPolicy::PivotPredicate => pivot_predicate(subs, max_size, selectivity),
            ClusteringPolicy::SortedSignature => sorted_signature(subs, max_size),
            ClusteringPolicy::GreedyLeader { threshold, window } => {
                greedy_leader(subs, max_size, *threshold, *window)
            }
        }
    }
}

/// Pivots with selectivity above this are "weak": they fire on a large
/// fraction of events, so building one tiny cluster per weak pivot would
/// create thousands of frequently-probed clusters. Weak subscriptions are
/// pooled and clustered by signature into few, larger clusters instead.
const WEAK_PIVOT_SELECTIVITY: f64 = 0.35;

fn pivot_predicate(subs: &[EncodedSub], max_size: usize, selectivity: &[f64]) -> Vec<Cluster> {
    // Corpus-wide predicate frequency (sharing potential).
    let mut freq: HashMap<u32, u32> = HashMap::new();
    for sub in subs {
        for &bit in sub.required.ids() {
            *freq.entry(bit).or_insert(0) += 1;
        }
    }
    // Guard each subscription behind its most *selective* predicate: the
    // probability the pivot index probes the cluster equals the pivot's
    // selectivity. Ties (e.g. all equality predicates on same-cardinality
    // domains) break toward the most frequent predicate so clusters share,
    // then toward the lower bit id for determinism.
    let sel = |bit: u32| -> f64 { selectivity.get(bit as usize).copied().unwrap_or(1.0) };
    let mut groups: HashMap<u32, Vec<&EncodedSub>> = HashMap::new();
    let mut weak: Vec<&EncodedSub> = Vec::new();
    for sub in subs {
        let pivot = sub
            .required
            .ids()
            .iter()
            .copied()
            .min_by(|&a, &b| {
                sel(a)
                    .partial_cmp(&sel(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| freq[&b].cmp(&freq[&a]))
                    .then_with(|| a.cmp(&b))
            })
            .expect("subscriptions have at least one predicate");
        if sel(pivot) > WEAK_PIVOT_SELECTIVITY {
            weak.push(sub);
        } else {
            groups.entry(pivot).or_default().push(sub);
        }
    }
    // Deterministic cluster order: by pivot id.
    let mut pivots: Vec<u32> = groups.keys().copied().collect();
    pivots.sort_unstable();
    let mut clusters = Vec::new();
    for pivot in pivots {
        let mut members = groups.remove(&pivot).expect("key from iteration");
        // Lexicographic order within the group maximizes sharing beyond the
        // pivot inside each chunk.
        members.sort_by(|a, b| a.required.ids().cmp(b.required.ids()));
        for chunk in members.chunks(max_size) {
            let owned: Vec<EncodedSub> = chunk.iter().map(|&e| e.clone()).collect();
            clusters.push(Cluster::compressed(&owned));
        }
    }
    // Weak subscriptions: few large signature-sorted clusters, probed on
    // most events but cheap per probe.
    if !weak.is_empty() {
        weak.sort_by(|a, b| a.required.ids().cmp(b.required.ids()));
        for chunk in weak.chunks(max_size) {
            let owned: Vec<EncodedSub> = chunk.iter().map(|&e| e.clone()).collect();
            clusters.push(Cluster::compressed(&owned));
        }
    }
    clusters
}

fn sorted_signature(subs: &[EncodedSub], max_size: usize) -> Vec<Cluster> {
    let mut order: Vec<&EncodedSub> = subs.iter().collect();
    order.sort_by(|a, b| a.required.ids().cmp(b.required.ids()));
    order
        .chunks(max_size)
        .map(|chunk| {
            let owned: Vec<EncodedSub> = chunk.iter().map(|&e| e.clone()).collect();
            Cluster::compressed(&owned)
        })
        .collect()
}

fn greedy_leader(
    subs: &[EncodedSub],
    max_size: usize,
    threshold: f64,
    window: usize,
) -> Vec<Cluster> {
    struct Group {
        leader: Vec<u32>,
        members: Vec<EncodedSub>,
    }
    let jaccard = |a: &[u32], b: &[u32]| -> f64 {
        // Sorted-merge intersection count.
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    };

    let mut groups: Vec<Group> = Vec::new();
    let mut open: Vec<usize> = Vec::new(); // indexes of groups still accepting
    for sub in subs {
        let mut placed = false;
        for &gi in open.iter().rev().take(window) {
            let group = &mut groups[gi];
            if jaccard(&group.leader, sub.required.ids()) >= threshold {
                group.members.push(sub.clone());
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(Group {
                leader: sub.required.ids().to_vec(),
                members: vec![sub.clone()],
            });
            open.push(groups.len() - 1);
        }
        // Close groups that reached capacity.
        open.retain(|&gi| groups[gi].members.len() < max_size);
    }
    groups
        .into_iter()
        .map(|g| Cluster::compressed(&g.members))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::SubId;

    fn enc(id: u32, bits: &[u32]) -> EncodedSub {
        crate::cluster::enc_for_test(id, bits, &[])
    }

    fn total_members(clusters: &[Cluster]) -> usize {
        clusters.iter().map(Cluster::len).sum()
    }

    #[test]
    fn empty_input_empty_output() {
        for policy in [
            ClusteringPolicy::PivotPredicate,
            ClusteringPolicy::SortedSignature,
            ClusteringPolicy::GreedyLeader {
                threshold: 0.5,
                window: 8,
            },
        ] {
            assert!(policy.cluster(&[], 4, &[]).is_empty());
        }
    }

    #[test]
    fn pivot_predicate_groups_by_popular_bit() {
        // Bit 7 appears in every subscription; it must be every pivot and
        // every cluster's shared mask must contain it.
        let subs: Vec<EncodedSub> = (0..30).map(|i| enc(i, &[7, 100 + i])).collect();
        let clusters = ClusteringPolicy::PivotPredicate.cluster(&subs, 8, &[]);
        assert_eq!(total_members(&clusters), 30);
        for c in &clusters {
            assert_eq!(c.pivot(), Some(7));
            match &c.repr {
                crate::ClusterRepr::Compressed { shared, .. } => assert!(shared.contains(7)),
                _ => panic!("pivot policy must produce compressed clusters"),
            }
        }
    }

    #[test]
    fn pivot_predicate_never_produces_direct_clusters_with_selective_bits() {
        // Even completely disjoint subscriptions compress when their bits
        // are selective: each becomes its own pivot group with itself as
        // the shared mask.
        let subs: Vec<EncodedSub> = (0..20).map(|i| enc(i, &[i * 3, i * 3 + 1])).collect();
        let table = vec![0.01f64; 64];
        let clusters = ClusteringPolicy::PivotPredicate.cluster(&subs, 8, &table);
        for c in &clusters {
            assert!(c.pivot().is_some());
        }
        assert_eq!(total_members(&clusters), 20);
    }

    #[test]
    fn weak_pivot_subs_pooled_into_large_clusters() {
        // All bits weak (empty table → sel 1.0): the policy pools everything
        // into few signature-sorted clusters instead of one per pivot.
        let subs: Vec<EncodedSub> = (0..100).map(|i| enc(i, &[i * 2, i * 2 + 1])).collect();
        let clusters = ClusteringPolicy::PivotPredicate.cluster(&subs, 25, &[]);
        assert_eq!(total_members(&clusters), 100);
        assert!(
            clusters.len() <= 4,
            "weak subs must be pooled, got {} clusters",
            clusters.len()
        );
    }

    #[test]
    fn every_sub_lands_in_exactly_one_cluster() {
        let subs: Vec<EncodedSub> = (0..100)
            .map(|i| enc(i, &[i % 7, 10 + i % 3, 20 + i]))
            .collect();
        for policy in [
            ClusteringPolicy::SortedSignature,
            ClusteringPolicy::GreedyLeader {
                threshold: 0.3,
                window: 16,
            },
        ] {
            let clusters = policy.cluster(&subs, 8, &[]);
            assert_eq!(total_members(&clusters), 100, "{policy:?}");
            for c in &clusters {
                assert!(c.len() <= 8, "{policy:?} violates max size");
            }
            // All 100 distinct ids present.
            let mut ids: Vec<SubId> = clusters
                .iter()
                .flat_map(|c| c.to_encoded().into_iter().map(|e| e.id))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 100, "{policy:?}");
        }
    }

    #[test]
    fn sorted_signature_groups_identical_bitmaps() {
        // 20 identical + 20 distinct: identical ones must share clusters
        // with full compression (empty residuals).
        let mut subs: Vec<EncodedSub> = (0..20).map(|i| enc(i, &[1, 2, 3])).collect();
        subs.extend((20..40).map(|i| enc(i, &[i, i + 50])));
        let clusters = ClusteringPolicy::SortedSignature.cluster(&subs, 20, &[]);
        let full = clusters
            .iter()
            .find(|c| c.len() == 20)
            .expect("identical bitmaps form one full cluster");
        match &full.repr {
            crate::ClusterRepr::Compressed { shared, members } => {
                assert_eq!(shared.len(), 3);
                assert!(members.iter().all(|(_, residual, _)| residual.is_empty()));
            }
            _ => panic!("identical bitmaps must compress"),
        }
    }

    #[test]
    fn greedy_leader_respects_threshold() {
        // Two families with zero cross-family overlap: a high threshold must
        // never mix them.
        let mut subs = Vec::new();
        for i in 0..10 {
            subs.push(enc(i, &[0, 1, 2, 3, 10 + i]));
        }
        for i in 10..20 {
            subs.push(enc(i, &[50, 51, 52, 53, 60 + i]));
        }
        let clusters = ClusteringPolicy::GreedyLeader {
            threshold: 0.4,
            window: 32,
        }
        .cluster(&subs, 64, &[]);
        for c in &clusters {
            let ids: Vec<u32> = c.to_encoded().iter().map(|e| e.id.0).collect();
            let fam_a = ids.iter().all(|&i| i < 10);
            let fam_b = ids.iter().all(|&i| i >= 10);
            assert!(fam_a || fam_b, "mixed cluster: {ids:?}");
        }
    }

    #[test]
    fn greedy_leader_window_bounds_membership() {
        let subs: Vec<EncodedSub> = (0..50).map(|i| enc(i, &[1, 2, 3])).collect();
        let clusters = ClusteringPolicy::GreedyLeader {
            threshold: 0.9,
            window: 4,
        }
        .cluster(&subs, 10, &[]);
        assert_eq!(total_members(&clusters), 50);
        for c in &clusters {
            assert!(c.len() <= 10);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    use proptest::prelude::*;

    proptest! {
        /// Clustering is a partition: every input id appears exactly once
        /// regardless of policy or parameters.
        #[test]
        fn clustering_is_a_partition(
            bitsets in proptest::collection::vec(
                proptest::collection::btree_set(0u32..48, 1..6),
                1..60,
            ),
            max_size in 1usize..20,
            threshold in 0.0f64..1.0,
        ) {
            let subs: Vec<EncodedSub> = bitsets
                .iter()
                .enumerate()
                .map(|(i, bits)| {
                    crate::cluster::enc_for_test(
                        i as u32,
                        &bits.iter().copied().collect::<Vec<_>>(),
                        &[],
                    )
                })
                .collect();
            for policy in [
                ClusteringPolicy::PivotPredicate,
                ClusteringPolicy::SortedSignature,
                ClusteringPolicy::GreedyLeader { threshold, window: 8 },
            ] {
                let clusters = policy.cluster(&subs, max_size, &[]);
                let mut seen: Vec<u32> = clusters
                    .iter()
                    .flat_map(|c| c.to_encoded().into_iter().map(|e| e.id.0))
                    .collect();
                seen.sort_unstable();
                let expect: Vec<u32> = (0..subs.len() as u32).collect();
                prop_assert_eq!(&seen, &expect, "{:?}", policy);
                for c in &clusters {
                    prop_assert!(c.len() <= max_size);
                }
            }
        }
    }
}
