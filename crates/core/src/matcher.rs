//! The A-PCM matcher: compression + parallelism + OSR + adaptivity.

use crate::{
    adaptive::MaintenanceReport, osr, parallel::Pool, scratch, scratch::EncTable, ApcmConfig,
    Cluster, ClusterIndex, ClusterRepr, CounterShards, MatcherStats,
};
use apcm_bexpr::{BexprError, Event, Matcher, Schema, SubId, Subscription};
use apcm_encoding::{EncodedSub, PredicateSpace};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The full engine from the paper. See the crate docs for the mechanism
/// overview and [`crate::PcmMatcher`] for the static subset.
///
/// All methods take `&self`: matching holds a read lock, mutation
/// (subscribe / unsubscribe / maintenance) a write lock, so one matcher can
/// serve concurrent matching threads while subscriptions churn.
#[derive(Debug)]
pub struct ApcmMatcher {
    config: ApcmConfig,
    pool: Pool,
    inner: RwLock<Inner>,
    events_since_epoch: AtomicU64,
    maintenance_runs: AtomicU64,
    /// Lifetime probe/prune/hit totals, sharded per worker so the kernel
    /// never writes a shared cache line per probe.
    counters: CounterShards,
}

#[derive(Debug)]
struct Inner {
    space: PredicateSpace,
    index: ClusterIndex,
    /// Recently subscribed expressions, matched by direct scan until the
    /// next maintenance pass folds them into clusters.
    pending: Vec<EncodedSub>,
    /// Clustered subscription → cluster position, for O(1) unsubscribe.
    /// Rebuilt by every maintenance pass; pending entries are not listed.
    locator: HashMap<SubId, u32>,
    /// Cached static selectivity table; extended lazily when dynamic
    /// subscriptions grow the predicate space.
    static_selectivity: Vec<f64>,
}

impl ApcmMatcher {
    /// Builds the engine over a corpus.
    pub fn build(
        schema: &Schema,
        subs: &[Subscription],
        config: &ApcmConfig,
    ) -> Result<Self, BexprError> {
        config.validate().expect("invalid ApcmConfig");
        let (space, encoded) = PredicateSpace::build(schema, subs)?;
        let selectivity = crate::clustering::selectivity_table(&space);
        let clusters = config
            .clustering
            .cluster(&encoded, config.max_cluster_size, &selectivity);
        let index = ClusterIndex::build(clusters, space.width(), &selectivity);
        let locator = Inner::build_locator(&index);
        let pool = Pool::new(config.executor, config.threads);
        Ok(Self {
            counters: CounterShards::new(pool.threads()),
            pool,
            config: config.clone(),
            inner: RwLock::new(Inner {
                space,
                index,
                pending: Vec::new(),
                locator,
                static_selectivity: selectivity,
            }),
            events_since_epoch: AtomicU64::new(0),
            maintenance_runs: AtomicU64::new(0),
        })
    }

    /// Registers a new subscription. Returns `false` (and changes nothing)
    /// if the id is already registered.
    ///
    /// New expressions are matched immediately via the pending buffer; the
    /// next maintenance pass folds them into compressed clusters.
    pub fn subscribe(&self, sub: &Subscription) -> Result<bool, BexprError> {
        let mut inner = self.inner.write();
        if inner.locator.contains_key(&sub.id()) || inner.pending.iter().any(|p| p.id == sub.id()) {
            return Ok(false);
        }
        let enc = inner.space.add_subscription(sub)?;
        inner.pending.push(enc);
        let overdue = inner.pending.len() > self.config.adaptive.max_pending;
        drop(inner);
        if overdue {
            self.maintain();
        }
        Ok(true)
    }

    /// Removes a subscription by id; returns whether it was present.
    pub fn unsubscribe(&self, id: SubId) -> bool {
        let mut inner = self.inner.write();
        if let Some(pos) = inner.pending.iter().position(|p| p.id == id) {
            inner.pending.swap_remove(pos);
            return true;
        }
        let Some(ci) = inner.locator.remove(&id) else {
            return false;
        };
        let removed = inner.index.clusters_mut()[ci as usize].remove(id);
        debug_assert!(removed, "locator pointed at a cluster lacking the id");
        removed
    }

    /// Runs a maintenance pass now (also triggered automatically every
    /// `adaptive.epoch_events` matched events and on pending-buffer
    /// overflow).
    pub fn maintain(&self) -> MaintenanceReport {
        let epoch_events = self.events_since_epoch.swap(0, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let report = inner.maintain(&self.config, epoch_events);
        self.maintenance_runs.fetch_add(1, Ordering::Relaxed);
        report
    }

    /// Snapshot of state and counters.
    pub fn stats(&self) -> MatcherStats {
        let inner = self.inner.read();
        let mut stats = MatcherStats {
            subscriptions: inner.len(),
            clusters: inner.index.len(),
            pending: inner.pending.len(),
            width: inner.space.width(),
            maintenance_runs: self.maintenance_runs.load(Ordering::Relaxed),
            ..Default::default()
        };
        for c in inner.index.clusters() {
            match &c.repr {
                ClusterRepr::Compressed { .. } => stats.compressed_clusters += 1,
                ClusterRepr::Direct { .. } => stats.direct_clusters += 1,
            }
            stats.heap_bytes += c.heap_bytes();
        }
        // Lifetime totals come from the sharded worker cells, not the
        // per-cluster atomics (those are epoch-scoped adaptivity inputs,
        // reset at every maintenance pass).
        (stats.probes, stats.prunes, stats.hits) = self.counters.totals();
        stats
    }

    /// The configuration the matcher runs with.
    pub fn config(&self) -> &ApcmConfig {
        &self.config
    }

    /// Matches a window of events in arrival order, applying OSR and batch
    /// pruning per the configuration. Equivalent to
    /// [`Matcher::match_batch`]; exposed with an explicit name for
    /// documentation purposes.
    pub fn match_window(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        if events.is_empty() {
            return Vec::new();
        }
        let inner = self.inner.read();
        let n = events.len();
        let width = inner.space.width();

        // Encode the window into one flat word table — one buffer per
        // window (reused across windows via thread-local storage) instead of
        // one bitmap allocation per event — filled in parallel in
        // row-aligned chunks.
        let mut table = scratch::take_table();
        table.reset(n, width);
        let stride = table.stride();
        {
            let space = &inner.space;
            self.pool
                .for_each_chunk_mut(table.words_mut(), stride, |start, chunk| {
                    let first = start / stride;
                    for (r, row) in chunk.chunks_mut(stride).enumerate() {
                        space.encode_event_into_words(&events[first + r], row);
                    }
                });
        }

        let batch = self.config.batch_size.max(1).min(n);
        let order: Vec<usize> = if self.config.reorder && batch > 1 {
            osr::reorder_permutation_rows(&table)
        } else {
            (0..n).collect()
        };
        let n_windows = n.div_ceil(batch);

        let mut rows: Vec<(usize, Vec<SubId>)> = if n_windows > 1 {
            // Enough windows: parallelize across them.
            self.pool
                .map_indexed(n_windows, |w| {
                    let lo = w * batch;
                    let hi = (lo + batch).min(n);
                    inner.match_ordered_batch(&order[lo..hi], &table, &self.counters)
                })
                .into_iter()
                .flatten()
                .collect()
        } else {
            // Single window: parallelize the per-event sweep instead.
            inner.match_batch_cluster_parallel(&order, &table, &self.pool, &self.counters)
        };
        scratch::put_table(table);

        // Scatter back to arrival order: every original index appears
        // exactly once, so sorting by index is the whole permutation — no
        // placeholder rows allocated and reassigned.
        rows.sort_unstable_by_key(|&(idx, _)| idx);
        let results: Vec<Vec<SubId>> = rows.into_iter().map(|(_, row)| row).collect();

        let pending_overdue = inner.pending.len() > self.config.adaptive.max_pending;
        drop(inner);
        self.after_match(n as u64, pending_overdue);
        results
    }

    fn after_match(&self, n_events: u64, pending_overdue: bool) {
        let seen = self
            .events_since_epoch
            .fetch_add(n_events, Ordering::Relaxed)
            + n_events;
        let epoch_due = self.config.adaptive.enabled && seen >= self.config.adaptive.epoch_events;
        if epoch_due || pending_overdue {
            let epoch_events = self.events_since_epoch.swap(0, Ordering::Relaxed);
            // try_write: if a mutator already holds the lock, skip — the
            // next event batch will retry.
            if let Some(mut inner) = self.inner.try_write() {
                let _report = inner.maintain(&self.config, epoch_events);
                self.maintenance_runs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Inner {
    fn len(&self) -> usize {
        self.locator.len() + self.pending.len()
    }

    fn build_locator(index: &ClusterIndex) -> HashMap<SubId, u32> {
        let mut locator = HashMap::with_capacity(index.clusters().iter().map(Cluster::len).sum());
        for (i, cluster) in index.clusters().iter().enumerate() {
            for id in cluster.member_ids() {
                locator.insert(id, i as u32);
            }
        }
        locator
    }

    fn match_pending_words(&self, ewords: &[u64], out: &mut Vec<SubId>) {
        for p in &self.pending {
            if p.matches_words(ewords) {
                out.push(p.id);
            }
        }
    }

    /// Sequentially matches a reordered batch (identified by `order`
    /// indices). Candidate clusters are gathered per event through the
    /// pivot index, then probed **cluster-major**: all of a cluster's
    /// events are processed back-to-back so its shared mask and residuals
    /// stay cache-hot across the batch — the locality OSR's reordering sets
    /// up. The candidate list, probe schedule, and counter deltas all come
    /// from the worker's thread-local scratch; counters are flushed once at
    /// window end. Returns `(original index, sorted matches)` rows.
    fn match_ordered_batch(
        &self,
        order: &[usize],
        table: &EncTable,
        counters: &CounterShards,
    ) -> Vec<(usize, Vec<SubId>)> {
        scratch::with_scratch(|s| {
            s.counts.ensure(self.index.len());
            s.pairs.clear();
            for (j, &i) in order.iter().enumerate() {
                self.index.candidates_into(table.row(i), &mut s.candidates);
                for &idx in &s.candidates {
                    s.pairs.push((idx, j as u32));
                }
            }
            // Cluster-major; events within a cluster keep window order.
            s.pairs.sort_unstable();
            let mut outs: Vec<Vec<SubId>> = vec![Vec::new(); order.len()];
            for &(idx, j) in &s.pairs {
                let probe = self.index.probe_words(
                    idx,
                    table.row(order[j as usize]),
                    &mut outs[j as usize],
                );
                s.counts.count(idx, probe);
            }
            s.counts.flush(self.index.clusters(), Some(counters.cell()));
            order
                .iter()
                .zip(outs)
                .map(|(&idx, mut row)| {
                    self.match_pending_words(table.row(idx), &mut row);
                    row.sort_unstable();
                    row.dedup();
                    (idx, row)
                })
                .collect()
        })
    }

    /// Single-window path: fan the per-event work across the pool, each
    /// worker probing out of its own thread-local scratch.
    fn match_batch_cluster_parallel(
        &self,
        order: &[usize],
        table: &EncTable,
        pool: &Pool,
        counters: &CounterShards,
    ) -> Vec<(usize, Vec<SubId>)> {
        pool.map_indexed(order.len(), |j| {
            let idx = order[j];
            let ewords = table.row(idx);
            scratch::with_scratch(|s| {
                s.counts.ensure(self.index.len());
                self.index.candidates_into(ewords, &mut s.candidates);
                s.row.clear();
                for &c in &s.candidates {
                    let probe = self.index.probe_words(c, ewords, &mut s.row);
                    s.counts.count(c, probe);
                }
                self.match_pending_words(ewords, &mut s.row);
                s.row.sort_unstable();
                s.row.dedup();
                s.counts.flush(self.index.clusters(), Some(counters.cell()));
                (idx, s.row.as_slice().to_vec())
            })
        })
    }

    /// Maintenance: fold pending, re-cluster unhealthy clusters, drop empty
    /// ones, reset counters, re-key the index. See `crate::adaptive` for
    /// the rebuild policy.
    ///
    /// Adaptivity enters through the selectivity table: each cluster key's
    /// *observed* firing rate over the elapsed epoch (`probes /
    /// epoch_events`) overrides its static selectivity when hotter. Keys
    /// that drifted hot are therefore abandoned — both by the re-keying of
    /// kept clusters and by the pivot policy when re-clustering pooled
    /// members — in favor of predicates that are still cold in the current
    /// stream.
    fn maintain(&mut self, config: &ApcmConfig, epoch_events: u64) -> MaintenanceReport {
        let width = self.space.width();
        let mut report = MaintenanceReport {
            folded_pending: self.pending.len(),
            ..Default::default()
        };
        // Decide what would change before tearing anything down: a no-op
        // epoch (stationary workload, no churn) must not pay the index and
        // locator rebuilds, which are O(width + corpus).
        //
        // Unproductive clusters are pooled only when their access key fires
        // observably hotter than its design selectivity: on a stationary
        // stream the key is already as selective as the members allow, so
        // re-clustering would only churn.
        let adaptive = &config.adaptive;
        let will_rebuild: Vec<bool> = self
            .index
            .clusters()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if c.is_empty() {
                    return true;
                }
                if !(adaptive.enabled && adaptive.should_rebuild(c)) {
                    return false;
                }
                if epoch_events == 0 {
                    // Explicit maintain with no observations: trust the
                    // productivity signal alone.
                    return true;
                }
                match self.index.key_of(i as u32) {
                    None => true, // direct cluster: always worth retrying
                    Some(bit) => {
                        let observed =
                            c.probes.load(Ordering::Relaxed) as f64 / epoch_events as f64;
                        let design = self
                            .static_selectivity
                            .get(bit as usize)
                            .copied()
                            .unwrap_or(1.0);
                        observed > (adaptive.hot_key_factor * design).max(0.02)
                    }
                }
            })
            .collect();
        if self.pending.is_empty() && !will_rebuild.iter().any(|&b| b) {
            for cluster in self.index.clusters() {
                cluster.reset_stats();
            }
            return report;
        }

        if self.static_selectivity.len() < width {
            // Dynamic subscriptions grew the predicate space.
            self.static_selectivity = crate::clustering::selectivity_table(&self.space);
        }
        let mut selectivity = self.static_selectivity.clone();
        if config.adaptive.enabled && epoch_events > 0 {
            for (i, cluster) in self.index.clusters().iter().enumerate() {
                if let Some(bit) = self.index.key_of(i as u32) {
                    let rate = cluster.probes.load(Ordering::Relaxed) as f64 / epoch_events as f64;
                    let slot = &mut selectivity[bit as usize];
                    *slot = slot.max(rate.min(1.0));
                }
            }
        }

        let mut pool: Vec<EncodedSub> = std::mem::take(&mut self.pending);
        let old = std::mem::take(&mut self.index);
        let mut kept: Vec<Cluster> = Vec::with_capacity(old.len());
        for (cluster, rebuild) in old.into_clusters().into_iter().zip(will_rebuild) {
            if cluster.is_empty() {
                report.dropped_clusters += 1;
                continue;
            }
            if rebuild {
                report.rebuilt_clusters += 1;
                pool.extend(cluster.to_encoded());
                continue;
            }
            cluster.reset_stats();
            kept.push(cluster);
        }
        if !pool.is_empty() {
            kept.extend(
                config
                    .clustering
                    .cluster(&pool, config.max_cluster_size, &selectivity),
            );
        }
        self.index = ClusterIndex::build(kept, width, &selectivity);
        self.locator = Self::build_locator(&self.index);
        report
    }
}

impl Matcher for ApcmMatcher {
    fn match_event(&self, ev: &Event) -> Vec<SubId> {
        let inner = self.inner.read();
        let out = scratch::with_scratch(|s| {
            s.ensure_width(inner.space.width());
            inner.space.encode_event_into(ev, &mut s.ebits);
            inner
                .index
                .candidates_into(s.ebits.words(), &mut s.candidates);
            s.row.clear();
            if s.candidates.len() >= 64 && self.pool.threads() > 1 {
                let chunk = self.pool.cluster_chunk_size(s.candidates.len());
                let index = &inner.index;
                let counters = &self.counters;
                let ebits = &s.ebits;
                let mut gathered = self.pool.flat_map_chunks(&s.candidates, chunk, |idxs| {
                    // Worker threads count on their own scratch.
                    scratch::with_scratch(|ws| {
                        ws.counts.ensure(index.len());
                        let mut local = Vec::new();
                        for &idx in idxs {
                            let probe = index.probe_words(idx, ebits.words(), &mut local);
                            ws.counts.count(idx, probe);
                        }
                        ws.counts.flush(index.clusters(), Some(counters.cell()));
                        local
                    })
                });
                s.row.append(&mut gathered);
            } else {
                s.counts.ensure(inner.index.len());
                for &idx in &s.candidates {
                    let probe = inner.index.probe_words(idx, s.ebits.words(), &mut s.row);
                    s.counts.count(idx, probe);
                }
                s.counts
                    .flush(inner.index.clusters(), Some(self.counters.cell()));
            }
            inner.match_pending_words(s.ebits.words(), &mut s.row);
            s.row.sort_unstable();
            s.row.dedup();
            s.row.as_slice().to_vec()
        });
        let pending_overdue = inner.pending.len() > self.config.adaptive.max_pending;
        drop(inner);
        self.after_match(1, pending_overdue);
        out
    }

    fn match_batch(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        self.match_window(events)
    }

    fn name(&self) -> &'static str {
        "A-PCM"
    }

    fn len(&self) -> usize {
        self.inner.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_baselines::SequentialScan;
    use apcm_bexpr::parser;
    use apcm_workload::{DriftingStream, ValueDist, WorkloadSpec};

    fn small_epochs() -> ApcmConfig {
        ApcmConfig {
            adaptive: crate::AdaptiveConfig {
                epoch_events: 64,
                min_probes: 8,
                max_pending: 16,
                ..crate::AdaptiveConfig::default()
            },
            batch_size: 16,
            ..ApcmConfig::default()
        }
    }

    #[test]
    fn agrees_with_scan_per_event_and_batch() {
        let wl = WorkloadSpec::new(700)
            .seed(61)
            .planted_fraction(0.3)
            .build();
        let scan = SequentialScan::new(&wl.subs);
        let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::default()).unwrap();
        let events = wl.events(80);
        let rows = apcm.match_batch(&events);
        for (ev, row) in events.iter().zip(rows.iter()) {
            let expect = scan.match_event(ev);
            assert_eq!(row, &expect);
            assert_eq!(apcm.match_event(ev), expect);
        }
    }

    #[test]
    fn osr_reordering_preserves_result_order() {
        let wl = WorkloadSpec::new(300)
            .seed(62)
            .planted_fraction(0.6)
            .build();
        let with_osr = ApcmMatcher::build(
            &wl.schema,
            &wl.subs,
            &ApcmConfig {
                batch_size: 32,
                reorder: true,
                ..ApcmConfig::default()
            },
        )
        .unwrap();
        let without = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::pcm()).unwrap();
        let events = wl.events(100);
        assert_eq!(with_osr.match_batch(&events), without.match_batch(&events));
    }

    #[test]
    fn subscribe_is_visible_immediately() {
        let schema = Schema::uniform(4, 100);
        let apcm = ApcmMatcher::build(&schema, &[], &ApcmConfig::default()).unwrap();
        let ev = parser::parse_event(&schema, "a0 = 5").unwrap();
        assert!(apcm.match_event(&ev).is_empty());

        let sub = parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 5").unwrap();
        assert!(apcm.subscribe(&sub).unwrap());
        assert_eq!(apcm.match_event(&ev), vec![SubId(1)]);
        assert_eq!(apcm.len(), 1);

        // Duplicate id is a no-op.
        assert!(!apcm.subscribe(&sub).unwrap());
        assert_eq!(apcm.len(), 1);
    }

    #[test]
    fn unsubscribe_from_pending_and_clusters() {
        let wl = WorkloadSpec::new(100).seed(63).build();
        let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &small_epochs()).unwrap();
        // From a cluster (built corpus).
        assert!(apcm.unsubscribe(wl.subs[0].id()));
        assert!(!apcm.unsubscribe(wl.subs[0].id()));
        // From pending (fresh subscribe).
        let sub = parser::parse_subscription_with_id(&wl.schema, SubId(5000), "a0 = 1").unwrap();
        apcm.subscribe(&sub).unwrap();
        assert!(apcm.unsubscribe(SubId(5000)));
        assert_eq!(apcm.len(), 99);

        // Post-removal matching agrees with a scan over the survivors.
        let remaining: Vec<Subscription> = wl.subs[1..].to_vec();
        let scan = SequentialScan::new(&remaining);
        for ev in wl.events(30) {
            assert_eq!(apcm.match_event(&ev), scan.match_event(&ev));
        }
    }

    #[test]
    fn maintenance_folds_pending_into_clusters() {
        let schema = Schema::uniform(4, 100);
        let apcm = ApcmMatcher::build(&schema, &[], &small_epochs()).unwrap();
        for i in 0..10u32 {
            let sub = parser::parse_subscription_with_id(
                &schema,
                SubId(i),
                &format!("a0 = {} AND a1 < 50", i % 3),
            )
            .unwrap();
            apcm.subscribe(&sub).unwrap();
        }
        assert_eq!(apcm.stats().pending, 10);
        let report = apcm.maintain();
        assert_eq!(report.folded_pending, 10);
        let stats = apcm.stats();
        assert_eq!(stats.pending, 0);
        assert!(stats.clusters > 0);
        assert_eq!(stats.subscriptions, 10);

        let ev = parser::parse_event(&schema, "a0 = 1, a1 = 10").unwrap();
        assert_eq!(apcm.match_event(&ev), vec![SubId(1), SubId(4), SubId(7)]);
    }

    #[test]
    fn pending_overflow_triggers_fold() {
        let schema = Schema::uniform(4, 100);
        let config = small_epochs(); // max_pending = 16
        let apcm = ApcmMatcher::build(&schema, &[], &config).unwrap();
        for i in 0..40u32 {
            let sub =
                parser::parse_subscription_with_id(&schema, SubId(i), &format!("a0 = {}", i % 5))
                    .unwrap();
            apcm.subscribe(&sub).unwrap();
        }
        let stats = apcm.stats();
        assert!(
            stats.pending <= config.adaptive.max_pending,
            "pending {} exceeds bound",
            stats.pending
        );
        assert!(stats.clusters > 0);
    }

    #[test]
    fn adaptive_epochs_run_under_stream_and_stay_correct() {
        let wl = WorkloadSpec::new(400)
            .values(ValueDist::Zipf(1.0))
            .planted_fraction(0.2)
            .seed(64)
            .build();
        let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &small_epochs()).unwrap();
        let scan = SequentialScan::new(&wl.subs);
        // Drifting stream: hot values move, forcing re-clustering decisions.
        let mut stream = DriftingStream::new(&wl, 100, 250, 65);
        for _ in 0..6 {
            let window: Vec<Event> = (&mut stream).take(100).collect();
            let rows = apcm.match_batch(&window);
            for (ev, row) in window.iter().zip(rows.iter()) {
                assert_eq!(row, &scan.match_event(ev), "drifted stream mismatch");
            }
        }
        assert!(
            apcm.stats().maintenance_runs > 0,
            "epochs should have triggered maintenance"
        );
    }

    #[test]
    fn stats_snapshot_consistency() {
        let wl = WorkloadSpec::new(200).seed(66).build();
        let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &ApcmConfig::default()).unwrap();
        let stats = apcm.stats();
        assert_eq!(stats.subscriptions, 200);
        assert_eq!(
            stats.clusters,
            stats.compressed_clusters + stats.direct_clusters
        );
        assert!(stats.width > 0);
        let _ = apcm.match_batch(&wl.events(32));
        assert!(apcm.stats().probes > 0);
    }

    #[test]
    fn sharded_counters_stay_exact_under_concurrent_matching() {
        let wl = WorkloadSpec::new(300)
            .seed(67)
            .planted_fraction(0.3)
            .build();
        // Adaptivity off: the cluster structure (and thus the probe counts
        // per event) stays fixed across runs.
        let config = ApcmConfig {
            adaptive: crate::AdaptiveConfig::disabled(),
            batch_size: 16,
            ..ApcmConfig::default()
        };
        let events = wl.events(64);

        // Reference totals from one single-threaded pass over the workload.
        let reference = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
        let _ = reference.match_batch(&events);
        for ev in &events[..8] {
            let _ = reference.match_event(ev);
        }
        let expect = reference.stats();
        assert!(expect.probes > 0 && expect.hits > 0);

        // T concurrent threads each run the identical workload: lifetime
        // totals must land exactly T times the reference — counter sharding
        // may defer visibility, never lose or double-count.
        const T: u64 = 4;
        let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..T {
                scope.spawn(|| {
                    let _ = apcm.match_batch(&events);
                    for ev in &events[..8] {
                        let _ = apcm.match_event(ev);
                    }
                });
            }
        });
        let got = apcm.stats();
        assert_eq!(got.probes, T * expect.probes);
        assert_eq!(got.prunes, T * expect.prunes);
        assert_eq!(got.hits, T * expect.hits);
    }

    #[test]
    fn empty_matcher_and_empty_batch() {
        let schema = Schema::uniform(2, 10);
        let apcm = ApcmMatcher::build(&schema, &[], &ApcmConfig::default()).unwrap();
        assert!(apcm.match_batch(&[]).is_empty());
        let ev = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert!(apcm.match_event(&ev).is_empty());
        assert!(apcm.maintain().is_noop());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use apcm_baselines::SequentialScan;
    use apcm_workload::WorkloadSpec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// A-PCM agrees with brute force across random configurations.
        #[test]
        fn agrees_with_scan_random_configs(
            seed in 0u64..500,
            max_cluster in 1usize..128,
            batch in 1usize..64,
            reorder in proptest::bool::ANY,
            greedy in proptest::bool::ANY,
        ) {
            let wl = WorkloadSpec::new(250).seed(seed).planted_fraction(0.4).build();
            let config = ApcmConfig {
                max_cluster_size: max_cluster,
                batch_size: batch,
                reorder,
                clustering: if greedy {
                    crate::ClusteringPolicy::GreedyLeader { threshold: 0.25, window: 8 }
                } else {
                    crate::ClusteringPolicy::SortedSignature
                },
                ..ApcmConfig::default()
            };
            let apcm = ApcmMatcher::build(&wl.schema, &wl.subs, &config).unwrap();
            let scan = SequentialScan::new(&wl.subs);
            let events = wl.events(20);
            let rows = apcm.match_batch(&events);
            for (ev, row) in events.iter().zip(rows.iter()) {
                prop_assert_eq!(row, &scan.match_event(ev));
            }
        }
    }
}
