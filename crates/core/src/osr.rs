//! OSR: online event stream re-ordering.
//!
//! Events arrive in arbitrary order, but nearby-in-content events exercise
//! the same clusters. OSR buffers a window, reorders it so that similar
//! events are adjacent, and lets the matcher process the window in
//! *batches*: per batch, the union of the event bitmaps prunes clusters for
//! the whole batch (a cluster whose shared mask is not contained in the
//! union matches no event of the batch), and cluster data stays hot in cache
//! across the batch's events.
//!
//! Re-ordering is content-based and cheap: events are sorted by the word
//! prefix of their satisfied-predicate bitmaps, so events sharing their
//! low-id (typically most popular) predicates become neighbors. Matching
//! results are always reported in the **original arrival order** — OSR is an
//! internal execution strategy, not a semantic change.

use apcm_bexpr::Event;
use apcm_encoding::FixedBitSet;

/// Computes the processing order for a window of encoded events: indices
/// into `encoded`, sorted by bitmap content (lexicographic over words,
/// original index as the tiebreak for determinism).
pub fn reorder_permutation(encoded: &[FixedBitSet]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    order.sort_by(|&a, &b| encoded[a].words().cmp(encoded[b].words()).then(a.cmp(&b)));
    order
}

/// [`reorder_permutation`] over a flat encoded-event word table (the
/// matcher's per-window [`crate::EncTable`]) — same ordering, no per-event
/// bitmap objects.
pub fn reorder_permutation_rows(table: &crate::EncTable) -> Vec<usize> {
    let mut order: Vec<usize> = (0..table.rows()).collect();
    order.sort_by(|&a, &b| table.row(a).cmp(table.row(b)).then(a.cmp(&b)));
    order
}

/// The union of a batch's event bitmaps — the whole-batch pruning mask.
pub fn batch_union(width: usize, batch: &[&FixedBitSet]) -> FixedBitSet {
    let mut union = FixedBitSet::new(width);
    for ebits in batch {
        union.union_with(ebits);
    }
    union
}

/// A fixed-capacity buffer that hands out full windows for batch matching.
///
/// Streaming applications push events as they arrive; every `capacity`-th
/// push returns the full window to run through
/// [`crate::ApcmMatcher::match_batch`]. [`OsrBuffer::flush`] drains a
/// partial window at stream end (or on a latency deadline — the buffer
/// itself imposes no timing policy).
#[derive(Debug)]
pub struct OsrBuffer {
    capacity: usize,
    buf: Vec<Event>,
}

impl OsrBuffer {
    /// A buffer holding up to `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "OSR window capacity must be positive");
        Self {
            capacity,
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Adds an event; returns the full window when it reaches capacity.
    pub fn push(&mut self, ev: Event) -> Option<Vec<Event>> {
        self.buf.push(ev);
        if self.buf.len() == self.capacity {
            Some(std::mem::replace(
                &mut self.buf,
                Vec::with_capacity(self.capacity),
            ))
        } else {
            None
        }
    }

    /// Drains whatever is buffered (possibly empty).
    pub fn flush(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.buf)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::AttrId;

    fn bits(width: usize, ids: &[usize]) -> FixedBitSet {
        FixedBitSet::from_indices(width, ids.iter().copied())
    }

    #[test]
    fn permutation_is_a_permutation() {
        let encoded = vec![
            bits(128, &[5, 9]),
            bits(128, &[1, 2]),
            bits(128, &[5, 9]),
            bits(128, &[]),
        ];
        let mut perm = reorder_permutation(&encoded);
        assert_eq!(perm.len(), 4);
        perm.sort_unstable();
        assert_eq!(perm, vec![0, 1, 2, 3]);
    }

    #[test]
    fn identical_events_become_adjacent() {
        let encoded = vec![
            bits(128, &[5, 9]),
            bits(128, &[1, 2]),
            bits(128, &[5, 9]),
            bits(128, &[1, 2]),
        ];
        let perm = reorder_permutation(&encoded);
        // The two [1,2] events and the two [5,9] events end up adjacent.
        assert_eq!(encoded[perm[0]], encoded[perm[1]]);
        assert_eq!(encoded[perm[2]], encoded[perm[3]]);
    }

    #[test]
    fn permutation_deterministic_with_ties() {
        let encoded = vec![bits(64, &[1]), bits(64, &[1]), bits(64, &[1])];
        assert_eq!(reorder_permutation(&encoded), vec![0, 1, 2]);
    }

    #[test]
    fn union_covers_all_members() {
        let a = bits(128, &[1, 64]);
        let b = bits(128, &[2, 100]);
        let union = batch_union(128, &[&a, &b]);
        assert_eq!(union.ones().collect::<Vec<_>>(), vec![1, 2, 64, 100]);
        assert!(a.is_subset(&union) && b.is_subset(&union));
    }

    #[test]
    fn empty_batch_union_is_empty() {
        assert!(batch_union(64, &[]).is_empty());
    }

    #[test]
    fn buffer_windows_and_flush() {
        let ev = |v| Event::new(vec![(AttrId(0), v)]).unwrap();
        let mut buf = OsrBuffer::new(3);
        assert!(buf.push(ev(1)).is_none());
        assert!(buf.push(ev(2)).is_none());
        let window = buf.push(ev(3)).expect("third push fills the window");
        assert_eq!(window.len(), 3);
        assert!(buf.is_empty());

        assert!(buf.push(ev(4)).is_none());
        let rest = buf.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(buf.len(), 0);
        assert!(buf.flush().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = OsrBuffer::new(0);
    }
}
