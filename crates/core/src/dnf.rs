//! Matching full DNF expressions on the conjunction engine.
//!
//! The engines in this workspace index conjunctions (the ICDE model). The
//! BE-Tree journal version handles arbitrary Boolean expressions by
//! normalizing to DNF and indexing each clause separately; [`DnfEngine`]
//! provides that layer over [`ApcmMatcher`]: every clause of a
//! [`DnfSubscription`] is registered as an internal conjunction, and match
//! results are translated back to the owning expression (deduplicated — an
//! event satisfying several clauses reports the expression once).

use crate::{ApcmConfig, ApcmMatcher, MatcherStats};
use apcm_bexpr::{BexprError, DnfSubscription, Event, Matcher, Schema, SubId};
use parking_lot::RwLock;
use std::collections::HashMap;

#[derive(Debug, Default)]
struct OwnerMap {
    /// Internal clause id (dense index) → owning user expression.
    owner: Vec<SubId>,
    /// User expression → its internal clause ids.
    clauses_of: HashMap<SubId, Vec<SubId>>,
}

impl OwnerMap {
    fn mint(&mut self, user: SubId, n_clauses: usize) -> Vec<SubId> {
        let ids: Vec<SubId> = (0..n_clauses)
            .map(|_| {
                let internal = SubId::from_index(self.owner.len());
                self.owner.push(user);
                internal
            })
            .collect();
        self.clauses_of.insert(user, ids.clone());
        ids
    }
}

/// DNF matching engine; see the module docs.
#[derive(Debug)]
pub struct DnfEngine {
    matcher: ApcmMatcher,
    owners: RwLock<OwnerMap>,
    schema: Schema,
}

impl DnfEngine {
    /// Builds the engine over a DNF corpus.
    ///
    /// Fails on duplicate expression ids or invalid predicates.
    pub fn build(
        schema: &Schema,
        dnfs: &[DnfSubscription],
        config: &ApcmConfig,
    ) -> Result<Self, BexprError> {
        let mut owners = OwnerMap::default();
        let mut clause_subs = Vec::new();
        for dnf in dnfs {
            assert!(
                !owners.clauses_of.contains_key(&dnf.id()),
                "duplicate DNF expression id {:?}",
                dnf.id()
            );
            let ids = owners.mint(dnf.id(), dnf.len());
            clause_subs.extend(dnf.clause_subscriptions(ids.into_iter()));
        }
        let matcher = ApcmMatcher::build(schema, &clause_subs, config)?;
        Ok(Self {
            matcher,
            owners: RwLock::new(owners),
            schema: schema.clone(),
        })
    }

    /// Registers a new DNF expression; returns `false` if its id is taken.
    pub fn subscribe(&self, dnf: &DnfSubscription) -> Result<bool, BexprError> {
        let mut owners = self.owners.write();
        if owners.clauses_of.contains_key(&dnf.id()) {
            return Ok(false);
        }
        // Validate up front: a failure mid-registration would leave earlier
        // clauses live.
        dnf.validate(&self.schema)?;
        let ids = owners.mint(dnf.id(), dnf.len());
        for clause in dnf.clause_subscriptions(ids.into_iter()) {
            let fresh = self.matcher.subscribe(&clause)?;
            debug_assert!(fresh, "internal clause ids are never reused");
        }
        Ok(true)
    }

    /// Removes a DNF expression by id; returns whether it was present.
    pub fn unsubscribe(&self, id: SubId) -> bool {
        let mut owners = self.owners.write();
        let Some(ids) = owners.clauses_of.remove(&id) else {
            return false;
        };
        for internal in ids {
            let removed = self.matcher.unsubscribe(internal);
            debug_assert!(removed, "clause ids tracked in the owner map");
        }
        true
    }

    /// Number of registered DNF expressions.
    pub fn len(&self) -> usize {
        self.owners.read().clauses_of.len()
    }

    /// Whether no expression is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Engine statistics (clause-level: `subscriptions` counts clauses).
    pub fn stats(&self) -> MatcherStats {
        self.matcher.stats()
    }

    fn translate(&self, internal: Vec<SubId>) -> Vec<SubId> {
        let owners = self.owners.read();
        let mut out: Vec<SubId> = internal
            .into_iter()
            .map(|i| owners.owner[i.index()])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All DNF expressions matched by `ev` (sorted, deduplicated).
    pub fn match_event(&self, ev: &Event) -> Vec<SubId> {
        self.translate(self.matcher.match_event(ev))
    }

    /// Batch counterpart of [`DnfEngine::match_event`], preserving input
    /// order.
    pub fn match_batch(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        self.matcher
            .match_batch(events)
            .into_iter()
            .map(|row| self.translate(row))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::parser;
    use apcm_workload::WorkloadSpec;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn schema() -> Schema {
        Schema::uniform(6, 100)
    }

    #[test]
    fn or_semantics() {
        let schema = schema();
        let dnf = parser::parse_dnf_with_id(&schema, SubId(3), "(a0 = 1 AND a1 = 2) OR (a0 = 9)")
            .unwrap();
        let engine = DnfEngine::build(&schema, &[dnf], &ApcmConfig::default()).unwrap();
        let hit_a = parser::parse_event(&schema, "a0 = 1, a1 = 2").unwrap();
        let hit_b = parser::parse_event(&schema, "a0 = 9").unwrap();
        let miss = parser::parse_event(&schema, "a0 = 1").unwrap();
        assert_eq!(engine.match_event(&hit_a), vec![SubId(3)]);
        assert_eq!(engine.match_event(&hit_b), vec![SubId(3)]);
        assert!(engine.match_event(&miss).is_empty());
    }

    #[test]
    fn overlapping_clauses_report_once() {
        let schema = schema();
        // Both clauses match the same event.
        let dnf = parser::parse_dnf_with_id(&schema, SubId(1), "(a0 < 50) OR (a0 < 60)").unwrap();
        let engine = DnfEngine::build(&schema, &[dnf], &ApcmConfig::default()).unwrap();
        let ev = parser::parse_event(&schema, "a0 = 10").unwrap();
        assert_eq!(engine.match_event(&ev), vec![SubId(1)]);
    }

    #[test]
    fn agrees_with_brute_force_on_random_dnfs() {
        // Pair random conjunctions from the generator into 2–3 clause DNFs.
        let wl = WorkloadSpec::new(600)
            .seed(81)
            .planted_fraction(0.3)
            .build();
        let mut rng = StdRng::seed_from_u64(82);
        let mut dnfs = Vec::new();
        let mut iter = wl.subs.iter();
        let mut uid = 0u32;
        while let Some(first) = iter.next() {
            let mut clauses = vec![first.predicates().to_vec()];
            for _ in 0..rng.gen_range(0..3) {
                if let Some(next) = iter.next() {
                    clauses.push(next.predicates().to_vec());
                }
            }
            dnfs.push(DnfSubscription::new(SubId(uid), clauses).unwrap());
            uid += 1;
        }
        let engine = DnfEngine::build(&wl.schema, &dnfs, &ApcmConfig::default()).unwrap();
        assert_eq!(engine.len(), dnfs.len());
        let events = wl.events(60);
        let rows = engine.match_batch(&events);
        for (ev, row) in events.iter().zip(rows.iter()) {
            let mut expect: Vec<SubId> = dnfs
                .iter()
                .filter(|d| d.matches(ev))
                .map(|d| d.id())
                .collect();
            expect.sort_unstable();
            assert_eq!(row, &expect);
            assert_eq!(&engine.match_event(ev), &expect);
        }
    }

    #[test]
    fn dynamic_subscribe_unsubscribe() {
        let schema = schema();
        let engine = DnfEngine::build(&schema, &[], &ApcmConfig::default()).unwrap();
        let dnf = parser::parse_dnf_with_id(&schema, SubId(7), "(a0 = 1) OR (a1 = 2)").unwrap();
        assert!(engine.subscribe(&dnf).unwrap());
        assert!(!engine.subscribe(&dnf).unwrap(), "duplicate id is a no-op");
        assert_eq!(engine.len(), 1);

        let ev = parser::parse_event(&schema, "a1 = 2").unwrap();
        assert_eq!(engine.match_event(&ev), vec![SubId(7)]);

        assert!(engine.unsubscribe(SubId(7)));
        assert!(!engine.unsubscribe(SubId(7)));
        assert!(engine.match_event(&ev).is_empty());
        assert!(engine.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate DNF expression id")]
    fn duplicate_corpus_ids_rejected() {
        let schema = schema();
        let a = parser::parse_dnf_with_id(&schema, SubId(0), "a0 = 1").unwrap();
        let b = parser::parse_dnf_with_id(&schema, SubId(0), "a1 = 2").unwrap();
        let _ = DnfEngine::build(&schema, &[a, b], &ApcmConfig::default());
    }
}
