//! A-PCM: adaptive parallel compressed event matching.
//!
//! This crate is the reproduction's core contribution (Sadoghi & Jacobsen,
//! ICDE 2014). It matches events against millions of Boolean expressions by
//! composing four mechanisms on top of the bitmap encoding from
//! `apcm-encoding`:
//!
//! 1. **Compression** ([`cluster`], [`clustering`]) — similar subscription
//!    bitmaps are clustered; each cluster stores the members' *intersection*
//!    once (the shared mask) plus tiny per-member sparse residuals. One
//!    subset test on the shared mask prunes the entire cluster.
//! 2. **Parallelism** ([`parallel`]) — clusters are embarrassingly parallel;
//!    matching fans out over a dedicated thread pool (rayon by default, a
//!    crossbeam-scoped executor for the ablation).
//! 3. **Online stream re-ordering** ([`osr`]) — events are buffered into
//!    windows and reordered by bitmap similarity so consecutive events hit
//!    the same clusters; a per-batch union mask prunes clusters for whole
//!    batches at a time.
//! 4. **Adaptivity** ([`adaptive`]) — per-cluster counters drive epoch-based
//!    maintenance: clusters whose compression stopped paying are rebuilt or
//!    demoted to a direct representation, and newly subscribed expressions
//!    are folded from the pending buffer into proper clusters.
//!
//! [`PcmMatcher`] exposes mechanisms 1–2 in a static engine (the paper's
//! PCM); [`ApcmMatcher`] adds 3–4 plus dynamic subscribe/unsubscribe (the
//! paper's A-PCM).
//!
//! ```
//! use apcm_core::{ApcmConfig, ApcmMatcher};
//! use apcm_bexpr::{parser, Matcher, Schema, SubId};
//!
//! let schema = Schema::uniform(4, 100);
//! let subs = vec![
//!     parser::parse_subscription_with_id(&schema, SubId(0), "a0 = 5 AND a1 < 50").unwrap(),
//!     parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 5 AND a1 >= 50").unwrap(),
//! ];
//! let matcher = ApcmMatcher::build(&schema, &subs, &ApcmConfig::default()).unwrap();
//! let ev = parser::parse_event(&schema, "a0 = 5, a1 = 10").unwrap();
//! assert_eq!(matcher.match_event(&ev), vec![SubId(0)]);
//! ```

pub mod adaptive;
pub mod cluster;
pub mod clustering;
pub mod config;
pub mod counters;
pub mod dnf;
pub mod index;
pub mod matcher;
pub mod osr;
pub mod parallel;
pub mod pcm;
pub mod scratch;
pub mod stats;
pub mod topk;

pub use adaptive::{AdaptiveConfig, MaintenanceReport};
pub use cluster::{Cluster, ClusterRepr, Probe};
pub use clustering::ClusteringPolicy;
pub use config::{ApcmConfig, Executor};
pub use counters::{CounterCell, CounterShards};
pub use dnf::DnfEngine;
pub use index::ClusterIndex;
pub use matcher::ApcmMatcher;
pub use osr::OsrBuffer;
pub use pcm::PcmMatcher;
pub use scratch::{EncTable, MatchScratch};
pub use stats::MatcherStats;
pub use topk::ScoredMatcher;
