//! Runtime statistics snapshots.

/// A point-in-time view of an [`crate::ApcmMatcher`]'s state and counters,
/// used by the harness tables and the adaptivity experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatcherStats {
    /// Indexed subscriptions (clustered + pending).
    pub subscriptions: usize,
    /// Total clusters.
    pub clusters: usize,
    /// Clusters in compressed representation.
    pub compressed_clusters: usize,
    /// Clusters in direct representation.
    pub direct_clusters: usize,
    /// Subscriptions awaiting the next maintenance fold.
    pub pending: usize,
    /// Predicate-space width in bits.
    pub width: usize,
    /// Heap bytes of stored bitmaps.
    pub heap_bytes: usize,
    /// Lifetime cluster probes across all workers.
    ///
    /// `probes`/`prunes`/`hits` are monotone totals aggregated lazily from
    /// per-worker counter cells ([`crate::CounterShards`]); maintenance
    /// resets only the per-cluster epoch counters that drive adaptivity,
    /// never these.
    pub probes: u64,
    /// Probes rejected by shared-mask or batch-union pruning (lifetime).
    pub prunes: u64,
    /// Member matches produced (lifetime).
    pub hits: u64,
    /// Maintenance passes executed (epoch-triggered or explicit).
    pub maintenance_runs: u64,
}

impl MatcherStats {
    /// Fraction of cluster probes pruned; 0 when nothing was probed.
    pub fn prune_rate(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.prunes as f64 / self.probes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_rate_handles_zero() {
        assert_eq!(MatcherStats::default().prune_rate(), 0.0);
        let s = MatcherStats {
            probes: 10,
            prunes: 4,
            ..Default::default()
        };
        assert!((s.prune_rate() - 0.4).abs() < 1e-12);
    }
}
