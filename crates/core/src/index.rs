//! Pivot-indexed cluster set: access pruning before cluster probing.
//!
//! Every member of a compressed cluster contains every bit of the cluster's
//! shared mask, so the cluster can only produce matches when the event
//! bitmap has the cluster's *pivot* (its first shared bit). Indexing
//! clusters by pivot turns the per-event sweep over **all** clusters into a
//! sweep over the clusters whose pivot predicate the event actually
//! satisfies — the same access-predicate idea BE-Tree applies spatially,
//! fused here with the compressed bitmap representation.
//!
//! Clusters with an empty shared mask (direct representation) have no sound
//! pivot and stay on an always-probed list; the pivot-aware clustering
//! policy makes these rare.

use crate::{Cluster, Probe};
use apcm_bexpr::SubId;
use apcm_encoding::FixedBitSet;

/// The cluster container used by both PCM and A-PCM matchers.
#[derive(Debug, Default)]
pub struct ClusterIndex {
    clusters: Vec<Cluster>,
    /// The access-key bit chosen for each cluster (None = always probed).
    keys: Vec<Option<u32>>,
    /// `by_pivot[bit]` → indexes of clusters whose pivot is `bit`.
    by_pivot: Vec<Vec<u32>>,
    /// Bits that are some cluster's pivot; candidate gathering intersects
    /// the event bitmap with this mask word-wise instead of testing every
    /// set event bit against the (mostly empty) `by_pivot` table.
    pivot_mask: FixedBitSet,
    /// Clusters without a pivot (direct representation): always probed.
    unpivoted: Vec<u32>,
}

impl ClusterIndex {
    /// Builds the index over `clusters` for a predicate space of `width`
    /// bits.
    ///
    /// Each cluster is keyed under its most *selective* shared bit per
    /// `selectivity` (see `clustering::selectivity_table`) — any shared bit
    /// is a sound key (every member requires it), but the rarest-fired one
    /// minimizes how often the cluster is probed. Ties break toward the
    /// higher bit id, which prefers predicate bits over the low-id presence
    /// bits. Pass an empty table to key purely by highest shared bit.
    pub fn build(clusters: Vec<Cluster>, width: usize, selectivity: &[f64]) -> Self {
        let sel = |bit: u32| -> f64 { selectivity.get(bit as usize).copied().unwrap_or(1.0) };
        let mut by_pivot: Vec<Vec<u32>> = vec![Vec::new(); width];
        let mut pivot_mask = FixedBitSet::new(width);
        let mut unpivoted = Vec::new();
        let mut keys = Vec::with_capacity(clusters.len());
        for (i, cluster) in clusters.iter().enumerate() {
            let key = cluster.shared_bits().and_then(|bits| {
                bits.iter().copied().min_by(|&a, &b| {
                    sel(a)
                        .partial_cmp(&sel(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| b.cmp(&a))
                })
            });
            match key {
                Some(bit) if (bit as usize) < width => {
                    by_pivot[bit as usize].push(i as u32);
                    pivot_mask.insert(bit as usize);
                    keys.push(Some(bit));
                }
                _ => {
                    unpivoted.push(i as u32);
                    keys.push(None);
                }
            }
        }
        Self {
            clusters,
            keys,
            by_pivot,
            pivot_mask,
            unpivoted,
        }
    }

    /// The access-key bit cluster `idx` is indexed under, if any.
    pub fn key_of(&self, idx: u32) -> Option<u32> {
        self.keys.get(idx as usize).copied().flatten()
    }

    /// The stored clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Mutable access for member removal; structure (pivots) is unchanged
    /// by removals, so the index stays valid.
    pub fn clusters_mut(&mut self) -> &mut [Cluster] {
        &mut self.clusters
    }

    /// Consumes the index, returning the clusters (for re-clustering).
    pub fn into_clusters(self) -> Vec<Cluster> {
        self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the index holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Gathers into `out` (cleared first) the index of every cluster that
    /// could match an event whose encoded word row is `ewords`: pivot hits
    /// plus the always-probed list. Each cluster appears at most once (a
    /// cluster has exactly one pivot). Reusing `out` across events keeps the
    /// gather allocation-free on the hot path.
    pub fn candidates_into(&self, ewords: &[u64], out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.unpivoted);
        // Word-wise sweep over `ewords ∩ pivot_mask`: only satisfied bits
        // that actually are pivots reach the posting-list lookup.
        let n = ewords.len().min(self.pivot_mask.words().len());
        for (w, (&ew, &mw)) in ewords[..n]
            .iter()
            .zip(self.pivot_mask.words()[..n].iter())
            .enumerate()
        {
            let mut word = ew & mw;
            while word != 0 {
                let bit = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                out.extend_from_slice(&self.by_pivot[bit]);
            }
        }
    }

    /// Allocating convenience over [`ClusterIndex::candidates_into`].
    pub fn candidates(&self, ebits: &FixedBitSet) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.unpivoted.len() + 16);
        self.candidates_into(ebits.words(), &mut out);
        out
    }

    /// How many clusters [`ClusterIndex::candidates_into`] would gather,
    /// without materializing them: posting-list lengths are summed directly
    /// off the pivot sweep.
    pub fn candidate_count(&self, ewords: &[u64]) -> usize {
        let mut count = self.unpivoted.len();
        let n = ewords.len().min(self.pivot_mask.words().len());
        for (w, (&ew, &mw)) in ewords[..n]
            .iter()
            .zip(self.pivot_mask.words()[..n].iter())
            .enumerate()
        {
            let mut word = ew & mw;
            while word != 0 {
                let bit = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                count += self.by_pivot[bit].len();
            }
        }
        count
    }

    /// Probes candidate cluster `idx` against the raw event row, returning
    /// the counter deltas for the caller's thread-local accumulator.
    #[inline]
    pub fn probe_words(&self, idx: u32, ewords: &[u64], out: &mut Vec<SubId>) -> Probe {
        self.clusters[idx as usize].match_words(ewords, out)
    }

    /// Probes candidate cluster `idx` against `ebits`, counting directly on
    /// the cluster's atomics (the unbatched convenience path).
    #[inline]
    pub fn probe(&self, idx: u32, ebits: &FixedBitSet, out: &mut Vec<SubId>) {
        self.clusters[idx as usize].match_into(ebits, out);
    }

    /// Sequential full match of one encoded event (candidates + probes).
    pub fn match_into(&self, ebits: &FixedBitSet, out: &mut Vec<SubId>) {
        for idx in self.candidates(ebits) {
            self.probe(idx, ebits, out);
        }
    }

    /// Clusters the pivot index skipped for this event — used by the stats
    /// tables to report access-pruning effectiveness. Counts without
    /// gathering the candidate list.
    pub fn skipped(&self, ebits: &FixedBitSet) -> usize {
        self.clusters.len() - self.candidate_count(ebits.words())
    }
}

impl Cluster {
    /// The cluster's shared bits — each is a sound access key (every member
    /// requires every shared bit). `None` for direct clusters.
    pub fn shared_bits(&self) -> Option<&[u32]> {
        match &self.repr {
            crate::ClusterRepr::Compressed { shared, .. } => Some(shared.ids()),
            crate::ClusterRepr::Direct { .. } => None,
        }
    }

    /// The cluster's default pivot: the first shared bit. The
    /// [`ClusterIndex`] refines this choice with selectivity information.
    pub fn pivot(&self) -> Option<u32> {
        self.shared_bits().and_then(|bits| bits.first().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_encoding::EncodedSub;

    fn enc(id: u32, bits: &[u32]) -> EncodedSub {
        crate::cluster::enc_for_test(id, bits, &[])
    }

    fn ev(width: usize, bits: &[usize]) -> FixedBitSet {
        FixedBitSet::from_indices(width, bits.iter().copied())
    }

    fn build_index() -> ClusterIndex {
        let clusters = vec![
            Cluster::compressed(&[enc(0, &[2, 5]), enc(1, &[2, 7])]), // pivot 2
            Cluster::compressed(&[enc(2, &[3, 9])]),                  // pivot 3
            Cluster::direct(&[enc(3, &[1]), enc(4, &[4])]),           // no pivot
        ];
        ClusterIndex::build(clusters, 16, &[])
    }

    #[test]
    fn pivot_extraction() {
        let c = Cluster::compressed(&[enc(0, &[4, 9]), enc(1, &[4, 5])]);
        assert_eq!(c.pivot(), Some(4));
        let d = Cluster::direct(&[enc(0, &[1]), enc(1, &[2])]);
        assert_eq!(d.pivot(), None);
    }

    #[test]
    fn candidates_respect_pivots() {
        // With an empty selectivity table, ties break to the HIGHEST shared
        // bit: cluster 0 (shared {2}) keys on 2, cluster 1 (shared {3, 9})
        // keys on 9.
        let index = build_index();
        // Event with bit 2 → cluster 0 + unpivoted cluster 2.
        let mut c = index.candidates(&ev(16, &[2]));
        c.sort_unstable();
        assert_eq!(c, vec![0, 2]);
        // Event with bits 2 and 9 → all three.
        let mut c = index.candidates(&ev(16, &[2, 9]));
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2]);
        // Event with no key bits → only the unpivoted cluster.
        assert_eq!(index.candidates(&ev(16, &[1, 4])), vec![2]);
        assert_eq!(index.skipped(&ev(16, &[1, 4])), 2);
    }

    #[test]
    fn candidate_count_matches_gather() {
        let index = build_index();
        for bits in [vec![], vec![2usize], vec![2, 9], vec![1, 4], vec![3, 9]] {
            let e = ev(16, &bits);
            assert_eq!(
                index.candidate_count(e.words()),
                index.candidates(&e).len(),
                "bits {bits:?}"
            );
        }
    }

    #[test]
    fn selectivity_table_steers_keys() {
        // Cluster shared {3, 9}: with bit 3 far more selective than 9, the
        // index must key on 3.
        let clusters = vec![Cluster::compressed(&[enc(0, &[3, 9])])];
        let mut table = vec![1.0f64; 16];
        table[3] = 0.001;
        table[9] = 0.9;
        let index = ClusterIndex::build(clusters, 16, &table);
        assert_eq!(index.candidates(&ev(16, &[3])), vec![0]);
        assert!(index.candidates(&ev(16, &[9])).is_empty());
    }

    #[test]
    fn match_equals_exhaustive_probing() {
        let index = build_index();
        for bits in [
            vec![],
            vec![1usize],
            vec![2, 5],
            vec![2, 7],
            vec![3, 9],
            vec![1, 2, 3, 4, 5, 7, 9],
        ] {
            let e = ev(16, &bits);
            let mut via_index = Vec::new();
            index.match_into(&e, &mut via_index);
            via_index.sort_unstable();
            let mut exhaustive = Vec::new();
            for c in index.clusters() {
                c.match_into(&e, &mut exhaustive);
            }
            exhaustive.sort_unstable();
            assert_eq!(via_index, exhaustive, "bits {bits:?}");
        }
    }

    #[test]
    fn empty_index() {
        let index = ClusterIndex::build(Vec::new(), 8, &[]);
        assert!(index.is_empty());
        assert!(index.candidates(&ev(8, &[1])).is_empty());
    }

    #[test]
    fn pivot_beyond_width_goes_unpivoted() {
        // A cluster whose pivot lies beyond the declared width must still be
        // probed (never silently dropped).
        let clusters = vec![Cluster::compressed(&[enc(0, &[40])])];
        let index = ClusterIndex::build(clusters, 8, &[]);
        let mut out = Vec::new();
        index.match_into(&ev(64, &[40]), &mut out);
        assert_eq!(out, vec![SubId(0)]);
    }
}
