//! Thread-local match scratch: zero-alloc steady state for the hot path.
//!
//! Matching an event needs a handful of working buffers — the encoded event
//! bitmap, the candidate cluster list, the result row, the per-window
//! `(cluster, event)` probe schedule, and the probe-counter deltas. Instead
//! of allocating them per event, every worker thread keeps one
//! [`MatchScratch`] (and one [`EncTable`] for window encoding) in
//! thread-local storage and reuses it across events: after warm-up the
//! steady-state match path performs no heap allocation beyond the caller's
//! result vectors.
//!
//! Access is strictly take/put ([`with_scratch`] moves the scratch out of
//! the slot for the duration of the closure): if a nested call ever occurs
//! (e.g. a "parallel" executor shim that runs closures on the calling
//! thread), the inner scope simply sees a fresh empty scratch instead of
//! panicking on a re-borrow.

use crate::cluster::{Cluster, Probe};
use crate::counters::CounterCell;
use apcm_bexpr::SubId;
use apcm_encoding::FixedBitSet;
use std::cell::Cell;

/// Per-cluster counter deltas accumulated by one worker over one window.
///
/// Kernel probes bump plain (non-atomic) `u32`s here; [`ProbeCounts::flush`]
/// folds every touched cluster's delta into the cluster's epoch counters and
/// the worker's [`CounterCell`] with one `fetch_add` per counter — the
/// contention-free half of the counter design.
#[derive(Debug, Default)]
pub struct ProbeCounts {
    /// Cluster indexes with a non-zero delta, in first-touch order.
    touched: Vec<u32>,
    /// Dense per-cluster deltas; `probes == 0` marks an untouched slot.
    probes: Vec<u32>,
    prunes: Vec<u32>,
    hits: Vec<u32>,
}

impl ProbeCounts {
    /// Grows the dense delta arrays to cover `clusters` slots.
    pub fn ensure(&mut self, clusters: usize) {
        if self.probes.len() < clusters {
            self.probes.resize(clusters, 0);
            self.prunes.resize(clusters, 0);
            self.hits.resize(clusters, 0);
        }
    }

    /// Accumulates one probe outcome for cluster `idx`.
    #[inline]
    pub fn count(&mut self, idx: u32, probe: Probe) {
        let i = idx as usize;
        if self.probes[i] == 0 {
            self.touched.push(idx);
        }
        self.probes[i] += 1;
        self.prunes[i] += u32::from(probe.pruned);
        self.hits[i] += probe.hits;
    }

    /// Flushes every touched cluster's delta into the cluster epoch
    /// counters, and the window totals into `cell` (when the matcher shards
    /// its lifetime stats). Leaves the scratch clean for the next window.
    pub fn flush(&mut self, clusters: &[Cluster], cell: Option<&CounterCell>) {
        let mut totals = (0u64, 0u64, 0u64);
        for &idx in &self.touched {
            let i = idx as usize;
            let (p, r, h) = (
                u64::from(self.probes[i]),
                u64::from(self.prunes[i]),
                u64::from(self.hits[i]),
            );
            self.probes[i] = 0;
            self.prunes[i] = 0;
            self.hits[i] = 0;
            clusters[i].add_counts(p, r, h);
            totals.0 += p;
            totals.1 += r;
            totals.2 += h;
        }
        self.touched.clear();
        if let Some(cell) = cell {
            cell.add(totals.0, totals.1, totals.2);
        }
    }
}

/// Reusable per-thread buffers for the match kernel.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Encoded-event bitmap for single-event paths.
    pub ebits: FixedBitSet,
    /// Candidate cluster indexes from the pivot sweep.
    pub candidates: Vec<u32>,
    /// Result row under construction.
    pub row: Vec<SubId>,
    /// Cluster-major `(cluster, position)` probe schedule for OSR windows.
    pub pairs: Vec<(u32, u32)>,
    /// Per-cluster counter deltas.
    pub counts: ProbeCounts,
}

impl MatchScratch {
    /// Ensures `ebits` spans at least `width` bits (predicate spaces grow
    /// under subscription churn).
    pub fn ensure_width(&mut self, width: usize) {
        if self.ebits.nbits() < width {
            self.ebits = FixedBitSet::new(width);
        }
    }
}

/// One window's encoded events as a flat word table: row `i` holds event
/// `i`'s bitmap in `stride` words. One buffer per window instead of one
/// `FixedBitSet` per event.
#[derive(Debug, Default)]
pub struct EncTable {
    words: Vec<u64>,
    stride: usize,
    rows: usize,
}

impl EncTable {
    /// Resizes (and zeroes) the table for `rows` events of `width` bits.
    pub fn reset(&mut self, rows: usize, width: usize) {
        self.stride = width.div_ceil(64).max(1);
        self.rows = rows;
        self.words.clear();
        self.words.resize(rows * self.stride, 0);
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of event rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Event `i`'s encoded word row.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// The whole table, for parallel row-chunked filling.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

thread_local! {
    static SCRATCH: Cell<MatchScratch> = Cell::new(MatchScratch::default());
    static TABLE: Cell<EncTable> = Cell::new(EncTable::default());
}

/// Runs `f` with the calling thread's [`MatchScratch`]. The scratch is moved
/// out of the thread-local slot for the duration of `f`, so a nested call
/// gets a fresh (empty) scratch rather than a re-borrow panic.
pub fn with_scratch<R>(f: impl FnOnce(&mut MatchScratch) -> R) -> R {
    SCRATCH.with(|slot| {
        let mut scratch = slot.take();
        let result = f(&mut scratch);
        slot.set(scratch);
        result
    })
}

/// Takes the calling thread's [`EncTable`] out of its slot. Pair with
/// [`put_table`]; take/put (rather than a closure borrow) lets the table
/// live across pool fan-out calls whose workers use their own scratch.
pub fn take_table() -> EncTable {
    TABLE.with(|slot| slot.take())
}

/// Returns a table taken with [`take_table`], preserving its capacity for
/// the next window.
pub fn put_table(table: EncTable) {
    TABLE.with(|slot| slot.set(table));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::enc_for_test;

    #[test]
    fn probe_counts_flush_exactly_once() {
        let clusters = vec![
            Cluster::compressed(&[enc_for_test(0, &[1], &[])]),
            Cluster::compressed(&[enc_for_test(1, &[2], &[])]),
        ];
        let mut counts = ProbeCounts::default();
        counts.ensure(clusters.len());
        counts.count(
            0,
            Probe {
                pruned: false,
                hits: 1,
            },
        );
        counts.count(
            0,
            Probe {
                pruned: true,
                hits: 0,
            },
        );
        counts.count(
            1,
            Probe {
                pruned: false,
                hits: 3,
            },
        );
        counts.flush(&clusters, None);

        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(clusters[0].probes.load(Relaxed), 2);
        assert_eq!(clusters[0].prunes.load(Relaxed), 1);
        assert_eq!(clusters[0].hits.load(Relaxed), 1);
        assert_eq!(clusters[1].probes.load(Relaxed), 1);
        assert_eq!(clusters[1].hits.load(Relaxed), 3);

        // A second flush with no new counts is a no-op.
        counts.flush(&clusters, None);
        assert_eq!(clusters[0].probes.load(Relaxed), 2);
    }

    #[test]
    fn nested_with_scratch_gets_fresh_buffers() {
        with_scratch(|outer| {
            outer.candidates.push(7);
            with_scratch(|inner| {
                assert!(inner.candidates.is_empty());
                inner.candidates.push(9);
            });
            assert_eq!(outer.candidates, vec![7]);
        });
    }

    #[test]
    fn enc_table_rows_are_disjoint() {
        let mut t = EncTable::default();
        t.reset(3, 130);
        assert_eq!(t.stride(), 3);
        assert_eq!(t.rows(), 3);
        t.words_mut()[3] = 0xdead;
        assert_eq!(t.row(0), &[0, 0, 0]);
        assert_eq!(t.row(1), &[0xdead, 0, 0]);
        // Reset zeroes previous contents.
        t.reset(2, 64);
        assert_eq!(t.row(0), &[0]);
        assert_eq!(t.row(1), &[0]);
    }
}
