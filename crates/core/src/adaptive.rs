//! Adaptive maintenance policy — the "A" in A-PCM.
//!
//! Compression is a bet: the shared-mask test pays when it prunes. Workload
//! drift (different hot attributes, different hot values) can leave a
//! cluster's mask always-contained — every probe then pays the mask test
//! *and* the member sweep. The adaptive controller watches per-cluster
//! counters and, once per epoch:
//!
//! 1. folds newly subscribed expressions from the pending buffer into real
//!    clusters,
//! 2. re-clusters hot clusters whose prune rate fell below threshold
//!    (members are pooled and regrouped; groups that no longer share
//!    predicates fall out as direct clusters automatically),
//! 3. drops clusters emptied by unsubscriptions, and
//! 4. resets the counters for the next epoch.
//!
//! The decision logic lives here; the mutation itself is in
//! [`crate::ApcmMatcher::maintain`], which holds the write lock.

use crate::Cluster;
use std::sync::atomic::Ordering;

/// Controller settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Master switch; disabled means [`crate::ApcmMatcher`] behaves like PCM
    /// plus a pending buffer.
    pub enabled: bool,
    /// Run maintenance after this many matched events.
    pub epoch_events: u64,
    /// Clusters whose *productive* probe fraction (pruned immediately or
    /// yielding matches) falls below this are re-clustered.
    pub min_prune_rate: f64,
    /// Minimum probes before a cluster's prune rate is trusted (avoids
    /// rebuilding on noise).
    pub min_probes: u64,
    /// Fold the pending buffer as soon as it exceeds this size, even
    /// mid-epoch (bounds the per-event pending scan).
    pub max_pending: usize,
    /// An unproductive cluster is re-clustered only when its key fires at
    /// least this factor above the key's design selectivity (with a 2%
    /// absolute floor) — otherwise the key is already as selective as the
    /// members allow and re-clustering cannot improve it.
    pub hot_key_factor: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            epoch_events: 4096,
            min_prune_rate: 0.50,
            min_probes: 64,
            max_pending: 1024,
            hot_key_factor: 8.0,
        }
    }
}

impl AdaptiveConfig {
    /// Adaptivity off (the PCM configurations).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Validates the settings.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_events == 0 {
            return Err("epoch_events must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.min_prune_rate) {
            return Err("min_prune_rate must be in [0, 1]".into());
        }
        if self.max_pending == 0 {
            return Err("max_pending must be positive".into());
        }
        if self.hot_key_factor.is_nan() || self.hot_key_factor < 1.0 {
            return Err("hot_key_factor must be ≥ 1".into());
        }
        Ok(())
    }

    /// Whether `cluster` should be pooled for re-clustering this epoch.
    ///
    /// A probe is *productive* when it is either pruned immediately by the
    /// shared mask (work saved) or yields member matches (work needed). A
    /// hot cluster whose probes are mostly unproductive — its access key
    /// fires, the mask passes, and the members still fail — is paying the
    /// full member sweep for nothing, which is the signature of workload
    /// drift: the key predicate became hot without its subscriptions
    /// becoming relevant. Such clusters are pooled and re-keyed using the
    /// observed firing rates (see `ApcmMatcher::maintain`).
    pub fn should_rebuild(&self, cluster: &Cluster) -> bool {
        if cluster.is_empty() {
            return true;
        }
        let probes = cluster.probes.load(Ordering::Relaxed);
        if probes < self.min_probes {
            return false;
        }
        let prunes = cluster.prunes.load(Ordering::Relaxed);
        let hits = cluster.hits.load(Ordering::Relaxed);
        let productive = prunes + hits.min(probes - prunes);
        (productive as f64 / probes as f64) < self.min_prune_rate
    }
}

/// What a maintenance pass did; returned by [`crate::ApcmMatcher::maintain`]
/// and accumulated into [`crate::MatcherStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Pending expressions folded into clusters.
    pub folded_pending: usize,
    /// Clusters pooled and re-clustered.
    pub rebuilt_clusters: usize,
    /// Empty clusters dropped.
    pub dropped_clusters: usize,
}

impl MaintenanceReport {
    /// Whether the pass changed anything.
    pub fn is_noop(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::SubId;
    use apcm_encoding::{EncodedSub, FixedBitSet};

    fn enc(id: u32, bits: &[u32]) -> EncodedSub {
        crate::cluster::enc_for_test(id, bits, &[])
    }

    #[test]
    fn default_validates() {
        assert_eq!(AdaptiveConfig::default().validate(), Ok(()));
        assert_eq!(AdaptiveConfig::disabled().validate(), Ok(()));
        assert!(!AdaptiveConfig::disabled().enabled);
    }

    #[test]
    fn invalid_settings_rejected() {
        let c = AdaptiveConfig {
            epoch_events: 0,
            ..AdaptiveConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AdaptiveConfig {
            min_prune_rate: 1.5,
            ..AdaptiveConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AdaptiveConfig {
            max_pending: 0,
            ..AdaptiveConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn cold_clusters_not_rebuilt() {
        let config = AdaptiveConfig::default();
        let cluster = Cluster::compressed(&[enc(0, &[1, 2])]);
        // Zero probes: below min_probes, leave it alone.
        assert!(!config.should_rebuild(&cluster));
    }

    #[test]
    fn hot_unproductive_cluster_rebuilt() {
        let config = AdaptiveConfig {
            min_probes: 10,
            min_prune_rate: 0.5,
            ..AdaptiveConfig::default()
        };
        // Two members sharing bit 1; the event has bit 1 but never the
        // residuals, so every probe passes the mask and still matches
        // nothing: pure waste.
        let cluster = Cluster::compressed(&[enc(0, &[1, 2]), enc(1, &[1, 3])]);
        let ebits = FixedBitSet::from_indices(32, [1usize]);
        let mut out = Vec::new();
        for _ in 0..20 {
            cluster.match_into(&ebits, &mut out);
        }
        assert!(out.is_empty());
        assert!(config.should_rebuild(&cluster));

        // The same cluster probed with matching events is productive.
        let productive = Cluster::compressed(&[enc(0, &[1, 2]), enc(1, &[1, 3])]);
        let full = FixedBitSet::from_indices(32, [1usize, 2, 3]);
        for _ in 0..20 {
            productive.match_into(&full, &mut out);
        }
        assert!(!config.should_rebuild(&productive));
    }

    #[test]
    fn hot_pruning_cluster_kept() {
        let config = AdaptiveConfig {
            min_probes: 10,
            min_prune_rate: 0.5,
            ..AdaptiveConfig::default()
        };
        let cluster = Cluster::compressed(&[enc(0, &[1, 2])]);
        let miss = FixedBitSet::from_indices(32, [5usize]);
        let mut out = Vec::new();
        for _ in 0..20 {
            cluster.match_into(&miss, &mut out);
        }
        assert!(
            !config.should_rebuild(&cluster),
            "prune rate 1.0 is healthy"
        );
    }

    #[test]
    fn empty_clusters_always_rebuilt() {
        let config = AdaptiveConfig::default();
        let mut emptied = Cluster::compressed(&[enc(0, &[1])]);
        emptied.remove(SubId(0));
        assert!(config.should_rebuild(&emptied));
    }

    #[test]
    fn unproductive_direct_cluster_rebuilt() {
        let config = AdaptiveConfig {
            min_probes: 10,
            min_prune_rate: 0.5,
            ..AdaptiveConfig::default()
        };
        let direct = Cluster::direct(&[enc(0, &[1]), enc(1, &[2])]);
        // 20 probes, no prunes (direct cannot prune), no hits → waste.
        let miss = FixedBitSet::from_indices(32, [9usize]);
        let mut out = Vec::new();
        for _ in 0..20 {
            direct.match_into(&miss, &mut out);
        }
        assert!(config.should_rebuild(&direct));
        // A matching direct cluster is productive and kept.
        let hot = Cluster::direct(&[enc(0, &[1])]);
        let hit = FixedBitSet::from_indices(32, [1usize]);
        for _ in 0..20 {
            hot.match_into(&hit, &mut out);
        }
        assert!(!config.should_rebuild(&hot));
    }

    #[test]
    fn report_noop_detection() {
        assert!(MaintenanceReport::default().is_noop());
        let r = MaintenanceReport {
            folded_pending: 1,
            ..Default::default()
        };
        assert!(!r.is_noop());
    }
}
