//! Per-shard dynamic matching engines.
//!
//! A shard needs live `subscribe` / `unsubscribe` / `maintain` on top of
//! window matching. Only `ApcmMatcher` supports churn natively; the other
//! engine kinds are adapted here:
//!
//! * [`ScanEngine`] keeps the shard's live set in a `Vec` behind a lock and
//!   brute-forces every event — the correctness oracle.
//! * [`HybridEngine`] runs the static `HybridPcmTree` over a *base* set plus
//!   a linear overlay of recent subscribes; unsubscribes tombstone the base
//!   and `maintain()` folds overlay + tombstones into a rebuilt tree. This
//!   mirrors the A-PCM pending-buffer design at the index level.

use apcm_betree::HybridPcmTree;
use apcm_bexpr::{BexprError, Event, Matcher, Schema, SubId, Subscription};
use apcm_core::{ApcmConfig, ApcmMatcher, MaintenanceReport};
use parking_lot::RwLock;
use std::collections::HashMap;

use crate::config::{EngineChoice, ServerConfig};

/// Object-safe dynamic engine run by each shard.
pub trait ShardEngine: Send + Sync {
    /// Adds a subscription. `Ok(false)` if the id is already live.
    fn subscribe(&self, sub: &Subscription) -> Result<bool, BexprError>;
    /// Removes a subscription; `false` if the id was unknown.
    fn unsubscribe(&self, id: SubId) -> bool;
    /// Bulk-loads recovered subscriptions (startup restore path). Returns
    /// how many were added; duplicates are skipped. The default loops
    /// `subscribe`; engines with a cheaper batched path override it.
    fn bulk_subscribe(&self, subs: &[Subscription]) -> Result<usize, BexprError> {
        let mut added = 0;
        for sub in subs {
            if self.subscribe(sub)? {
                added += 1;
            }
        }
        Ok(added)
    }
    /// Matches a window of events; row `i` holds the ascending, deduplicated
    /// ids matching `events[i]`.
    fn match_window(&self, events: &[Event]) -> Vec<Vec<SubId>>;
    /// One maintenance pass (fold pending work, rebuild stale structures).
    fn maintain(&self) -> MaintenanceReport;
    /// Lifetime matching-kernel counters `(probes, prunes, hits)`, when the
    /// engine tracks them. Aggregated lazily from per-worker cells, so
    /// reading them never contends with the hot path.
    fn kernel_counters(&self) -> Option<(u64, u64, u64)> {
        None
    }
    /// Live subscription count.
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn name(&self) -> &'static str;
}

/// Builds an empty engine of the configured kind for one shard.
pub fn build_engine(
    schema: &Schema,
    config: &ServerConfig,
) -> Result<Box<dyn ShardEngine>, BexprError> {
    Ok(match config.engine {
        EngineChoice::Apcm => Box::new(ApcmEngine::new(schema, config.shard_engine_config())?),
        EngineChoice::BetreeHybrid => Box::new(HybridEngine::new(schema)),
        EngineChoice::Scan => Box::new(ScanEngine::default()),
    })
}

/// Native A-PCM shard: churn and maintenance are first-class.
pub struct ApcmEngine {
    matcher: ApcmMatcher,
}

impl ApcmEngine {
    pub fn new(schema: &Schema, config: ApcmConfig) -> Result<Self, BexprError> {
        Ok(Self {
            matcher: ApcmMatcher::build(schema, &[], &config)?,
        })
    }
}

impl ShardEngine for ApcmEngine {
    fn subscribe(&self, sub: &Subscription) -> Result<bool, BexprError> {
        self.matcher.subscribe(sub)
    }

    fn unsubscribe(&self, id: SubId) -> bool {
        self.matcher.unsubscribe(id)
    }

    fn match_window(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        self.matcher.match_window(events)
    }

    fn maintain(&self) -> MaintenanceReport {
        self.matcher.maintain()
    }

    fn kernel_counters(&self) -> Option<(u64, u64, u64)> {
        let stats = self.matcher.stats();
        Some((stats.probes, stats.prunes, stats.hits))
    }

    fn len(&self) -> usize {
        self.matcher.stats().subscriptions
    }

    fn name(&self) -> &'static str {
        "apcm"
    }
}

/// Brute-force scan shard: a locked `Vec` of live subscriptions.
#[derive(Default)]
pub struct ScanEngine {
    subs: RwLock<Vec<Subscription>>,
}

impl ShardEngine for ScanEngine {
    fn subscribe(&self, sub: &Subscription) -> Result<bool, BexprError> {
        let mut subs = self.subs.write();
        if subs.iter().any(|s| s.id() == sub.id()) {
            return Ok(false);
        }
        subs.push(sub.clone());
        Ok(true)
    }

    fn unsubscribe(&self, id: SubId) -> bool {
        let mut subs = self.subs.write();
        let before = subs.len();
        subs.retain(|s| s.id() != id);
        subs.len() != before
    }

    /// One write lock for the whole restore batch instead of one per sub.
    fn bulk_subscribe(&self, batch: &[Subscription]) -> Result<usize, BexprError> {
        let mut subs = self.subs.write();
        let before = subs.len();
        for sub in batch {
            if !subs.iter().any(|s| s.id() == sub.id()) {
                subs.push(sub.clone());
            }
        }
        Ok(subs.len() - before)
    }

    fn match_window(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        let subs = self.subs.read();
        events
            .iter()
            .map(|ev| {
                let mut row: Vec<SubId> = subs
                    .iter()
                    .filter(|s| s.matches(ev))
                    .map(|s| s.id())
                    .collect();
                row.sort_unstable();
                row
            })
            .collect()
    }

    fn maintain(&self) -> MaintenanceReport {
        MaintenanceReport::default()
    }

    fn len(&self) -> usize {
        self.subs.read().len()
    }

    fn name(&self) -> &'static str {
        "scan"
    }
}

struct HybridState {
    /// Compressed index over `base`; `None` until the first fold.
    tree: Option<HybridPcmTree>,
    /// Subscriptions the current `tree` was built from.
    base: HashMap<SubId, Subscription>,
    /// Live subscribes since the last fold, matched by linear scan.
    overlay: Vec<Subscription>,
    /// Ids unsubscribed from `base` since the last fold; the stale tree
    /// still reports them, so match results are filtered against this.
    tombstones: Vec<SubId>,
}

/// BE-Tree hybrid shard with overlay churn.
pub struct HybridEngine {
    schema: Schema,
    state: RwLock<HybridState>,
}

impl HybridEngine {
    pub fn new(schema: &Schema) -> Self {
        Self {
            schema: schema.clone(),
            state: RwLock::new(HybridState {
                tree: None,
                base: HashMap::new(),
                overlay: Vec::new(),
                tombstones: Vec::new(),
            }),
        }
    }
}

impl ShardEngine for HybridEngine {
    fn subscribe(&self, sub: &Subscription) -> Result<bool, BexprError> {
        sub.validate(&self.schema)?;
        let mut state = self.state.write();
        if state.base.contains_key(&sub.id()) || state.overlay.iter().any(|s| s.id() == sub.id()) {
            return Ok(false);
        }
        // Re-subscribing a tombstoned id is allowed: the tombstone keeps
        // suppressing the stale tree entry and the overlay copy answers
        // until the next fold rebuilds the tree without the old version.
        state.overlay.push(sub.clone());
        Ok(true)
    }

    fn unsubscribe(&self, id: SubId) -> bool {
        let mut state = self.state.write();
        let before = state.overlay.len();
        state.overlay.retain(|s| s.id() != id);
        if state.overlay.len() != before {
            return true;
        }
        if state.base.remove(&id).is_some() {
            state.tombstones.push(id);
            return true;
        }
        false
    }

    fn match_window(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        let state = self.state.read();
        events
            .iter()
            .map(|ev| {
                let mut row: Vec<SubId> = match &state.tree {
                    Some(tree) => tree
                        .match_event(ev)
                        .into_iter()
                        .filter(|id| !state.tombstones.contains(id))
                        .collect(),
                    None => Vec::new(),
                };
                row.extend(
                    state
                        .overlay
                        .iter()
                        .filter(|s| s.matches(ev))
                        .map(|s| s.id()),
                );
                row.sort_unstable();
                row.dedup();
                row
            })
            .collect()
    }

    fn maintain(&self) -> MaintenanceReport {
        let mut state = self.state.write();
        let folded = state.overlay.len();
        if folded == 0 && state.tombstones.is_empty() {
            return MaintenanceReport::default();
        }
        let overlay = std::mem::take(&mut state.overlay);
        for sub in overlay {
            state.base.insert(sub.id(), sub);
        }
        state.tombstones.clear();
        let subs: Vec<Subscription> = state.base.values().cloned().collect();
        let rebuilt = if subs.is_empty() {
            state.tree = None;
            0
        } else {
            // Validated at subscribe time, so a build failure here would be
            // a logic error; surface it loudly instead of dropping subs.
            state.tree = Some(
                HybridPcmTree::build(&self.schema, &subs)
                    .expect("rebuilding hybrid tree from validated subscriptions"),
            );
            1
        };
        MaintenanceReport {
            folded_pending: folded,
            rebuilt_clusters: rebuilt,
            dropped_clusters: 0,
        }
    }

    fn len(&self) -> usize {
        let state = self.state.read();
        state.base.len() + state.overlay.len()
    }

    fn name(&self) -> &'static str {
        "betree-hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::parser;

    fn schema() -> Schema {
        Schema::uniform(4, 16)
    }

    fn sub(schema: &Schema, id: u32, text: &str) -> Subscription {
        parser::parse_subscription_with_id(schema, SubId(id), text).unwrap()
    }

    fn event(schema: &Schema, text: &str) -> Event {
        parser::parse_event(schema, text).unwrap()
    }

    fn engines(schema: &Schema) -> Vec<Box<dyn ShardEngine>> {
        let mut out: Vec<Box<dyn ShardEngine>> = vec![
            Box::new(ScanEngine::default()),
            Box::new(HybridEngine::new(schema)),
        ];
        out.push(Box::new(
            ApcmEngine::new(schema, ApcmConfig::sequential()).unwrap(),
        ));
        out
    }

    #[test]
    fn churn_and_match_agree_across_engines() {
        let schema = schema();
        for engine in engines(&schema) {
            assert!(engine.subscribe(&sub(&schema, 1, "a0 = 3")).unwrap());
            assert!(engine.subscribe(&sub(&schema, 2, "a1 >= 5")).unwrap());
            // Duplicate id is rejected without error.
            assert!(!engine.subscribe(&sub(&schema, 1, "a2 = 0")).unwrap());
            assert_eq!(engine.len(), 2, "{}", engine.name());

            let window = vec![
                event(&schema, "a0 = 3, a1 = 9"),
                event(&schema, "a0 = 1, a1 = 2"),
            ];
            let rows = engine.match_window(&window);
            assert_eq!(rows[0], vec![SubId(1), SubId(2)], "{}", engine.name());
            assert!(rows[1].is_empty());

            engine.maintain();
            let rows = engine.match_window(&window);
            assert_eq!(rows[0], vec![SubId(1), SubId(2)], "{}", engine.name());

            assert!(engine.unsubscribe(SubId(1)));
            assert!(!engine.unsubscribe(SubId(99)));
            let rows = engine.match_window(&window);
            assert_eq!(rows[0], vec![SubId(2)], "{}", engine.name());
            assert_eq!(engine.len(), 1);
        }
    }

    #[test]
    fn hybrid_resubscribe_after_fold_uses_new_predicates() {
        let schema = schema();
        let engine = HybridEngine::new(&schema);
        assert!(engine.subscribe(&sub(&schema, 7, "a0 = 1")).unwrap());
        engine.maintain(); // id 7 now lives in the tree
        assert!(engine.unsubscribe(SubId(7)));
        assert!(engine.subscribe(&sub(&schema, 7, "a0 = 2")).unwrap());

        let hit_old = event(&schema, "a0 = 1");
        let hit_new = event(&schema, "a0 = 2");
        let rows = engine.match_window(&[hit_old.clone(), hit_new.clone()]);
        assert!(rows[0].is_empty(), "stale tree entry must be suppressed");
        assert_eq!(rows[1], vec![SubId(7)]);

        let report = engine.maintain();
        assert_eq!(report.folded_pending, 1);
        let rows = engine.match_window(&[hit_old, hit_new]);
        assert!(rows[0].is_empty());
        assert_eq!(rows[1], vec![SubId(7)]);
    }
}
