//! Per-connection protocol executor, shared by both broker I/O models.
//!
//! The threaded broker's reader thread and the event-loop broker's
//! `Service::on_line` both funnel every framed line through
//! [`on_conn_line`], so the wire protocol — reply text, counter bumps,
//! ack-before-submit ordering, batch framing — is defined exactly once.
//! `BATCH` payload lines, which the threaded broker used to consume with
//! an inner read loop, are modeled as connection state instead: a
//! [`ConnState`] in batch mode routes the next `count` lines into the
//! accumulator and acks only when the batch completes, which behaves
//! identically whether lines arrive from a blocking reader or an epoll
//! readiness callback.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use apcm_bexpr::Event;
use crossbeam::channel::{Receiver, Sender};

use crate::broker::{sub_fingerprint, Hub, ReplicaRunner, ReshardRunner};
use crate::ingest::IngestItem;
use crate::persist::failpoint::{self, FailAction};
use crate::persist::{ChurnError, Persister};
use crate::protocol::{self, Request, ReshardCmd, RoleReport};
use crate::replication::{FollowerConn, Role, RoleState};
use crate::ring::RingScope;
use crate::shard::ShardedEngine;
use crate::stats::ServerStats;

/// A slow request body executed off the dispatching thread; its returned
/// reply line is queued on the connection when it completes.
pub(crate) type BlockingJob = Box<dyn FnOnce() -> String + Send>;

/// Everything the dispatcher needs to execute requests for a connection.
/// One instance is shared by every connection (threaded mode wraps it in
/// an `Arc` per accept; the event-loop service owns a single copy).
pub(crate) struct ConnCtx {
    pub(crate) hub: Arc<Hub>,
    pub(crate) engine: Arc<ShardedEngine>,
    pub(crate) persist: Option<Arc<Persister>>,
    pub(crate) ingest: Sender<IngestItem>,
    /// Receiver clone used only for `len()` (queue depth in `STATS`).
    pub(crate) ingest_depth: Receiver<IngestItem>,
    pub(crate) epoch: Instant,
    pub(crate) max_line_bytes: usize,
    pub(crate) role: Arc<RoleState>,
    /// Spawns replica puller threads on `DEMOTE`; `None` without
    /// persistence (replica mode requires it).
    pub(crate) runner: Option<Arc<ReplicaRunner>>,
    /// Drives `RESHARD PULL` migration streams; `None` without
    /// persistence (resharding requires a durable catalog).
    pub(crate) reshard: Option<Arc<ReshardRunner>>,
    /// Runs a long-blocking request (`SNAPSHOT`'s compress + write) off
    /// the dispatching thread. `None` executes inline — correct for the
    /// threaded broker, whose reader thread serves only one connection;
    /// a loop worker serves many, so stalling it would head-of-line
    /// block every connection pinned to it.
    pub(crate) offload: Option<Arc<dyn Fn(u64, BlockingJob) + Send + Sync>>,
}

/// One framed inbound line, I/O-model agnostic.
pub(crate) enum LineInput<'a> {
    Text(&'a str),
    /// The line exceeded `max_line_bytes` and was discarded through its
    /// newline by the framer.
    TooLong,
}

/// What the dispatcher wants done with the connection afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    Continue,
    /// Flush queued replies, then close (QUIT, or ingest shut down).
    Close,
}

/// In-flight `BATCH`: the next `count` lines are event payloads.
struct BatchAccum {
    first_seq: u64,
    count: usize,
    /// Payload lines consumed so far (parsed or not — a bad or oversized
    /// line still uses up its slot, exactly like the old inner loop).
    index: usize,
    events: Vec<(u64, Event)>,
}

/// Per-connection protocol state.
#[derive(Default)]
pub(crate) struct ConnState {
    /// Publisher-local sequence minted for PUB/BATCH events.
    next_seq: u64,
    batch: Option<BatchAccum>,
}

/// The migration-era ring ownership filter: with a scope installed (by
/// `RESHARD PRUNE`), churn for an id the scope does not own is refused
/// with `-ERR not owner <id>` — the client retries, re-routing through
/// the router's refreshed view. Returns whether the request was refused.
fn refuse_unowned(ctx: &ConnCtx, id: apcm_bexpr::SubId, reply: &mut dyn FnMut(String)) -> bool {
    let refused = match &*ctx.hub.ownership.read() {
        Some(scope) => !scope.owns(id),
        None => false,
    };
    if refused {
        ServerStats::add(&ctx.hub.stats.not_owner_refusals, 1);
        reply(protocol::render_not_owner(id));
    }
    refused
}

/// Executes one framed line for a connection: parses it (or routes it
/// into an in-flight batch), performs the request, and emits replies via
/// `reply`. `make_follower` materializes this connection's outbound face
/// when a `REPLICATE` handshake turns it into a replication feed.
pub(crate) fn on_conn_line(
    ctx: &ConnCtx,
    conn_id: u64,
    state: &mut ConnState,
    input: LineInput<'_>,
    reply: &mut dyn FnMut(String),
    make_follower: &mut dyn FnMut() -> std::io::Result<Box<dyn FollowerConn>>,
) -> Flow {
    let stats = &ctx.hub.stats;

    // Batch mode: the next `count` lines are event payloads, not requests.
    if state.batch.is_some() {
        let parsed = match input {
            LineInput::TooLong => {
                let batch = state.batch.as_ref().expect("checked above");
                ServerStats::add(&stats.oversized_lines, 1);
                ServerStats::add(&stats.protocol_errors, 1);
                reply(format!("-ERR batch line {}: line too long", batch.index));
                None
            }
            LineInput::Text(line) => {
                match apcm_bexpr::parser::parse_event(&ctx.hub.schema, line.trim()) {
                    Ok(event) => Some(event),
                    Err(e) => {
                        let batch = state.batch.as_ref().expect("checked above");
                        ServerStats::add(&stats.protocol_errors, 1);
                        reply(format!("-ERR batch line {}: bad event: {e}", batch.index));
                        None
                    }
                }
            }
        };
        let batch = state.batch.as_mut().expect("checked above");
        if let Some(event) = parsed {
            let seq = state.next_seq;
            state.next_seq += 1;
            ServerStats::add(&stats.events_in, 1);
            batch.events.push((seq, event));
        }
        batch.index += 1;
        if batch.index >= batch.count {
            let batch = state.batch.take().expect("checked above");
            return finish_batch(ctx, conn_id, batch, reply);
        }
        return Flow::Continue;
    }

    let line = match input {
        LineInput::Text(line) => line,
        LineInput::TooLong => {
            ServerStats::add(&stats.oversized_lines, 1);
            ServerStats::add(&stats.protocol_errors, 1);
            reply(format!(
                "-ERR line too long (max {} bytes)",
                ctx.max_line_bytes
            ));
            return Flow::Continue;
        }
    };
    let request = match protocol::parse_request(&ctx.hub.schema, line) {
        Ok(Some(req)) => req,
        Ok(None) => return Flow::Continue,
        Err(msg) => {
            ServerStats::add(&stats.protocol_errors, 1);
            reply(format!("-ERR {msg}"));
            return Flow::Continue;
        }
    };
    match request {
        Request::Sub { id, sub } => {
            if ctx.role.is_replica() {
                // Read-only: churn flows in over the REPLICATE stream
                // only, so the follower never diverges from its
                // primary. Matching (PUB/BATCH) stays available.
                reply(protocol::READ_ONLY_REPLICA_ERR.to_string());
                return Flow::Continue;
            }
            if refuse_unowned(ctx, id, reply) {
                return Flow::Continue;
            }
            // `Ok(Some(applied))` means the sub is live; a durable broker
            // additionally carries the appended record's log sequence,
            // which the ack reports (`+OK <id> seq <n>`) so a router can
            // anchor its promotion/read floor to a real sequence instead
            // of counting acks.
            let outcome: Result<Option<Option<u64>>, ChurnError> = match &ctx.persist {
                Some(p) => p.apply_sub(&ctx.engine, &sub).map(|s| s.map(Some)),
                None => ctx
                    .engine
                    .subscribe(&sub)
                    .map(|fresh| fresh.then_some(None))
                    .map_err(ChurnError::Engine),
            };
            match outcome {
                Ok(Some(seq)) => {
                    ctx.hub.owners.write().insert(id, conn_id);
                    ctx.hub.live.write().insert(id, sub_fingerprint(&sub));
                    ServerStats::add(&stats.subs_added, 1);
                    reply(protocol::render_churn_ack(id, seq));
                }
                Ok(None) => {
                    // Duplicate id. A byte-identical expression is a
                    // reconnect reclaiming its subscription: transfer
                    // ownership, no engine or durable churn. Anything
                    // else is the structured duplicate error.
                    let identical =
                        ctx.hub.live.read().get(&id).copied() == Some(sub_fingerprint(&sub));
                    if identical {
                        ctx.hub.owners.write().insert(id, conn_id);
                        ServerStats::add(&stats.subs_reclaimed, 1);
                        reply(format!("+OK claimed {}", id.0));
                    } else {
                        ServerStats::add(&stats.protocol_errors, 1);
                        reply(protocol::render_duplicate_error(id));
                    }
                }
                Err(e @ ChurnError::Engine(_)) => {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply(format!("-ERR {e}"));
                }
                Err(e @ ChurnError::Persist(_)) => {
                    // Counted as persist_errors by the persister, not
                    // as a protocol error — the request was valid.
                    reply(format!("-ERR {e}"));
                }
            }
        }
        Request::Unsub { id } => {
            if ctx.role.is_replica() {
                reply(protocol::READ_ONLY_REPLICA_ERR.to_string());
                return Flow::Continue;
            }
            if refuse_unowned(ctx, id, reply) {
                return Flow::Continue;
            }
            let outcome: Result<Option<Option<u64>>, ChurnError> = match &ctx.persist {
                Some(p) => p.apply_unsub(&ctx.engine, id).map(|s| s.map(Some)),
                None => Ok(ctx.engine.unsubscribe(id).then_some(None)),
            };
            match outcome {
                Ok(Some(seq)) => {
                    ctx.hub.owners.write().remove(&id);
                    ctx.hub.live.write().remove(&id);
                    ServerStats::add(&stats.subs_removed, 1);
                    reply(protocol::render_churn_ack(id, seq));
                }
                Ok(None) => {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply(format!("-ERR unknown subscription {}", id.0));
                }
                Err(e) => reply(format!("-ERR {e}")),
            }
        }
        Request::Claim { id } => {
            // Ownership transfer for a live id: the reclaim path after
            // a broker restart (recovered subscriptions have no owning
            // connection until someone claims them).
            if refuse_unowned(ctx, id, reply) {
                return Flow::Continue;
            }
            if ctx.hub.live.read().contains_key(&id) {
                ctx.hub.owners.write().insert(id, conn_id);
                ServerStats::add(&stats.subs_reclaimed, 1);
                reply(format!("+OK claimed {}", id.0));
            } else {
                ServerStats::add(&stats.protocol_errors, 1);
                reply(format!("-ERR unknown subscription {}", id.0));
            }
        }
        Request::Pub { event } => {
            let seq = state.next_seq;
            state.next_seq += 1;
            ServerStats::add(&stats.events_in, 1);
            // Ack first — the event's RESULT must never precede it.
            reply(format!("+OK {seq}"));
            if ctx
                .ingest
                .send(IngestItem {
                    conn: conn_id,
                    seq,
                    event,
                })
                .is_err()
            {
                reply("-ERR server shutting down".into());
                return Flow::Close;
            }
        }
        Request::Batch { count } => {
            let batch = BatchAccum {
                first_seq: state.next_seq,
                count,
                index: 0,
                events: Vec::with_capacity(count),
            };
            if count == 0 {
                return finish_batch(ctx, conn_id, batch, reply);
            }
            state.batch = Some(batch);
        }
        Request::Stats => {
            let body = stats.render(
                &ctx.engine.per_shard_len(),
                ctx.ingest_depth.len(),
                ctx.engine.kernel_counters(),
                (
                    ctx.engine.summary_epoch(),
                    ctx.engine.summary_bits_set() as u64,
                    ctx.engine.summary_rebuilds(),
                ),
                ctx.hub.netio_gauges(),
            );
            // One queued string so async RESULT/EVENT lines cannot
            // interleave inside the multi-line response.
            reply(format!("+OK stats\n{body}."));
        }
        Request::Snapshot => match &ctx.persist {
            Some(p) => {
                let persist = p.clone();
                let job = move || match persist.snapshot() {
                    Ok(outcome) => format!(
                        "+OK snapshot subs {} seq {} bytes {}",
                        outcome.subs, outcome.seq, outcome.bytes
                    ),
                    Err(e) => format!("-ERR snapshot failed: {e}"),
                };
                match &ctx.offload {
                    Some(offload) => offload(conn_id, Box::new(job)),
                    None => reply(job()),
                }
            }
            None => {
                ServerStats::add(&stats.protocol_errors, 1);
                reply("-ERR persistence disabled".into());
            }
        },
        Request::Topology => {
            // A standalone server is its own (only) partition; the
            // multi-line backend report is the cluster router's.
            reply("+OK topology standalone".into());
        }
        Request::Summary { epoch } => {
            // Coarse predicate-space summary fetch (router pruning).
            // `unchanged` elides the bitset when the caller is current.
            match ctx.engine.summary_if_newer(epoch) {
                None => reply(protocol::render_summary_unchanged(epoch)),
                Some((epoch, bits)) => reply(protocol::render_summary_reply(epoch, &bits)),
            }
        }
        Request::Replicate {
            from_seq,
            v2,
            ring,
            reset,
        } => match &ctx.persist {
            Some(p) => {
                let scope = match ring
                    .map(|spec| RingScope::parse(&spec.members_csv, &spec.keep_csv))
                    .transpose()
                {
                    Ok(scope) => scope,
                    Err(e) => {
                        ServerStats::add(&stats.protocol_errors, 1);
                        reply(format!("-ERR bad replicate ring: {e}"));
                        return Flow::Continue;
                    }
                };
                let registered = make_follower().and_then(|conn| {
                    p.begin_stream(conn_id, from_seq, v2, reset, scope.as_ref(), conn)
                });
                match registered {
                    // The handshake header + backlog chunk is already
                    // queued; the live tail flows via broadcast. This
                    // connection now doubles as a feed — REPLACKs keep
                    // arriving through this loop.
                    Ok(_start) => {
                        ServerStats::add(&stats.replies_sent, 1);
                    }
                    Err(e) => reply(format!("-ERR replicate failed: {e}")),
                }
            }
            None => {
                ServerStats::add(&stats.protocol_errors, 1);
                reply("-ERR persistence disabled".into());
            }
        },
        Request::ReplAck { seq } => {
            // The `repl.ack.delay` failpoint drives quorum-timeout and
            // slow-follower paths: `Stall(ms)` delays the ack before it
            // lands (visible as follower lag on the primary), anything
            // else drops it outright — the follower's next ack or
            // keepalive recovers the cursor.
            match failpoint::fire("repl.ack.delay") {
                Some(FailAction::Stall(ms)) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                Some(_) => return Flow::Continue,
                None => {}
            }
            if let Some(p) = &ctx.persist {
                p.follower_ack(conn_id, seq);
            }
        }
        Request::Role => {
            let seq = ctx.persist.as_ref().map(|p| p.current_seq()).unwrap_or(0);
            let report = match ctx.role.role() {
                Role::Primary => RoleReport {
                    primary: true,
                    seq,
                    lag: ServerStats::get(&stats.repl_lag_records),
                    connected: ServerStats::get(&stats.repl_followers),
                    following: None,
                    // Chain-durable floor: the slowest connected
                    // follower's acked sequence (own seq with none).
                    acked: ctx
                        .persist
                        .as_ref()
                        .map(|p| p.followers_min_acked())
                        .unwrap_or(seq),
                },
                Role::Replica { primary } => RoleReport {
                    primary: false,
                    seq,
                    lag: 0,
                    connected: ServerStats::get(&stats.repl_connected),
                    following: Some(primary),
                    acked: seq,
                },
            };
            reply(protocol::render_role_report(&report));
        }
        Request::Promote => {
            if ctx.role.promote() {
                ServerStats::add(&stats.promotions, 1);
                stats.role_replica.store(0, Ordering::Relaxed);
                stats.repl_connected.store(0, Ordering::Relaxed);
            }
            let seq = ctx.persist.as_ref().map(|p| p.current_seq()).unwrap_or(0);
            reply(format!("+OK promoted seq {seq}"));
        }
        Request::Reshard(cmd) => match cmd {
            ReshardCmd::Add { .. } | ReshardCmd::Remove { .. } => {
                ServerStats::add(&stats.protocol_errors, 1);
                reply("-ERR RESHARD ADD/REMOVE target the cluster router, not a backend".into());
            }
            ReshardCmd::Status => match &ctx.reshard {
                Some(runner) => reply(runner.status_line()),
                None => reply("+OK reshard idle".into()),
            },
            ReshardCmd::Pull {
                source,
                scope,
                donor,
            } => {
                if ctx.role.is_replica() {
                    reply(protocol::READ_ONLY_REPLICA_ERR.to_string());
                    return Flow::Continue;
                }
                let Some(runner) = &ctx.reshard else {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply("-ERR persistence required for resharding".into());
                    return Flow::Continue;
                };
                let parsed =
                    RingScope::parse(&scope.members_csv, &scope.keep_csv).and_then(|scope| {
                        donor
                            .map(|d| RingScope::parse(&d.members_csv, &d.keep_csv))
                            .transpose()
                            .map(|donor| (scope, donor))
                    });
                match parsed {
                    Ok((scope, donor)) => {
                        let ack = format!("+OK reshard pulling {source}");
                        runner.start_pull(source, scope, donor);
                        reply(ack);
                    }
                    Err(e) => {
                        ServerStats::add(&stats.protocol_errors, 1);
                        reply(format!("-ERR bad reshard scope: {e}"));
                    }
                }
            }
            ReshardCmd::Cutoff => match &ctx.reshard {
                Some(runner) => {
                    runner.stop();
                    reply(format!(
                        "+OK reshard cutoff applied {}",
                        runner.cursor.load(Ordering::SeqCst)
                    ));
                }
                None => {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply("-ERR persistence required for resharding".into());
                }
            },
            ReshardCmd::Prune { scope } => {
                if ctx.role.is_replica() {
                    reply(protocol::READ_ONLY_REPLICA_ERR.to_string());
                    return Flow::Continue;
                }
                let Some(p) = &ctx.persist else {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply("-ERR persistence required for resharding".into());
                    return Flow::Continue;
                };
                match RingScope::parse(&scope.members_csv, &scope.keep_csv) {
                    Ok(parsed) => {
                        // Install the refusal filter *before* pruning:
                        // stale-routed churn for moved ids must start
                        // bouncing the moment the flip is decided, even
                        // while the unsub sweep is still running.
                        *ctx.hub.ownership.write() = Some(parsed.clone());
                        let mut pruned = 0u64;
                        let mut degraded = None;
                        for id in p.catalog_ids() {
                            if parsed.owns(id) {
                                continue;
                            }
                            match p.apply_unsub(&ctx.engine, id) {
                                Ok(Some(_)) => {
                                    ctx.hub.live.write().remove(&id);
                                    ctx.hub.owners.write().remove(&id);
                                    pruned += 1;
                                }
                                Ok(None) => {}
                                Err(e) => {
                                    degraded = Some(e);
                                    break;
                                }
                            }
                        }
                        ServerStats::add(&stats.reshard_pruned, pruned);
                        match degraded {
                            // The controller re-issues PRUNE with the
                            // same scope until it succeeds end-to-end.
                            Some(e) => reply(format!("-ERR reshard prune incomplete: {e}")),
                            None => reply(format!("+OK reshard pruned {pruned}")),
                        }
                    }
                    Err(e) => {
                        ServerStats::add(&stats.protocol_errors, 1);
                        reply(format!("-ERR bad reshard scope: {e}"));
                    }
                }
            }
        },
        Request::Demote { addr } => match &ctx.runner {
            Some(runner) => {
                let generation = ctx.role.demote(addr.clone());
                ServerStats::add(&stats.demotions, 1);
                stats.role_replica.store(1, Ordering::Relaxed);
                // A replica must not keep absorbing a migration pull:
                // its catalog now mirrors its primary's, nothing else.
                if let Some(reshard) = &ctx.reshard {
                    reshard.stop();
                }
                runner.clone().spawn(generation);
                reply(format!("+OK demoted following {addr}"));
            }
            None => {
                ServerStats::add(&stats.protocol_errors, 1);
                reply("-ERR persistence required for replica mode".into());
            }
        },
        Request::Ping => reply("+PONG".into()),
        Request::Quit => {
            reply("+OK bye".into());
            return Flow::Close;
        }
    }
    Flow::Continue
}

/// Acks a completed batch and submits its events. The ack precedes the
/// submits: the ingest pipeline can flush a full window (and push its
/// RESULT lines) immediately, and the wire contract promises the ack
/// comes first.
fn finish_batch(
    ctx: &ConnCtx,
    conn_id: u64,
    batch: BatchAccum,
    reply: &mut dyn FnMut(String),
) -> Flow {
    reply(format!(
        "+OK batch {} {}",
        batch.first_seq,
        batch.events.len()
    ));
    for (seq, event) in batch.events {
        if ctx
            .ingest
            .send(IngestItem {
                conn: conn_id,
                seq,
                event,
            })
            .is_err()
        {
            reply("-ERR server shutting down".into());
            return Flow::Close;
        }
    }
    Flow::Continue
}
