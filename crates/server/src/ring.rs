//! Consistent-hash virtual-node ring: the cluster tier's id → member
//! placement function for elastic resharding.
//!
//! The in-process [`crate::shard::route_partition`] Fibonacci hash stays
//! the contract for shards *inside* one server, but at the cluster layer a
//! flat modulus would reshuffle nearly every subscription id whenever the
//! backend count changes. The ring fixes that: each member contributes
//! [`VNODES_PER_MEMBER`] pseudo-random points on a u64 circle, an id is
//! owned by the member whose point is the first at or after the id's hash
//! (wrapping), and adding one member therefore moves only the ids that
//! land on the newcomer's arcs — ~1/N of the space — **and every moved id
//! moves to the newcomer** (arcs are only ever split, never swapped
//! between incumbents).
//!
//! Like `route_partition`, this layout is a **wire contract**: the router,
//! the migration controller, and every backend's replication bootstrap
//! filter must agree on placement for the same member set, and a deployed
//! cluster's data placement depends on it. Any change to the point hash,
//! vnode count, or tie-break is a protocol break — see the golden pin
//! tests below and in `apcm-cluster`.

use apcm_bexpr::SubId;

/// Virtual nodes contributed by each member. More vnodes smooth the load
/// split (share stddev ~ share/sqrt(vnodes)) at the cost of a larger
/// sorted point table; 64 keeps a 16-member ring at 1024 points — one
/// binary search over 16 KiB, still cache-resident.
pub const VNODES_PER_MEMBER: u32 = 64;

/// SplitMix64 finalizer: the point/id mixing function of the ring.
/// Changing this constant set reshards every deployed cluster.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain tag separating vnode-point seeds from id-hash seeds: without
/// it, `splitmix64(id)` for id < [`VNODES_PER_MEMBER`] collides *exactly*
/// with member 0's point seeds `(0 << 32) | v`, pinning every small id to
/// member 0. Part of the frozen layout.
const POINT_DOMAIN: u64 = 0x5851_F42D_4C95_7F2D;

/// The circle position of member `m`'s `v`-th virtual node.
fn vnode_point(m: u32, v: u32) -> u64 {
    splitmix64(POINT_DOMAIN ^ ((u64::from(m) << 32) | u64::from(v)))
}

/// A consistent-hash ring over a set of member (partition) indices.
///
/// Members are small stable integers — the cluster's partition indices —
/// not addresses: the router maps member index → backend pair separately,
/// so a failover (same index, new address) never moves data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Sorted, deduplicated member set.
    members: Vec<u32>,
    /// `(point, member)` sorted by point; ties broken by member id so the
    /// layout is a pure function of the member set.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Builds the ring for `members` (order-insensitive, duplicates
    /// ignored). Panics on an empty set — an empty ring routes nothing.
    pub fn new(members: &[u32]) -> Self {
        assert!(!members.is_empty(), "ring needs at least one member");
        let mut members = members.to_vec();
        members.sort_unstable();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * VNODES_PER_MEMBER as usize);
        for &m in &members {
            for v in 0..VNODES_PER_MEMBER {
                points.push((vnode_point(m, v), m));
            }
        }
        points.sort_unstable();
        Self { members, points }
    }

    /// The sorted member set.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    pub fn contains(&self, member: u32) -> bool {
        self.members.binary_search(&member).is_ok()
    }

    /// The owning member for a subscription id: hash the id onto the
    /// circle, take the first point at or after it (wrapping).
    pub fn route(&self, id: SubId) -> u32 {
        let h = splitmix64(u64::from(id.0));
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }

    /// Canonical comma-separated member list — the wire form used by
    /// `RESHARD`/`REPLICATE` verbs (e.g. `0,1,2`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&m.to_string());
        }
        out
    }

    /// Parses the wire form; rejects empty lists and junk tokens.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let members = parse_member_csv(csv)?;
        Ok(Self::new(&members))
    }
}

/// Parses a `0,1,2`-style member list (non-empty, u32 tokens).
pub fn parse_member_csv(csv: &str) -> Result<Vec<u32>, String> {
    let mut members = Vec::new();
    for tok in csv.split(',') {
        match tok.trim().parse::<u32>() {
            Ok(m) => members.push(m),
            Err(_) => return Err(format!("bad member id `{tok}` in `{csv}`")),
        }
    }
    if members.is_empty() {
        return Err(format!("empty member list `{csv}`"));
    }
    Ok(members)
}

/// An ownership filter: "of the ids placed by `ring`, this node keeps the
/// ones routed to a member in `keep`".
///
/// Two users: a replication bootstrap scoped to the subset of the catalog
/// a joining member will own (`keep` = the joiner), and a donor's
/// post-flip refusal filter (`keep` = the members it still owns — during
/// a scale-in drain this shrinks leg by leg until empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingScope {
    ring: Ring,
    /// Sorted, deduplicated kept-member set. May be empty: an empty keep
    /// set owns nothing (a fully drained node).
    keep: Vec<u32>,
}

impl RingScope {
    pub fn new(ring: Ring, keep: &[u32]) -> Self {
        let mut keep = keep.to_vec();
        keep.sort_unstable();
        keep.dedup();
        Self { ring, keep }
    }

    /// Parses the wire form: a member csv and a keep csv. `keep` may be
    /// the literal `-` for the empty set.
    pub fn parse(members_csv: &str, keep_csv: &str) -> Result<Self, String> {
        let ring = Ring::from_csv(members_csv)?;
        let keep = if keep_csv == "-" {
            Vec::new()
        } else {
            parse_member_csv(keep_csv)?
        };
        for &k in &keep {
            if !ring.contains(k) {
                return Err(format!("keep member {k} not in ring `{members_csv}`"));
            }
        }
        Ok(Self::new(ring, &keep))
    }

    /// Whether this scope owns `id` under the ring placement.
    pub fn owns(&self, id: SubId) -> bool {
        self.keep.binary_search(&self.ring.route(id)).is_ok()
    }

    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    pub fn keep(&self) -> &[u32] {
        &self.keep
    }

    /// Wire form of the keep set (`-` when empty).
    pub fn keep_csv(&self) -> String {
        if self.keep.is_empty() {
            return "-".into();
        }
        let mut out = String::new();
        for (i, m) in self.keep.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&m.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Golden pin: ring placement is a wire contract. These values were
    /// computed once from the frozen splitmix64 layout; if this test
    /// fails, the ring hash changed and every deployed cluster's data
    /// placement (and any in-flight migration) breaks. Do not update the
    /// constants without a migration story.
    #[test]
    fn ring_placement_golden_values() {
        let two = Ring::new(&[0, 1]);
        let got2: Vec<u32> = (0..16).map(|i| two.route(SubId(i))).collect();
        assert_eq!(got2, GOLDEN_TWO, "2-member ring layout drifted");

        let three = Ring::new(&[0, 1, 2]);
        let got3: Vec<u32> = (0..16).map(|i| three.route(SubId(i))).collect();
        assert_eq!(got3, GOLDEN_THREE, "3-member ring layout drifted");

        // Sparse ids exercise the full u32 id width.
        let wide: Vec<u32> = [1u32 << 20, 1 << 28, 1 << 31, u32::MAX]
            .iter()
            .map(|&i| three.route(SubId(i)))
            .collect();
        assert_eq!(wide, GOLDEN_WIDE, "wide-id ring layout drifted");
    }

    const GOLDEN_TWO: [u32; 16] = [1, 0, 0, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 1, 0, 0];
    const GOLDEN_THREE: [u32; 16] = [2, 0, 2, 1, 1, 0, 2, 0, 2, 1, 2, 0, 0, 1, 2, 0];
    const GOLDEN_WIDE: [u32; 4] = [0, 0, 2, 2];

    #[test]
    fn ring_is_order_insensitive_and_dedups() {
        assert_eq!(Ring::new(&[2, 0, 1, 1]), Ring::new(&[0, 1, 2]));
    }

    #[test]
    fn csv_round_trips() {
        let ring = Ring::new(&[0, 2, 5]);
        assert_eq!(ring.to_csv(), "0,2,5");
        assert_eq!(Ring::from_csv("0,2,5").unwrap(), ring);
        assert!(Ring::from_csv("").is_err());
        assert!(Ring::from_csv("0,x").is_err());
    }

    #[test]
    fn scope_owns_exactly_the_kept_members_arcs() {
        let ring = Ring::new(&[0, 1, 2]);
        let scope = RingScope::new(ring.clone(), &[1]);
        for i in 0..500u32 {
            let id = SubId(i);
            assert_eq!(scope.owns(id), ring.route(id) == 1, "id {i}");
        }
        let none = RingScope::parse("0,1,2", "-").unwrap();
        assert!((0..100).all(|i| !none.owns(SubId(i))));
        assert!(RingScope::parse("0,1", "2").is_err());
    }

    proptest! {
        /// The resharding contract: adding one member to an n-member ring
        /// moves at most 2/(n+1) of ids, and every moved id moves TO the
        /// new member (incumbents never trade arcs with each other).
        #[test]
        fn adding_a_member_moves_few_ids_and_only_to_it(
            n in 1u32..8,
            seed in 0u64..u64::MAX,
        ) {
            let old = Ring::new(&(0..n).collect::<Vec<_>>());
            let new = Ring::new(&(0..=n).collect::<Vec<_>>());
            let total = 4000u64;
            let mut moved = 0u64;
            for k in 0..total {
                // Spread ids over the u32 id space deterministically.
                let raw = seed.wrapping_add(k.wrapping_mul(0x2545_F491_4F6C_DD1D));
                let id = SubId((raw >> 32) as u32);
                let (a, b) = (old.route(id), new.route(id));
                if a != b {
                    prop_assert_eq!(b, n, "moved id must land on the new member");
                    moved += 1;
                }
            }
            let bound = 2.0 / f64::from(n + 1);
            let fraction = moved as f64 / total as f64;
            prop_assert!(
                fraction <= bound,
                "moved {:.3} of ids, bound {:.3} (n {} -> {})", fraction, bound, n, n + 1
            );
        }
    }
}
