//! Durable subscription state: snapshot + append-log persistence and
//! crash recovery for the broker's live subscription set.
//!
//! Layout of the persist directory:
//!
//! * `snapshot.apcm` — checksummed full snapshot (see [`snapshot`]),
//!   written atomically (temp file + rename) by the maintenance thread,
//!   the `SNAPSHOT` admin command, or log-size rotation.
//! * `churn.log` — append-only SUB/UNSUB records with per-record CRC and
//!   monotone sequence numbers (see [`log`]); rotated (truncated) after
//!   every successful snapshot.
//!
//! Recovery loads the snapshot (if any), replays log records with a higher
//! sequence, truncates torn tails, skips CRC-invalid records, and reports
//! exactly what was dropped — corruption is counted, never a panic.
//!
//! The write path is **ack-after-append**: a `SUB`/`UNSUB` is applied to
//! the in-memory engine first, then logged; if the append fails the engine
//! change is rolled back and the client sees `-ERR`, so acknowledged churn
//! always equals durable churn. Append failures put the persister into a
//! *degraded* state: churn is refused (fast) while matching continues,
//! the maintenance thread retries with exponential backoff, and the
//! `STATS` counters surface everything.

pub mod crc;
pub mod failpoint;
pub mod log;
pub mod snapshot;

use apcm_bexpr::{BexprError, Schema, SubId, Subscription};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::{FsyncPolicy, PersistConfig};
use crate::replication::{send_chunk, ReplicationHub};
use crate::shard::ShardedEngine;
use crate::stats::ServerStats;
use crossbeam::channel::Sender;
use log::{ChurnLog, ChurnOp, ReplayOp, ReplayRecord};
use std::net::TcpStream;

/// Why a churn operation was rejected.
#[derive(Debug)]
pub enum ChurnError {
    /// The expression itself is invalid — the engine never saw it.
    Engine(BexprError),
    /// The engine accepted it but the durable append failed; the engine
    /// change was rolled back.
    Persist(String),
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::Engine(e) => write!(f, "bad subscription: {e}"),
            ChurnError::Persist(msg) => write!(f, "persist: {msg}"),
        }
    }
}

/// What startup recovery found. Rendered by `apcm serve` and exposed via
/// [`crate::Server::recovery_report`].
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Subscriptions restored from the snapshot.
    pub snapshot_subs: usize,
    /// Log sequence the snapshot covered.
    pub snapshot_seq: u64,
    /// Set when a snapshot existed but was corrupt (recovery continued
    /// from the log alone).
    pub snapshot_error: Option<String>,
    /// Log records applied on top of the snapshot.
    pub log_records_applied: u64,
    /// Log records skipped because the snapshot already covered them.
    pub log_records_obsolete: u64,
    /// CRC-invalid or unparseable records dropped.
    pub corrupt_records_dropped: u64,
    /// Torn-tail bytes truncated off the log.
    pub truncated_bytes: u64,
    /// UNSUB records whose id was not live (double-unsub across a crash).
    pub unknown_unsubs: u64,
    /// Live subscriptions after recovery.
    pub live_subs: usize,
    /// Human-readable notes about everything dropped.
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// Whether recovery had to drop anything.
    pub fn is_clean(&self) -> bool {
        self.snapshot_error.is_none()
            && self.corrupt_records_dropped == 0
            && self.truncated_bytes == 0
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "recovered {} live subscription(s): {} from snapshot (seq {}), {} log record(s) replayed",
            self.live_subs, self.snapshot_subs, self.snapshot_seq, self.log_records_applied
        )?;
        if let Some(err) = &self.snapshot_error {
            writeln!(f, "  snapshot unusable: {err}")?;
        }
        if self.corrupt_records_dropped > 0 || self.truncated_bytes > 0 {
            writeln!(
                f,
                "  dropped {} corrupt record(s), truncated {} torn byte(s)",
                self.corrupt_records_dropped, self.truncated_bytes
            )?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Result of one snapshot pass.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotOutcome {
    pub subs: usize,
    pub seq: u64,
    pub bytes: u64,
}

struct PersistInner {
    log: ChurnLog,
    /// `false` after an append/sync failure until a retry succeeds.
    healthy: bool,
    next_retry: Instant,
    backoff: Duration,
    last_snapshot: Instant,
}

/// The durability layer: owns the churn log, the canonical catalog of live
/// subscriptions (the snapshot source), and the degraded/retry state.
pub struct Persister {
    config: PersistConfig,
    schema: Schema,
    stats: Arc<ServerStats>,
    /// Serializes churn appends, snapshots, and rotation — the ordering of
    /// log records always equals the ordering of engine mutations.
    inner: Mutex<PersistInner>,
    /// Canonical live set, keyed by id. Updated only after a successful
    /// append, so it never disagrees with the durable state.
    catalog: RwLock<HashMap<SubId, Subscription>>,
    /// Live `REPLICATE` follower streams; every durable append is fanned
    /// out to them (under `inner`, so followers see append order).
    repl: ReplicationHub,
    recovery: RecoveryReport,
}

/// How a `REPLICATE <from_seq>` handshake was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStart {
    /// The retained log covered `from_seq`: this many backlog frames were
    /// shipped, live tail follows.
    Log { backlog: usize },
    /// `from_seq` predated the retained log (or was ahead of the primary —
    /// stale promote leftovers): the full catalog was shipped as a
    /// snapshot bootstrap at this sequence.
    Snapshot { subs: usize, seq: u64 },
}

impl Persister {
    /// Opens (or creates) the persist directory, runs recovery, and
    /// returns the persister plus the recovered subscriptions in ascending
    /// id order, ready for [`ShardedEngine::bulk_restore`].
    pub fn open(
        config: PersistConfig,
        schema: Schema,
        stats: Arc<ServerStats>,
    ) -> io::Result<(Self, Vec<Subscription>)> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        std::fs::create_dir_all(&config.dir)?;

        let mut report = RecoveryReport::default();
        let mut catalog: HashMap<SubId, Subscription> = HashMap::new();
        let mut base_seq = 0u64;
        match snapshot::load(&config.dir, &schema) {
            Ok(Some(snap)) => {
                report.snapshot_subs = snap.subs.len();
                report.snapshot_seq = snap.seq;
                base_seq = snap.seq;
                for sub in snap.subs {
                    catalog.insert(sub.id(), sub);
                }
            }
            Ok(None) => {}
            Err(snapshot::SnapshotError::Corrupt(msg)) => {
                report.snapshot_error = Some(msg.clone());
                report
                    .notes
                    .push(format!("snapshot discarded as corrupt: {msg}"));
            }
            Err(snapshot::SnapshotError::SchemaMismatch(msg)) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
            }
            Err(snapshot::SnapshotError::Io(e)) => return Err(e),
        }

        let replay = log::replay(&config.dir, &schema)?;
        report.corrupt_records_dropped += replay.corrupt_skipped;
        report.truncated_bytes += replay.truncated_bytes;
        report.notes.extend(replay.notes.iter().cloned());
        for record in &replay.records {
            if record.seq <= base_seq {
                report.log_records_obsolete += 1;
                continue;
            }
            report.log_records_applied += 1;
            match &record.op {
                ReplayOp::Sub(sub) => {
                    catalog.insert(sub.id(), sub.clone());
                }
                ReplayOp::Unsub(id) => {
                    if catalog.remove(id).is_none() {
                        report.unknown_unsubs += 1;
                    }
                }
            }
        }
        let last_seq = base_seq.max(replay.last_seq);
        report.live_subs = catalog.len();

        ServerStats::add(&stats.recovered_subs, report.live_subs as u64);
        ServerStats::add(&stats.recovery_log_applied, report.log_records_applied);
        ServerStats::add(
            &stats.recovery_corrupt_dropped,
            report.corrupt_records_dropped + u64::from(report.snapshot_error.is_some()),
        );
        ServerStats::add(&stats.recovery_truncated_bytes, report.truncated_bytes);

        // The oldest retained record bounds what a replication stream can
        // serve without a snapshot bootstrap.
        let retained_base = replay
            .records
            .first()
            .map(|r| r.seq.saturating_sub(1))
            .unwrap_or(last_seq);
        let log = ChurnLog::open(&config.dir, last_seq, retained_base)?;
        let now = Instant::now();
        let mut restored: Vec<Subscription> = catalog.values().cloned().collect();
        restored.sort_by_key(|s| s.id());
        let persister = Self {
            inner: Mutex::new(PersistInner {
                log,
                healthy: true,
                next_retry: now,
                backoff: config.retry_backoff,
                last_snapshot: now,
            }),
            config,
            schema,
            stats,
            catalog: RwLock::new(catalog),
            repl: ReplicationHub::default(),
            recovery: report,
        };
        Ok((persister, restored))
    }

    /// What startup recovery found.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Whether churn is currently refused pending a retry.
    pub fn is_degraded(&self) -> bool {
        !self.inner.lock().healthy
    }

    fn fsync_per_append(&self) -> bool {
        self.config.fsync == FsyncPolicy::Always
    }

    /// Degradation bookkeeping after a failed append/sync.
    fn note_failure(&self, inner: &mut PersistInner) {
        ServerStats::add(&self.stats.persist_errors, 1);
        if inner.healthy {
            inner.backoff = self.config.retry_backoff;
        } else {
            inner.backoff = (inner.backoff * 2).min(self.config.max_retry_backoff);
        }
        inner.healthy = false;
        inner.next_retry = Instant::now() + inner.backoff;
        self.stats
            .persist_degraded
            .store(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn note_success(&self, inner: &mut PersistInner) {
        if !inner.healthy {
            inner.healthy = true;
            inner.backoff = self.config.retry_backoff;
            self.stats
                .persist_degraded
                .store(0, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Gate for churn while degraded: fail fast inside the backoff window,
    /// attempt a repair when one is due.
    fn gate(&self, inner: &mut PersistInner) -> Result<(), ChurnError> {
        if inner.healthy {
            return Ok(());
        }
        if Instant::now() < inner.next_retry {
            return Err(ChurnError::Persist(
                "durable log degraded; retry in progress".into(),
            ));
        }
        ServerStats::add(&self.stats.persist_retries, 1);
        match inner.log.repair() {
            Ok(()) => Ok(()), // the append below is the real probe
            Err(e) => {
                self.note_failure(inner);
                Err(ChurnError::Persist(format!("retry failed: {e}")))
            }
        }
    }

    /// Applies a SUB through engine + log with rollback. `Ok(false)` for a
    /// duplicate id (nothing written).
    pub fn apply_sub(
        &self,
        engine: &ShardedEngine,
        sub: &Subscription,
    ) -> Result<bool, ChurnError> {
        let mut inner = self.inner.lock();
        self.gate(&mut inner)?;
        match engine.subscribe(sub) {
            Ok(true) => {}
            Ok(false) => return Ok(false),
            Err(e) => return Err(ChurnError::Engine(e)),
        }
        match inner
            .log
            .append(&ChurnOp::Sub(sub), &self.schema, self.fsync_per_append())
        {
            Ok(seq) => {
                ServerStats::add(&self.stats.persist_appends, 1);
                self.note_success(&mut inner);
                self.catalog.write().insert(sub.id(), sub.clone());
                self.fan_out(&ChurnOp::Sub(sub), seq);
                Ok(true)
            }
            Err(e) => {
                engine.unsubscribe(sub.id());
                self.note_failure(&mut inner);
                Err(ChurnError::Persist(e.to_string()))
            }
        }
    }

    /// Applies an UNSUB through engine + log with rollback. `Ok(false)`
    /// when the id was not live (nothing written).
    pub fn apply_unsub(&self, engine: &ShardedEngine, id: SubId) -> Result<bool, ChurnError> {
        let mut inner = self.inner.lock();
        self.gate(&mut inner)?;
        if !engine.unsubscribe(id) {
            return Ok(false);
        }
        match inner
            .log
            .append(&ChurnOp::Unsub(id), &self.schema, self.fsync_per_append())
        {
            Ok(seq) => {
                ServerStats::add(&self.stats.persist_appends, 1);
                self.note_success(&mut inner);
                self.catalog.write().remove(&id);
                self.fan_out(&ChurnOp::Unsub(id), seq);
                Ok(true)
            }
            Err(e) => {
                // Roll the engine back from the catalog copy (still present
                // because the catalog is only updated after a good append).
                if let Some(sub) = self.catalog.read().get(&id).cloned() {
                    let _ = engine.subscribe(&sub);
                }
                self.note_failure(&mut inner);
                Err(ChurnError::Persist(e.to_string()))
            }
        }
    }

    /// Writes a snapshot of the live set and rotates the log. Churn is
    /// paused for the duration (matching is not).
    pub fn snapshot(&self) -> io::Result<SnapshotOutcome> {
        let mut inner = self.inner.lock();
        self.snapshot_locked(&mut inner)
    }

    fn snapshot_locked(&self, inner: &mut PersistInner) -> io::Result<SnapshotOutcome> {
        let seq = inner.log.seq();
        let mut subs: Vec<Subscription> = self.catalog.read().values().cloned().collect();
        subs.sort_by_key(|s| s.id());
        match snapshot::write(&self.config.dir, &self.schema, &subs, seq) {
            Ok(bytes) => {
                inner.log.rotate()?;
                inner.last_snapshot = Instant::now();
                ServerStats::add(&self.stats.snapshots_taken, 1);
                Ok(SnapshotOutcome {
                    subs: subs.len(),
                    seq,
                    bytes,
                })
            }
            Err(e) => {
                ServerStats::add(&self.stats.snapshot_errors, 1);
                Err(e)
            }
        }
    }

    /// Periodic work, called from the broker's maintenance thread:
    /// interval fsync, degraded-log repair retries (with backoff), and
    /// background snapshotting (age- or size-triggered) with log rotation.
    pub fn maintenance_tick(&self) {
        let mut inner = self.inner.lock();

        if !inner.healthy && Instant::now() >= inner.next_retry {
            ServerStats::add(&self.stats.persist_retries, 1);
            match inner.log.repair() {
                Ok(()) => self.note_success(&mut inner),
                Err(_) => self.note_failure(&mut inner),
            }
        }

        if inner.healthy && self.config.fsync == FsyncPolicy::Interval {
            if let Err(_e) = inner.log.sync() {
                self.note_failure(&mut inner);
            }
        }

        let due_by_age = self
            .config
            .snapshot_interval
            .map(|iv| inner.last_snapshot.elapsed() >= iv)
            .unwrap_or(false);
        let due_by_size = inner.log.len_bytes() >= self.config.rotate_log_bytes;
        if inner.healthy && (due_by_size || (due_by_age && inner.log.len_bytes() > 0)) {
            let _ = self.snapshot_locked(&mut inner);
        }
    }

    /// Final flush on graceful shutdown: make everything appended durable.
    /// (No snapshot — the log replays equivalently on the next start.)
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        if inner.log.sync().is_err() {
            self.note_failure(&mut inner);
        }
    }

    /// Number of live subscriptions in the durable catalog.
    pub fn catalog_len(&self) -> usize {
        self.catalog.read().len()
    }

    /// Current churn-log size in bytes (for `STATS`).
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log.len_bytes()
    }

    /// Highest durable sequence (log cursor).
    pub fn current_seq(&self) -> u64 {
        self.inner.lock().log.seq()
    }

    /// Re-renders a just-appended record as a wire frame and fans it out
    /// to live followers. Called with `inner` held so the per-follower
    /// queues observe exact append order; a no-op without followers.
    fn fan_out(&self, op: &ChurnOp<'_>, seq: u64) {
        if !self.repl.has_followers() {
            return;
        }
        let frame = log::render_frame(seq, op, &self.schema);
        self.repl.broadcast(&frame, seq, &self.stats);
    }

    /// Answers a `REPLICATE <from_seq>` handshake: decides log-tail vs
    /// snapshot bootstrap, queues the header + backlog as one chunk on the
    /// follower connection's outbound channel, and registers the stream
    /// for live fan-out — all under the append lock, so no record is
    /// missed or duplicated between backlog and tail.
    pub fn begin_stream(
        &self,
        follower_id: u64,
        from_seq: u64,
        out: Sender<String>,
        stream: TcpStream,
    ) -> io::Result<StreamStart> {
        let inner = self.inner.lock();
        let current = inner.log.seq();
        let base = inner.log.base_seq();
        let start = if from_seq >= base && from_seq <= current {
            let frames = inner.log.frames_after(from_seq)?;
            let mut chunk = format!("+OK replicate log {}", frames.len());
            for frame in &frames {
                chunk.push('\n');
                chunk.push_str(frame);
            }
            let backlog = frames.len();
            send_chunk(&out, chunk).map_err(io::Error::other)?;
            self.repl.register(follower_id, out, stream, from_seq);
            StreamStart::Log { backlog }
        } else {
            // Either the follower predates the retained log (rotation) or
            // claims a future sequence (stale leftovers from an old
            // promotion): ship the whole catalog at the current sequence.
            let mut subs: Vec<Subscription> = self.catalog.read().values().cloned().collect();
            subs.sort_by_key(|s| s.id());
            let mut chunk = format!("+OK replicate snapshot {} {current}", subs.len());
            for sub in &subs {
                chunk.push('\n');
                chunk.push_str(&log::render_frame(
                    current,
                    &ChurnOp::Sub(sub),
                    &self.schema,
                ));
            }
            let n = subs.len();
            send_chunk(&out, chunk).map_err(io::Error::other)?;
            self.repl
                .register(follower_id, out, stream, from_seq.min(current));
            StreamStart::Snapshot {
                subs: n,
                seq: current,
            }
        };
        self.stats.repl_followers.store(
            self.repl.follower_count() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        Ok(start)
    }

    /// Records a follower's `REPLACK` and refreshes the lag gauge.
    pub fn follower_ack(&self, follower_id: u64, acked_seq: u64) {
        let current = self.current_seq();
        let lag = self.repl.ack(follower_id, acked_seq, current);
        self.stats
            .repl_lag_records
            .store(lag, std::sync::atomic::Ordering::Relaxed);
    }

    /// Drops a follower stream (its connection closed). Idempotent.
    pub fn remove_follower(&self, follower_id: u64) {
        self.repl.remove(follower_id);
        let count = self.repl.follower_count() as u64;
        self.stats
            .repl_followers
            .store(count, std::sync::atomic::Ordering::Relaxed);
        if count == 0 {
            self.stats
                .repl_lag_records
                .store(0, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Number of live follower streams.
    pub fn follower_count(&self) -> usize {
        self.repl.follower_count()
    }

    /// Applies one replicated record on a follower: engine first, then the
    /// frame is appended *verbatim* (primary's sequence and CRC) to the
    /// local log, with the same rollback discipline as the client churn
    /// path. Returns `Ok(false)` for an already-applied sequence (stream
    /// overlap after a reconnect) — nothing written.
    pub fn apply_replicated(
        &self,
        engine: &ShardedEngine,
        frame: &str,
        record: &ReplayRecord,
    ) -> Result<bool, ChurnError> {
        let mut inner = self.inner.lock();
        if record.seq <= inner.log.seq() {
            return Ok(false);
        }
        self.gate(&mut inner)?;
        // Engine apply is best-effort idempotent: a duplicate SUB or an
        // unknown UNSUB can legitimately arrive after a bootstrap overlap;
        // the frame is still appended so the local log mirrors the stream.
        let engine_added = match &record.op {
            ReplayOp::Sub(sub) => match engine.subscribe(sub) {
                Ok(added) => added,
                Err(e) => return Err(ChurnError::Engine(e)),
            },
            ReplayOp::Unsub(id) => {
                engine.unsubscribe(*id);
                false
            }
        };
        match inner
            .log
            .append_frame(frame, record.seq, self.fsync_per_append())
        {
            Ok(()) => {
                ServerStats::add(&self.stats.persist_appends, 1);
                self.note_success(&mut inner);
                match &record.op {
                    ReplayOp::Sub(sub) => {
                        self.catalog.write().insert(sub.id(), sub.clone());
                    }
                    ReplayOp::Unsub(id) => {
                        self.catalog.write().remove(id);
                    }
                }
                Ok(true)
            }
            Err(e) => {
                match &record.op {
                    ReplayOp::Sub(sub) => {
                        if engine_added {
                            engine.unsubscribe(sub.id());
                        }
                    }
                    ReplayOp::Unsub(id) => {
                        if let Some(sub) = self.catalog.read().get(id).cloned() {
                            let _ = engine.subscribe(&sub);
                        }
                    }
                }
                self.note_failure(&mut inner);
                Err(ChurnError::Persist(e.to_string()))
            }
        }
    }

    /// Replaces the follower's entire local state with the primary's
    /// snapshot at `seq`: engine contents swapped, a local snapshot
    /// written, and the log truncated with both cursors jumped to `seq`.
    /// Returns `(removed, restored)` subscription counts.
    pub fn bootstrap_replace(
        &self,
        engine: &ShardedEngine,
        mut subs: Vec<Subscription>,
        seq: u64,
    ) -> io::Result<(usize, usize)> {
        subs.sort_by_key(|s| s.id());
        let mut inner = self.inner.lock();
        let mut catalog = self.catalog.write();
        let removed = catalog.len();
        for id in catalog.keys() {
            engine.unsubscribe(*id);
        }
        engine
            .bulk_restore(&subs)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        snapshot::write(&self.config.dir, &self.schema, &subs, seq)?;
        inner.log.rotate_to(seq)?;
        inner.last_snapshot = Instant::now();
        *catalog = subs.iter().map(|s| (s.id(), s.clone())).collect();
        ServerStats::add(&self.stats.snapshots_taken, 1);
        Ok((removed, subs.len()))
    }
}
