//! Durable subscription state: snapshot + append-log persistence and
//! crash recovery for the broker's live subscription set.
//!
//! Layout of the persist directory:
//!
//! * `snapshot.apcm` — checksummed full snapshot (see [`snapshot`]),
//!   written atomically (temp file + rename) by the maintenance thread,
//!   the `SNAPSHOT` admin command, or log-size rotation. Binary
//!   block-columnar colstore v2 by default; text v1 via
//!   `--snapshot-format text` (and always readable on recovery).
//! * `snapshot-delta-N.col` + `snapshot.manifest` — colstore delta
//!   snapshots: age-triggered background snapshots re-serialize only the
//!   partitions dirtied since the chain's last element, chained onto the
//!   full by the manifest. Deltas never rotate the churn log (only fulls
//!   do), so dropping a corrupt delta on recovery is always healed by
//!   log replay.
//! * `churn.log` — append-only SUB/UNSUB records with per-record CRC and
//!   monotone sequence numbers (see [`log`]); rotated after every
//!   successful *full* snapshot, retaining any records that landed while
//!   the snapshot was being compressed and written.
//!
//! Snapshot writes split *prepare* (capture + columnarize, under the
//! append lock just long enough to clone the catalog) from
//! *compress + fsync* (outside the lock) — churn acks keep flowing while
//! a snapshot is on disk's time.
//!
//! Recovery loads the snapshot (if any), replays log records with a higher
//! sequence, truncates torn tails, skips CRC-invalid records, and reports
//! exactly what was dropped — corruption is counted, never a panic.
//!
//! The write path is **ack-after-append**: a `SUB`/`UNSUB` is applied to
//! the in-memory engine first, then logged; if the append fails the engine
//! change is rolled back and the client sees `-ERR`, so acknowledged churn
//! always equals durable churn. Append failures put the persister into a
//! *degraded* state: churn is refused (fast) while matching continues,
//! the maintenance thread retries with exponential backoff, and the
//! `STATS` counters surface everything.

pub mod crc;
pub mod failpoint;
pub mod log;
pub mod snapshot;

use apcm_bexpr::{BexprError, Schema, SubId, Subscription};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::{FsyncPolicy, PersistConfig, SnapshotFormat};
use crate::replication::{send_chunk, FollowerConn, ReplicationHub};
use crate::ring::RingScope;
use crate::shard::{route_partition, ShardedEngine};
use crate::stats::ServerStats;
use apcm_colstore::{b64, Manifest};
use log::{ChurnLog, ChurnOp, ReplayOp, ReplayRecord};

/// Why a churn operation was rejected.
#[derive(Debug)]
pub enum ChurnError {
    /// The expression itself is invalid — the engine never saw it.
    Engine(BexprError),
    /// The engine accepted it but the durable append failed; the engine
    /// change was rolled back.
    Persist(String),
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::Engine(e) => write!(f, "bad subscription: {e}"),
            ChurnError::Persist(msg) => write!(f, "persist: {msg}"),
        }
    }
}

/// What startup recovery found. Rendered by `apcm serve` and exposed via
/// [`crate::Server::recovery_report`].
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Subscriptions restored from the snapshot.
    pub snapshot_subs: usize,
    /// Log sequence the snapshot covered.
    pub snapshot_seq: u64,
    /// Set when a snapshot existed but was corrupt (recovery continued
    /// from the log alone).
    pub snapshot_error: Option<String>,
    /// Log records applied on top of the snapshot.
    pub log_records_applied: u64,
    /// Log records skipped because the snapshot already covered them.
    pub log_records_obsolete: u64,
    /// CRC-invalid or unparseable records dropped.
    pub corrupt_records_dropped: u64,
    /// Torn-tail bytes truncated off the log.
    pub truncated_bytes: u64,
    /// UNSUB records whose id was not live (double-unsub across a crash).
    pub unknown_unsubs: u64,
    /// Delta snapshot files applied on top of the full snapshot.
    pub snapshot_deltas_applied: u64,
    /// Delta snapshot files dropped (they or a predecessor failed
    /// validation); the chain fell back to its last consistent prefix and
    /// log replay covered the difference.
    pub snapshot_deltas_dropped: u64,
    /// Live subscriptions after recovery.
    pub live_subs: usize,
    /// Human-readable notes about everything dropped.
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// Whether recovery had to drop anything.
    pub fn is_clean(&self) -> bool {
        self.snapshot_error.is_none()
            && self.corrupt_records_dropped == 0
            && self.truncated_bytes == 0
            && self.snapshot_deltas_dropped == 0
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "recovered {} live subscription(s): {} from snapshot (seq {}), {} log record(s) replayed",
            self.live_subs, self.snapshot_subs, self.snapshot_seq, self.log_records_applied
        )?;
        if let Some(err) = &self.snapshot_error {
            writeln!(f, "  snapshot unusable: {err}")?;
        }
        if self.snapshot_deltas_applied > 0 || self.snapshot_deltas_dropped > 0 {
            writeln!(
                f,
                "  delta chain: {} applied, {} dropped",
                self.snapshot_deltas_applied, self.snapshot_deltas_dropped
            )?;
        }
        if self.corrupt_records_dropped > 0 || self.truncated_bytes > 0 {
            writeln!(
                f,
                "  dropped {} corrupt record(s), truncated {} torn byte(s)",
                self.corrupt_records_dropped, self.truncated_bytes
            )?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Result of one snapshot pass.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotOutcome {
    pub subs: usize,
    pub seq: u64,
    pub bytes: u64,
    /// `true` when this pass wrote a delta file instead of a full.
    pub delta: bool,
}

struct PersistInner {
    log: ChurnLog,
    /// `false` after an append/sync failure until a retry succeeds.
    healthy: bool,
    next_retry: Instant,
    backoff: Duration,
    last_snapshot: Instant,
    /// Per-partition sequence of the most recent mutation; a partition is
    /// dirty (needs re-serializing into the next delta) when its entry
    /// exceeds the chain's covered sequence.
    dirty_seq: Vec<u64>,
    /// The on-disk full+delta chain this process has written, if any.
    /// `None` until the first full snapshot of this process lifetime —
    /// chains deliberately don't survive restarts (the first background
    /// snapshot after a restart is always a full), which keeps delta
    /// bookkeeping purely in-memory.
    chain: Option<Manifest>,
}

/// The durability layer: owns the churn log, the canonical catalog of live
/// subscriptions (the snapshot source), and the degraded/retry state.
pub struct Persister {
    config: PersistConfig,
    schema: Schema,
    stats: Arc<ServerStats>,
    /// Partition count snapshots and bootstrap blocks are routed with
    /// (the serving shard count).
    partitions: u32,
    /// Serializes churn appends and log rotation — the ordering of
    /// log records always equals the ordering of engine mutations.
    inner: Mutex<PersistInner>,
    /// Serializes whole snapshot passes (SNAPSHOT verb vs maintenance
    /// thread) without blocking churn: the compress+fsync phase runs with
    /// only this held.
    snap_lock: Mutex<()>,
    /// Canonical live set, keyed by id. Updated only after a successful
    /// append, so it never disagrees with the durable state.
    catalog: RwLock<HashMap<SubId, Subscription>>,
    /// Live `REPLICATE` follower streams; every durable append is fanned
    /// out to them (under `inner`, so followers see append order).
    repl: ReplicationHub,
    recovery: RecoveryReport,
}

/// How a `REPLICATE <from_seq>` handshake was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStart {
    /// The retained log covered `from_seq`: this many backlog frames were
    /// shipped, live tail follows.
    Log { backlog: usize },
    /// `from_seq` predated the retained log (or was ahead of the primary —
    /// stale promote leftovers): the full catalog was shipped as a
    /// text snapshot bootstrap (one SUB frame per subscription) at this
    /// sequence.
    Snapshot { subs: usize, seq: u64 },
    /// Same trigger, but the follower spoke `REPLICATE <seq> v2` and this
    /// primary runs the colstore format: the catalog was shipped as
    /// compressed colstore blocks (base64 `BLOCK` lines).
    Colstore {
        blocks: usize,
        subs: usize,
        seq: u64,
    },
    /// The follower was *ahead* of this primary but the primary still
    /// retains its own head frame: nothing was shipped; the follower was
    /// told to verify its frame at `seq` against `crc` and rewind locally
    /// (discarding only its divergent — necessarily unacked — suffix).
    Truncate { seq: u64, crc: u32 },
}

impl Persister {
    /// Opens (or creates) the persist directory, runs recovery, and
    /// returns the persister plus the recovered subscriptions in ascending
    /// id order, ready for [`ShardedEngine::bulk_restore`].
    pub fn open(
        config: PersistConfig,
        schema: Schema,
        stats: Arc<ServerStats>,
        partitions: usize,
    ) -> io::Result<(Self, Vec<Subscription>)> {
        let partitions = partitions.max(1) as u32;
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        std::fs::create_dir_all(&config.dir)?;

        let mut report = RecoveryReport::default();
        let mut catalog: HashMap<SubId, Subscription> = HashMap::new();
        let mut base_seq = 0u64;
        match snapshot::load(&config.dir, &schema) {
            Ok(Some(snap)) => {
                report.snapshot_subs = snap.subs.len();
                report.snapshot_seq = snap.seq;
                report.snapshot_deltas_applied = snap.deltas_applied;
                report.snapshot_deltas_dropped = snap.deltas_dropped;
                report.notes.extend(snap.notes.iter().cloned());
                base_seq = snap.seq;
                for sub in snap.subs {
                    catalog.insert(sub.id(), sub);
                }
            }
            Ok(None) => {}
            Err(snapshot::SnapshotError::Corrupt(msg)) => {
                report.snapshot_error = Some(msg.clone());
                report
                    .notes
                    .push(format!("snapshot discarded as corrupt: {msg}"));
            }
            Err(snapshot::SnapshotError::SchemaMismatch(msg)) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
            }
            Err(snapshot::SnapshotError::Io(e)) => return Err(e),
        }

        let replay = log::replay(&config.dir, &schema)?;
        report.corrupt_records_dropped += replay.corrupt_skipped;
        report.truncated_bytes += replay.truncated_bytes;
        report.notes.extend(replay.notes.iter().cloned());
        for record in &replay.records {
            if record.seq <= base_seq {
                report.log_records_obsolete += 1;
                continue;
            }
            report.log_records_applied += 1;
            match &record.op {
                ReplayOp::Sub(sub) => {
                    catalog.insert(sub.id(), sub.clone());
                }
                ReplayOp::Unsub(id) => {
                    if catalog.remove(id).is_none() {
                        report.unknown_unsubs += 1;
                    }
                }
            }
        }
        let last_seq = base_seq.max(replay.last_seq);
        report.live_subs = catalog.len();

        ServerStats::add(&stats.recovered_subs, report.live_subs as u64);
        ServerStats::add(&stats.recovery_log_applied, report.log_records_applied);
        ServerStats::add(
            &stats.recovery_corrupt_dropped,
            report.corrupt_records_dropped + u64::from(report.snapshot_error.is_some()),
        );
        ServerStats::add(&stats.recovery_truncated_bytes, report.truncated_bytes);
        ServerStats::add(
            &stats.recovery_deltas_dropped,
            report.snapshot_deltas_dropped,
        );

        // The oldest retained record bounds what a replication stream can
        // serve without a snapshot bootstrap.
        let retained_base = replay
            .records
            .first()
            .map(|r| r.seq.saturating_sub(1))
            .unwrap_or(last_seq);
        let log = ChurnLog::open(&config.dir, last_seq, retained_base)?;
        let now = Instant::now();
        let mut restored: Vec<Subscription> = catalog.values().cloned().collect();
        restored.sort_by_key(|s| s.id());
        let persister = Self {
            inner: Mutex::new(PersistInner {
                log,
                healthy: true,
                next_retry: now,
                backoff: config.retry_backoff,
                last_snapshot: now,
                dirty_seq: vec![0; partitions as usize],
                chain: None,
            }),
            config,
            schema,
            stats,
            partitions,
            snap_lock: Mutex::new(()),
            catalog: RwLock::new(catalog),
            repl: ReplicationHub::default(),
            recovery: report,
        };
        Ok((persister, restored))
    }

    /// What startup recovery found.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Whether churn is currently refused pending a retry.
    pub fn is_degraded(&self) -> bool {
        !self.inner.lock().healthy
    }

    fn fsync_per_append(&self) -> bool {
        self.config.fsync == FsyncPolicy::Always
    }

    /// Degradation bookkeeping after a failed append/sync.
    fn note_failure(&self, inner: &mut PersistInner) {
        ServerStats::add(&self.stats.persist_errors, 1);
        if inner.healthy {
            inner.backoff = self.config.retry_backoff;
        } else {
            inner.backoff = (inner.backoff * 2).min(self.config.max_retry_backoff);
        }
        inner.healthy = false;
        inner.next_retry = Instant::now() + inner.backoff;
        self.stats
            .persist_degraded
            .store(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn note_success(&self, inner: &mut PersistInner) {
        if !inner.healthy {
            inner.healthy = true;
            inner.backoff = self.config.retry_backoff;
            self.stats
                .persist_degraded
                .store(0, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Gate for churn while degraded: fail fast inside the backoff window,
    /// attempt a repair when one is due.
    fn gate(&self, inner: &mut PersistInner) -> Result<(), ChurnError> {
        if inner.healthy {
            return Ok(());
        }
        if Instant::now() < inner.next_retry {
            return Err(ChurnError::Persist(
                "durable log degraded; retry in progress".into(),
            ));
        }
        ServerStats::add(&self.stats.persist_retries, 1);
        match inner.log.repair() {
            Ok(()) => Ok(()), // the append below is the real probe
            Err(e) => {
                self.note_failure(inner);
                Err(ChurnError::Persist(format!("retry failed: {e}")))
            }
        }
    }

    /// Records that `id`'s partition mutated at `seq` — the next delta
    /// snapshot must re-serialize it.
    fn mark_dirty(&self, inner: &mut PersistInner, id: SubId, seq: u64) {
        inner.dirty_seq[route_partition(id, self.partitions as usize)] = seq;
    }

    /// Applies a SUB through engine + log with rollback. `Ok(Some(seq))`
    /// carries the appended record's durable log sequence — the churn ack
    /// reports it so the router can anchor its promotion/read floor to a
    /// real sequence. `Ok(None)` for a duplicate id (nothing written).
    pub fn apply_sub(
        &self,
        engine: &ShardedEngine,
        sub: &Subscription,
    ) -> Result<Option<u64>, ChurnError> {
        let mut inner = self.inner.lock();
        self.gate(&mut inner)?;
        match engine.subscribe(sub) {
            Ok(true) => {}
            Ok(false) => return Ok(None),
            Err(e) => return Err(ChurnError::Engine(e)),
        }
        match inner
            .log
            .append(&ChurnOp::Sub(sub), &self.schema, self.fsync_per_append())
        {
            Ok(seq) => {
                ServerStats::add(&self.stats.persist_appends, 1);
                self.note_success(&mut inner);
                self.mark_dirty(&mut inner, sub.id(), seq);
                self.catalog.write().insert(sub.id(), sub.clone());
                self.fan_out(&ChurnOp::Sub(sub), seq);
                Ok(Some(seq))
            }
            Err(e) => {
                engine.unsubscribe(sub.id());
                self.note_failure(&mut inner);
                Err(ChurnError::Persist(e.to_string()))
            }
        }
    }

    /// Applies an UNSUB through engine + log with rollback. `Ok(Some(seq))`
    /// carries the appended record's durable log sequence; `Ok(None)`
    /// when the id was not live (nothing written).
    pub fn apply_unsub(
        &self,
        engine: &ShardedEngine,
        id: SubId,
    ) -> Result<Option<u64>, ChurnError> {
        let mut inner = self.inner.lock();
        self.gate(&mut inner)?;
        if !engine.unsubscribe(id) {
            return Ok(None);
        }
        match inner
            .log
            .append(&ChurnOp::Unsub(id), &self.schema, self.fsync_per_append())
        {
            Ok(seq) => {
                ServerStats::add(&self.stats.persist_appends, 1);
                self.note_success(&mut inner);
                self.mark_dirty(&mut inner, id, seq);
                self.catalog.write().remove(&id);
                self.fan_out(&ChurnOp::Unsub(id), seq);
                Ok(Some(seq))
            }
            Err(e) => {
                // Roll the engine back from the catalog copy (still present
                // because the catalog is only updated after a good append).
                if let Some(sub) = self.catalog.read().get(&id).cloned() {
                    let _ = engine.subscribe(&sub);
                }
                self.note_failure(&mut inner);
                Err(ChurnError::Persist(e.to_string()))
            }
        }
    }

    /// Writes a full snapshot of the live set and rotates the log (keeping
    /// any records that land mid-write). Churn pauses only for the catalog
    /// capture, not for the compress+fsync phase.
    pub fn snapshot(&self) -> io::Result<SnapshotOutcome> {
        self.snapshot_pass(false)
    }

    /// Like [`Self::snapshot`], but writes a *delta* file (dirty
    /// partitions only, chained by the manifest) when the colstore format
    /// is active, a full already exists, fewer than `max_delta_chain`
    /// deltas are stacked, and some partitions are still clean. Falls back
    /// to a full snapshot otherwise.
    pub fn snapshot_incremental(&self) -> io::Result<SnapshotOutcome> {
        self.snapshot_pass(true)
    }

    fn snapshot_pass(&self, allow_delta: bool) -> io::Result<SnapshotOutcome> {
        // One snapshot at a time; churn is NOT blocked by this lock.
        let _guard = self.snap_lock.lock();

        // Prepare phase: capture a consistent (seq, catalog) pair and
        // decide full vs delta, holding the append lock only for the
        // clone. `snap_lock` keeps the chain state we read here stable.
        let (seq, subs, delta_plan) = {
            let inner = self.inner.lock();
            let seq = inner.log.seq();
            let mut subs: Vec<Subscription> = self.catalog.read().values().cloned().collect();
            subs.sort_by_key(|s| s.id());
            let plan = if allow_delta
                && self.config.format == SnapshotFormat::Colstore
                && self.config.max_delta_chain > 0
            {
                inner.chain.as_ref().and_then(|chain| {
                    if chain.deltas.len() as u32 >= self.config.max_delta_chain {
                        return None;
                    }
                    let covered = chain.covered_seq();
                    let dirty: Vec<u32> = inner
                        .dirty_seq
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| **s > covered)
                        .map(|(p, _)| p as u32)
                        .collect();
                    // A delta only pays off while some partitions stayed
                    // clean; all-dirty (or nothing to do) means full.
                    (!dirty.is_empty() && dirty.len() < self.partitions as usize)
                        .then(|| (chain.clone(), dirty))
                })
            } else {
                None
            };
            (seq, subs, plan)
        };

        // Compress + fsync phase: no locks held except `snap_lock`, so
        // churn acks keep flowing while the snapshot hits the disk.
        if let Some((chain, dirty)) = delta_plan {
            match snapshot::write_delta(
                &self.config.dir,
                &self.schema,
                &subs,
                seq,
                self.partitions,
                &dirty,
                &chain,
            ) {
                Ok((bytes, next)) => {
                    let mut inner = self.inner.lock();
                    inner.chain = Some(next);
                    inner.last_snapshot = Instant::now();
                    ServerStats::add(&self.stats.snapshots_taken, 1);
                    ServerStats::add(&self.stats.snapshot_deltas_taken, 1);
                    // The log is deliberately NOT rotated: a corrupt delta
                    // discovered on recovery must be healable by replay.
                    Ok(SnapshotOutcome {
                        subs: subs.len(),
                        seq,
                        bytes,
                        delta: true,
                    })
                }
                Err(e) => {
                    ServerStats::add(&self.stats.snapshot_errors, 1);
                    Err(e)
                }
            }
        } else {
            match snapshot::write(
                &self.config.dir,
                &self.schema,
                &subs,
                seq,
                self.config.format,
                self.partitions,
            ) {
                Ok(bytes) => {
                    let mut inner = self.inner.lock();
                    // Keep any churn that landed during compress+fsync.
                    inner.log.rotate_retaining(seq)?;
                    inner.chain =
                        (self.config.format == SnapshotFormat::Colstore).then(|| Manifest {
                            partitions: self.partitions,
                            full: (snapshot::SNAPSHOT_FILE.to_string(), seq),
                            deltas: Vec::new(),
                        });
                    inner.last_snapshot = Instant::now();
                    ServerStats::add(&self.stats.snapshots_taken, 1);
                    Ok(SnapshotOutcome {
                        subs: subs.len(),
                        seq,
                        bytes,
                        delta: false,
                    })
                }
                Err(e) => {
                    ServerStats::add(&self.stats.snapshot_errors, 1);
                    Err(e)
                }
            }
        }
    }

    /// Periodic work, called from the broker's maintenance thread:
    /// interval fsync, degraded-log repair retries (with backoff), and
    /// background snapshotting — size-triggered passes force a full
    /// (rotating the log back down), age-triggered passes may write a
    /// delta. Snapshots run after the append lock is released, so churn
    /// is never blocked behind a background snapshot.
    pub fn maintenance_tick(&self) {
        let (due_full, due_incremental) = {
            let mut inner = self.inner.lock();

            if !inner.healthy && Instant::now() >= inner.next_retry {
                ServerStats::add(&self.stats.persist_retries, 1);
                match inner.log.repair() {
                    Ok(()) => self.note_success(&mut inner),
                    Err(_) => self.note_failure(&mut inner),
                }
            }

            if inner.healthy && self.config.fsync == FsyncPolicy::Interval {
                if let Err(_e) = inner.log.sync() {
                    self.note_failure(&mut inner);
                }
            }

            let due_by_age = self
                .config
                .snapshot_interval
                .map(|iv| inner.last_snapshot.elapsed() >= iv)
                .unwrap_or(false);
            let due_by_size = inner.log.len_bytes() >= self.config.rotate_log_bytes;
            (
                inner.healthy && due_by_size,
                inner.healthy && !due_by_size && due_by_age && inner.log.len_bytes() > 0,
            )
        };
        if due_full {
            let _ = self.snapshot();
        } else if due_incremental {
            let _ = self.snapshot_incremental();
        }
    }

    /// Final flush on graceful shutdown: make everything appended durable.
    /// (No snapshot — the log replays equivalently on the next start.)
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        if inner.log.sync().is_err() {
            self.note_failure(&mut inner);
        }
    }

    /// Number of live subscriptions in the durable catalog.
    pub fn catalog_len(&self) -> usize {
        self.catalog.read().len()
    }

    /// Sorted ids of every live catalog subscription — the work list for
    /// `RESHARD PRUNE` and the resharding puller's bootstrap reconcile.
    pub fn catalog_ids(&self) -> Vec<SubId> {
        let mut ids: Vec<SubId> = self.catalog.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Current churn-log size in bytes (for `STATS`).
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log.len_bytes()
    }

    /// Highest durable sequence (log cursor).
    pub fn current_seq(&self) -> u64 {
        self.inner.lock().log.seq()
    }

    /// Re-renders a just-appended record as a wire frame and fans it out
    /// to live followers. Called with `inner` held so the per-follower
    /// queues observe exact append order; a no-op without followers.
    fn fan_out(&self, op: &ChurnOp<'_>, seq: u64) {
        if !self.repl.has_followers() {
            return;
        }
        let frame = log::render_frame(seq, op, &self.schema);
        self.repl.broadcast(&frame, seq, &self.stats);
    }

    /// Answers a `REPLICATE <from_seq>` handshake: decides log-tail vs
    /// snapshot bootstrap, queues the header + backlog as one chunk on the
    /// follower connection's outbound channel, and registers the stream
    /// for live fan-out — all under the append lock, so no record is
    /// missed or duplicated between backlog and tail.
    ///
    /// `scope` (a resharding pull) restricts the **bootstrap catalog** to
    /// the subscriptions the scope owns. It deliberately does NOT filter
    /// the log tail or the live stream: the receiver skips non-owned
    /// frames itself, so its `REPLACK` cursor counts every source
    /// sequence and stays directly comparable with this log's seq — the
    /// property the migration double-write floor handshake relies on.
    ///
    /// `reset` (the follower's trailing `reset` token) forces the
    /// wholesale-bootstrap path even when a covered-suffix truncate would
    /// apply — the follower sends it after a failed CRC probe.
    pub fn begin_stream(
        &self,
        follower_id: u64,
        from_seq: u64,
        v2: bool,
        reset: bool,
        scope: Option<&RingScope>,
        conn: Box<dyn FollowerConn>,
    ) -> io::Result<StreamStart> {
        let inner = self.inner.lock();
        let current = inner.log.seq();
        let base = inner.log.base_seq();
        let start = if from_seq >= base && from_seq <= current {
            let frames = inner.log.frames_after(from_seq)?;
            let mut chunk = format!("+OK replicate log {}", frames.len());
            for frame in &frames {
                chunk.push('\n');
                chunk.push_str(frame);
            }
            let backlog = frames.len();
            send_chunk(&*conn, chunk).map_err(io::Error::other)?;
            self.repl.register(follower_id, conn, from_seq);
            StreamStart::Log { backlog }
        } else if let Some(crc) = (!reset && scope.is_none() && from_seq > current)
            .then(|| Self::frame_crc_at(&inner.log, current))
            .flatten()
        {
            // The follower is ahead (an unacked suffix from an old
            // promotion) and we still retain our head frame: offer a
            // covered-suffix truncate. The follower verifies its own
            // frame at `current` against our CRC; a match proves the
            // histories agree up to `current`, so it rewinds locally with
            // zero transferred state and tails from there. A mismatch
            // makes it redial with `reset` for the wholesale bootstrap.
            let chunk = format!("+OK replicate truncate {current} {crc:08x}");
            send_chunk(&*conn, chunk).map_err(io::Error::other)?;
            // Register at cursor 0, not `current`: nothing is verified
            // until the follower CRC-probes its own frame at `current`
            // and acks the rewind. Registering at `current` would fold an
            // as-yet-unverified (possibly divergent) follower into
            // `min_acked`, overstating the chain's durability horizon in
            // ROLE/TOPOLOGY until the CRC mismatch disconnects it. The
            // follower's first `REPLACK` after the rewind raises the
            // cursor to its true verified progress.
            self.repl.register(follower_id, conn, 0);
            StreamStart::Truncate { seq: current, crc }
        } else {
            // The follower predates the retained log (rotation), asked
            // for a `reset`, or is ahead of a primary whose head frame is
            // no longer retained: ship the whole catalog at the current
            // sequence (scoped pulls get only their owned subset).
            let mut subs: Vec<Subscription> = match scope {
                Some(scope) => self
                    .catalog
                    .read()
                    .values()
                    .filter(|s| scope.owns(s.id()))
                    .cloned()
                    .collect(),
                None => self.catalog.read().values().cloned().collect(),
            };
            subs.sort_by_key(|s| s.id());
            let n = subs.len();
            let start = if v2 && self.config.format == SnapshotFormat::Colstore {
                // Compressed bootstrap: the same prepare+compress path the
                // snapshot writer uses, shipped as base64 `BLOCK` lines in
                // one chunk. The follower CRC-checks every block and
                // refetches the whole bootstrap on any mismatch.
                let blocks = snapshot::prepare_blocks(&subs, &self.schema, self.partitions, None)?;
                let mut chunk = format!("+OK replicate colstore {} {n} {current}", blocks.len());
                for block in &blocks {
                    chunk.push('\n');
                    chunk.push_str(&format!(
                        "BLOCK {} {} {} {:08x} {}",
                        block.partition,
                        block.rows,
                        block.raw_len,
                        block.crc,
                        b64::encode(&block.data)
                    ));
                }
                let nblocks = blocks.len();
                ServerStats::add(&self.stats.repl_bootstrap_bytes, chunk.len() as u64 + 1);
                send_chunk(&*conn, chunk).map_err(io::Error::other)?;
                StreamStart::Colstore {
                    blocks: nblocks,
                    subs: n,
                    seq: current,
                }
            } else {
                let mut chunk = format!("+OK replicate snapshot {n} {current}");
                for sub in &subs {
                    chunk.push('\n');
                    chunk.push_str(&log::render_frame(
                        current,
                        &ChurnOp::Sub(sub),
                        &self.schema,
                    ));
                }
                ServerStats::add(&self.stats.repl_bootstrap_bytes, chunk.len() as u64 + 1);
                send_chunk(&*conn, chunk).map_err(io::Error::other)?;
                StreamStart::Snapshot {
                    subs: n,
                    seq: current,
                }
            };
            self.repl.register(follower_id, conn, from_seq.min(current));
            start
        };
        self.stats.repl_followers.store(
            self.repl.follower_count() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        Ok(start)
    }

    /// CRC field of the retained log frame at exactly `seq`, if present
    /// (`seq` must fall inside the retained window `(base, head]`).
    fn frame_crc_at(log: &ChurnLog, seq: u64) -> Option<u32> {
        if seq == 0 || seq <= log.base_seq() {
            return None;
        }
        let frames = log.frames_after(seq - 1).ok()?;
        frames.iter().find_map(|f| {
            let mut it = f.split(' ');
            let crc = u32::from_str_radix(it.next()?, 16).ok()?;
            (it.next()?.parse::<u64>().ok()? == seq).then_some(crc)
        })
    }

    /// CRC field of this node's own log frame at `seq` — the follower
    /// side of the truncate handshake probes its local history with this
    /// before agreeing to rewind.
    pub fn local_frame_crc(&self, seq: u64) -> Option<u32> {
        Self::frame_crc_at(&self.inner.lock().log, seq)
    }

    /// Records a follower's `REPLACK` and refreshes the lag gauge.
    pub fn follower_ack(&self, follower_id: u64, acked_seq: u64) {
        let current = self.current_seq();
        let lag = self.repl.ack(follower_id, acked_seq, current);
        self.stats
            .repl_lag_records
            .store(lag, std::sync::atomic::Ordering::Relaxed);
    }

    /// Drops a follower stream (its connection closed). Idempotent.
    pub fn remove_follower(&self, follower_id: u64) {
        self.repl.remove(follower_id);
        let count = self.repl.follower_count() as u64;
        self.stats
            .repl_followers
            .store(count, std::sync::atomic::Ordering::Relaxed);
        if count == 0 {
            self.stats
                .repl_lag_records
                .store(0, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Number of live follower streams.
    pub fn follower_count(&self) -> usize {
        self.repl.follower_count()
    }

    /// Minimum `REPLACK`ed sequence across live followers (own seq with
    /// none) — what `ROLE` reports as `acked` so the router's promotion
    /// floor tracks the chain's durably confirmed progress.
    pub fn followers_min_acked(&self) -> u64 {
        self.repl.min_acked(self.current_seq())
    }

    /// Applies one replicated record on a follower: engine first, then the
    /// frame is appended *verbatim* (primary's sequence and CRC) to the
    /// local log, with the same rollback discipline as the client churn
    /// path. Returns `Ok(false)` for an already-applied sequence (stream
    /// overlap after a reconnect) — nothing written.
    pub fn apply_replicated(
        &self,
        engine: &ShardedEngine,
        frame: &str,
        record: &ReplayRecord,
    ) -> Result<bool, ChurnError> {
        let mut inner = self.inner.lock();
        if record.seq <= inner.log.seq() {
            return Ok(false);
        }
        self.gate(&mut inner)?;
        // Engine apply is best-effort idempotent: a duplicate SUB or an
        // unknown UNSUB can legitimately arrive after a bootstrap overlap;
        // the frame is still appended so the local log mirrors the stream.
        let engine_added = match &record.op {
            ReplayOp::Sub(sub) => match engine.subscribe(sub) {
                Ok(added) => added,
                Err(e) => return Err(ChurnError::Engine(e)),
            },
            ReplayOp::Unsub(id) => {
                engine.unsubscribe(*id);
                false
            }
        };
        match inner
            .log
            .append_frame(frame, record.seq, self.fsync_per_append())
        {
            Ok(()) => {
                ServerStats::add(&self.stats.persist_appends, 1);
                self.note_success(&mut inner);
                match &record.op {
                    ReplayOp::Sub(sub) => {
                        self.mark_dirty(&mut inner, sub.id(), record.seq);
                        self.catalog.write().insert(sub.id(), sub.clone());
                    }
                    ReplayOp::Unsub(id) => {
                        self.mark_dirty(&mut inner, *id, record.seq);
                        self.catalog.write().remove(id);
                    }
                }
                // Chain hop: forward the frame *verbatim* (the primary's
                // sequence and CRC survive every hop) to any followers
                // replicating from this node — persisted here first, so
                // each hop only forwards what it can itself re-serve.
                if self.repl.has_followers() {
                    self.repl.broadcast(frame, record.seq, &self.stats);
                }
                Ok(true)
            }
            Err(e) => {
                match &record.op {
                    ReplayOp::Sub(sub) => {
                        if engine_added {
                            engine.unsubscribe(sub.id());
                        }
                    }
                    ReplayOp::Unsub(id) => {
                        if let Some(sub) = self.catalog.read().get(id).cloned() {
                            let _ = engine.subscribe(&sub);
                        }
                    }
                }
                self.note_failure(&mut inner);
                Err(ChurnError::Persist(e.to_string()))
            }
        }
    }

    /// Replaces the follower's entire local state with the primary's
    /// snapshot at `seq`: engine contents swapped, a local snapshot
    /// written, and the log truncated with both cursors jumped to `seq`.
    /// Returns `(removed, restored)` subscription counts.
    pub fn bootstrap_replace(
        &self,
        engine: &ShardedEngine,
        mut subs: Vec<Subscription>,
        seq: u64,
    ) -> io::Result<(usize, usize)> {
        subs.sort_by_key(|s| s.id());
        // Exclude concurrent snapshot passes: both mutate the chain state
        // and the on-disk manifest.
        let _guard = self.snap_lock.lock();
        let mut inner = self.inner.lock();
        let mut catalog = self.catalog.write();
        let removed = catalog.len();
        for id in catalog.keys() {
            engine.unsubscribe(*id);
        }
        engine
            .bulk_restore(&subs)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        snapshot::write(
            &self.config.dir,
            &self.schema,
            &subs,
            seq,
            self.config.format,
            self.partitions,
        )?;
        inner.log.rotate_to(seq)?;
        inner.last_snapshot = Instant::now();
        inner.chain = (self.config.format == SnapshotFormat::Colstore).then(|| Manifest {
            partitions: self.partitions,
            full: (snapshot::SNAPSHOT_FILE.to_string(), seq),
            deltas: Vec::new(),
        });
        inner.dirty_seq.fill(seq);
        *catalog = subs.iter().map(|s| (s.id(), s.clone())).collect();
        ServerStats::add(&self.stats.snapshots_taken, 1);
        // History just jumped: downstream chain followers must
        // re-handshake against the new log rather than silently skip the
        // sequence gap.
        self.repl.kick_all(&self.stats);
        Ok((removed, subs.len()))
    }

    /// Covered-suffix rewind — the follower side of the `truncate`
    /// handshake. The primary confirmed (by frame CRC) that this node's
    /// history agrees with its own up to `seq`, so the local suffix past
    /// `seq` is divergent-but-unacked (the router's promotion floor never
    /// elects a primary below the acked sequence) and can be discarded
    /// without any state transfer: the catalog at `seq` is rebuilt from
    /// the local snapshot + log prefix and installed through the same
    /// wholesale-swap path a bootstrap uses (which also truncates the log
    /// to `seq` and kicks downstream chain followers). Returns the
    /// installed catalog so the caller can rebuild its liveness maps.
    pub fn rewind_to(&self, engine: &ShardedEngine, seq: u64) -> io::Result<Vec<Subscription>> {
        let mut catalog: HashMap<SubId, Subscription> = HashMap::new();
        let mut base = 0u64;
        match snapshot::load(&self.config.dir, &self.schema) {
            Ok(Some(snap)) => {
                if snap.seq > seq {
                    return Err(io::Error::other(format!(
                        "local snapshot at {} already covers {seq}; cannot rewind",
                        snap.seq
                    )));
                }
                base = snap.seq;
                for sub in snap.subs {
                    catalog.insert(sub.id(), sub);
                }
            }
            Ok(None) => {}
            Err(snapshot::SnapshotError::Io(e)) => return Err(e),
            Err(e) => {
                return Err(io::Error::other(format!("rewind snapshot load: {e:?}")));
            }
        }
        let replay = log::replay(&self.config.dir, &self.schema)?;
        for record in &replay.records {
            if record.seq <= base || record.seq > seq {
                continue;
            }
            match &record.op {
                ReplayOp::Sub(sub) => {
                    catalog.insert(sub.id(), sub.clone());
                }
                ReplayOp::Unsub(id) => {
                    catalog.remove(id);
                }
            }
        }
        let subs: Vec<Subscription> = catalog.into_values().collect();
        self.bootstrap_replace(engine, subs.clone(), seq)?;
        ServerStats::add(&self.stats.repl_truncates, 1);
        Ok(subs)
    }
}
