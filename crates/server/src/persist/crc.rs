//! CRC-32 (ISO-HDLC) — re-exported from `apcm-colstore`, which owns the
//! implementation so snapshot blocks, churn-log frames, and the
//! replication wire all share one checksum.

pub use apcm_colstore::crc::crc32;
