//! Fault-injection registry — re-exported from `apcm-colstore` so the
//! broker's `persist.*` / `repl.*` failpoints and colstore's own
//! `colstore.*` points share one process-global registry (tests arm and
//! reset them through either path). See `apcm_colstore::failpoint` for
//! the semantics.

pub use apcm_colstore::failpoint::{arm, disarm, fire, injected_error, reset, FailAction};
