//! Checksummed snapshot of the live subscription set, in one of two
//! formats behind a single auto-detecting loader:
//!
//! **Text v1** (`# apcm-snapshot v1`) — the original human-readable
//! format: `seq` / `attr` / `sub` lines with a CRC trailer. Still fully
//! readable on recovery (migration path) and still writable via
//! `--snapshot-format text`.
//!
//! **Colstore v2** (`APCM2COL` magic, see `apcm-colstore`) — the default:
//! block-columnar, dictionary-encoded, LZSS-compressed, CRC-framed per
//! block with a footer index. Subscriptions are routed to partitions with
//! the same Fibonacci hash the shards use, columnarized per partition in
//! parallel, and decoded the same way on recovery. v2 additionally
//! supports *delta* snapshot files (re-serializing only dirtied
//! partitions) chained onto the last full snapshot by a manifest; a
//! corrupt delta drops the chain back to its last consistent prefix —
//! the churn log (which only full snapshots rotate) covers the rest.
//!
//! Either format is written to a temp file, fsynced, then renamed over
//! the live name, so a crash mid-write never damages the previous
//! snapshot. The `persist.snapshot.write` / `persist.snapshot.rename`
//! failpoints guard both formats; colstore adds `colstore.block.write`
//! and `colstore.manifest.rename` inside the v2 write path.

use apcm_bexpr::{parser, Schema, SubId, Subscription};
use apcm_colstore::file as colfile;
use apcm_colstore::manifest as colmanifest;
use apcm_colstore::{ColError, Row, SnapshotKind};
use std::io::{self, Write};
use std::path::Path;

use super::failpoint::{self, FailAction};
use crate::config::SnapshotFormat;
use crate::shard::route_partition;
use apcm_colstore::crc::crc32;

/// File name of the live snapshot inside the persist directory.
pub const SNAPSHOT_FILE: &str = "snapshot.apcm";
const TMP_FILE: &str = "snapshot.apcm.tmp";
const HEADER: &str = "# apcm-snapshot v1";

/// Delta snapshot files live next to the full one; only the manifest
/// gives them meaning (an orphaned delta is ignored).
pub fn delta_file(idx: u32) -> String {
    format!("snapshot-delta-{idx}.col")
}

/// A successfully loaded snapshot (possibly a full+delta chain).
#[derive(Debug)]
pub struct SnapshotData {
    /// Subscriptions live at snapshot time, ascending id order.
    pub subs: Vec<Subscription>,
    /// Highest churn-log sequence the snapshot covers; replay skips
    /// records at or below it.
    pub seq: u64,
    /// Delta files applied on top of the full snapshot (colstore chains).
    pub deltas_applied: u64,
    /// Delta files dropped because they (or a predecessor) failed
    /// validation — the chain fell back to its last consistent prefix.
    pub deltas_dropped: u64,
    /// Human-readable description of anything unusual.
    pub notes: Vec<String>,
}

impl SnapshotData {
    fn bare(subs: Vec<Subscription>, seq: u64) -> Self {
        Self {
            subs,
            seq,
            deltas_applied: 0,
            deltas_dropped: 0,
            notes: Vec::new(),
        }
    }
}

/// Why a snapshot could not be used.
#[derive(Debug)]
pub enum SnapshotError {
    Io(io::Error),
    /// Checksum/format damage — recovery continues from the log alone.
    Corrupt(String),
    /// The snapshot was taken under a different schema. Starting anyway
    /// would silently mis-evaluate every expression, so this is fatal.
    SchemaMismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapshotError::SchemaMismatch(msg) => write!(f, "snapshot schema mismatch: {msg}"),
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The `attr <name> <min> <max>` lines both formats embed and recovery
/// validates attribute-by-attribute against the serving schema.
fn schema_lines(schema: &Schema) -> Vec<String> {
    schema
        .iter()
        .map(|(_, info)| {
            format!(
                "attr {} {} {}",
                info.name(),
                info.domain().min(),
                info.domain().max()
            )
        })
        .collect()
}

fn check_schema_lines(lines: &[String], schema: &Schema) -> Result<(), SnapshotError> {
    let expected = schema_lines(schema);
    if lines != expected.as_slice() {
        return Err(SnapshotError::SchemaMismatch(format!(
            "snapshot schema section ({} attrs) disagrees with serving schema ({} attrs)",
            lines.len(),
            expected.len()
        )));
    }
    Ok(())
}

/// Renders one subscription's predicate atoms (the colstore row form —
/// re-joined with ` AND ` and re-parsed on the way back in).
fn sub_to_row(sub: &Subscription, schema: &Schema) -> Row {
    Row {
        id: u64::from(sub.id().0),
        atoms: sub
            .predicates()
            .iter()
            .map(|p| p.display(schema).to_string())
            .collect(),
    }
}

pub(crate) fn row_to_sub(row: &Row, schema: &Schema) -> Result<Subscription, SnapshotError> {
    let id = u32::try_from(row.id)
        .map_err(|_| SnapshotError::Corrupt(format!("subscription id {} exceeds u32", row.id)))?;
    parser::parse_subscription_with_id(schema, SubId(id), &row.atoms.join(" AND ")).map_err(|e| {
        SnapshotError::SchemaMismatch(format!("subscription {id} no longer parses: {e}"))
    })
}

/// Groups subscriptions by partition (same routing hash as the shards)
/// and columnarizes each partition on its own scoped thread — the
/// *prepare* half of the v2 write (also the replication bootstrap's
/// block source). Input must be sorted by id.
pub(crate) fn prepare_blocks(
    subs: &[Subscription],
    schema: &Schema,
    partitions: u32,
    only: Option<&[u32]>,
) -> io::Result<Vec<colfile::CompressedBlock>> {
    let mut groups: Vec<Vec<Row>> = vec![Vec::new(); partitions as usize];
    for sub in subs {
        let p = route_partition(sub.id(), partitions as usize);
        if only.is_none_or(|set| set.contains(&(p as u32))) {
            groups[p].push(sub_to_row(sub, schema));
        }
    }
    let mut results: Vec<io::Result<Vec<colfile::CompressedBlock>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(p, rows)| {
                scope.spawn(move || -> io::Result<Vec<colfile::CompressedBlock>> {
                    let prepared =
                        colfile::prepare_partition(p as u32, rows, colfile::DEFAULT_BLOCK_ROWS)
                            .map_err(|e| io::Error::other(e.to_string()))?;
                    Ok(prepared.into_iter().map(colfile::compress_block).collect())
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("prepare thread panicked"));
        }
    });
    let mut blocks = Vec::new();
    for result in results {
        blocks.extend(result?);
    }
    blocks.sort_by_key(|b| b.partition);
    Ok(blocks)
}

/// Writes a full snapshot atomically in the requested format and, for
/// colstore, resets the manifest chain to just this full (stale delta
/// files are unlinked best-effort — nothing references them anymore).
/// Returns the byte size written.
pub fn write(
    dir: &Path,
    schema: &Schema,
    subs: &[Subscription],
    seq: u64,
    format: SnapshotFormat,
    partitions: u32,
) -> io::Result<u64> {
    if let Some(FailAction::Error | FailAction::TornWrite(_)) =
        failpoint::fire("persist.snapshot.write")
    {
        return Err(failpoint::injected_error("persist.snapshot.write"));
    }

    let tmp = dir.join(TMP_FILE);
    let bytes = match format {
        SnapshotFormat::Text => {
            let mut body = String::new();
            body.push_str(HEADER);
            body.push('\n');
            body.push_str(&format!("seq {seq}\n"));
            for line in schema_lines(schema) {
                body.push_str(&line);
                body.push('\n');
            }
            for sub in subs {
                body.push_str(&format!("sub {} {}\n", sub.id().0, sub.display(schema)));
            }
            let trailer = format!("# crc {:08x} subs {}\n", crc32(body.as_bytes()), subs.len());
            body.push_str(&trailer);
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(body.as_bytes())?;
            file.sync_data()?;
            body.len() as u64
        }
        SnapshotFormat::Colstore => {
            let blocks = prepare_blocks(subs, schema, partitions, None)?;
            let meta = colfile::FileMeta {
                kind: SnapshotKind::Full,
                seq,
                partitions,
                included: (0..partitions).collect(),
                schema_lines: schema_lines(schema),
                total_subs: subs.len() as u64,
            };
            match colfile::write_file(&tmp, &meta, &blocks) {
                Ok(bytes) => bytes,
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e);
                }
            }
        }
    };

    if let Some(FailAction::Error | FailAction::TornWrite(_)) =
        failpoint::fire("persist.snapshot.rename")
    {
        let _ = std::fs::remove_file(&tmp);
        return Err(failpoint::injected_error("persist.snapshot.rename"));
    }
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Best-effort directory sync so the rename itself is durable.
    if let Ok(dirf) = std::fs::File::open(dir) {
        let _ = dirf.sync_all();
    }

    // Chain bookkeeping: a new full supersedes every delta. If the
    // manifest write fails (crash window or the `colstore.manifest.rename`
    // failpoint) the stale manifest's full-seq no longer matches the file
    // and recovery ignores it — the full + the unrotated log still cover
    // everything acknowledged.
    let stale: Vec<String> = match colmanifest::read(dir) {
        Ok(Some(m)) => m.deltas.iter().map(|(name, _)| name.clone()).collect(),
        _ => Vec::new(),
    };
    match format {
        SnapshotFormat::Colstore => {
            colmanifest::write(
                dir,
                &colmanifest::Manifest {
                    partitions,
                    full: (SNAPSHOT_FILE.to_string(), seq),
                    deltas: Vec::new(),
                },
            )?;
        }
        SnapshotFormat::Text => {
            let _ = std::fs::remove_file(dir.join(colmanifest::MANIFEST_FILE));
        }
    }
    for name in stale {
        let _ = std::fs::remove_file(dir.join(name));
    }
    Ok(bytes)
}

/// Writes one delta snapshot file (colstore only): full images of the
/// `included` partitions drawn from `subs` at `seq`, appended to the
/// manifest chain. The churn log is *not* rotated by deltas — dropping a
/// corrupt delta on recovery can always be healed from the log.
pub fn write_delta(
    dir: &Path,
    schema: &Schema,
    subs: &[Subscription],
    seq: u64,
    partitions: u32,
    included: &[u32],
    chain: &colmanifest::Manifest,
) -> io::Result<(u64, colmanifest::Manifest)> {
    if let Some(FailAction::Error | FailAction::TornWrite(_)) =
        failpoint::fire("persist.snapshot.write")
    {
        return Err(failpoint::injected_error("persist.snapshot.write"));
    }
    let blocks = prepare_blocks(subs, schema, partitions, Some(included))?;
    let total: u64 = blocks.iter().map(|b| u64::from(b.rows)).sum();
    let meta = colfile::FileMeta {
        kind: SnapshotKind::Delta,
        seq,
        partitions,
        included: included.to_vec(),
        schema_lines: schema_lines(schema),
        total_subs: total,
    };
    let name = delta_file(chain.deltas.len() as u32 + 1);
    let tmp = dir.join(format!("{name}.tmp"));
    let bytes = match colfile::write_file(&tmp, &meta, &blocks) {
        Ok(bytes) => bytes,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    };
    std::fs::rename(&tmp, dir.join(&name))?;
    if let Ok(dirf) = std::fs::File::open(dir) {
        let _ = dirf.sync_all();
    }
    let mut next = chain.clone();
    next.deltas.push((name, seq));
    colmanifest::write(dir, &next)?;
    Ok((bytes, next))
}

/// Loads the snapshot state at `dir`, if any: the manifest chain when one
/// is valid, else the bare snapshot file (auto-detecting text v1 vs
/// colstore v2). `Ok(None)` when nothing exists; `Err(Corrupt)` when the
/// full snapshot exists but fails validation (the caller reports it and
/// recovers from the log alone). A corrupt *delta* is never an error:
/// the chain falls back to its last consistent prefix, with the drop
/// counted in the returned data.
pub fn load(dir: &Path, schema: &Schema) -> Result<Option<SnapshotData>, SnapshotError> {
    let manifest = match colmanifest::read(dir) {
        Ok(m) => m,
        Err(ColError::Corrupt(why)) => {
            // A bad manifest orphans the chain, not the full snapshot.
            let mut data = match load_bare(dir, schema)? {
                Some(data) => data,
                None => return Ok(None),
            };
            data.notes
                .push(format!("manifest unreadable ({why}); chain ignored"));
            return Ok(Some(data));
        }
        Err(ColError::Io(e)) => return Err(e.into()),
    };
    let Some(manifest) = manifest else {
        return load_bare(dir, schema);
    };

    let mut data = match load_bare(dir, schema)? {
        Some(data) => data,
        None => return Ok(None),
    };
    if data.seq != manifest.full.1 {
        data.notes.push(format!(
            "manifest names full at seq {} but file is at seq {}; chain ignored",
            manifest.full.1, data.seq
        ));
        return Ok(Some(data));
    }

    // Apply deltas in order; the first invalid one ends the chain.
    let mut by_id: std::collections::HashMap<SubId, Subscription> =
        data.subs.into_iter().map(|s| (s.id(), s)).collect();
    let mut covered = data.seq;
    let mut applied = 0u64;
    for (i, (name, want_seq)) in manifest.deltas.iter().enumerate() {
        match load_delta(dir, name, *want_seq, covered, &manifest, schema) {
            Ok((rows_by_partition, included)) => {
                let partitions = manifest.partitions as usize;
                by_id
                    .retain(|id, _| !included.contains(&(route_partition(*id, partitions) as u32)));
                for sub in rows_by_partition {
                    by_id.insert(sub.id(), sub);
                }
                covered = *want_seq;
                applied += 1;
            }
            Err(why) => {
                let dropped = (manifest.deltas.len() - i) as u64;
                data.notes.push(format!(
                    "delta {name} invalid ({why}); dropped it and {} later delta(s), \
                     falling back to chain prefix at seq {covered}",
                    dropped - 1
                ));
                data.deltas_dropped = dropped;
                break;
            }
        }
    }
    let mut subs: Vec<Subscription> = by_id.into_values().collect();
    subs.sort_by_key(|s| s.id());
    data.subs = subs;
    data.seq = covered;
    data.deltas_applied = applied;
    Ok(Some(data))
}

/// Loads and validates one delta file. Any failure is a `String` reason —
/// the caller treats every failure mode identically (prefix fallback).
fn load_delta(
    dir: &Path,
    name: &str,
    want_seq: u64,
    covered: u64,
    manifest: &colmanifest::Manifest,
    schema: &Schema,
) -> Result<(Vec<Subscription>, Vec<u32>), String> {
    let loaded = colfile::read_file(&dir.join(name))
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "file missing".to_string())?;
    if loaded.meta.kind != SnapshotKind::Delta {
        return Err("not a delta file".into());
    }
    if loaded.meta.seq != want_seq {
        return Err(format!(
            "file seq {} disagrees with manifest seq {want_seq}",
            loaded.meta.seq
        ));
    }
    if want_seq < covered {
        return Err(format!("chain seq regresses ({want_seq} < {covered})"));
    }
    if loaded.meta.partitions != manifest.partitions {
        return Err(format!(
            "delta routed over {} partitions, chain over {}",
            loaded.meta.partitions, manifest.partitions
        ));
    }
    check_schema_lines(&loaded.meta.schema_lines, schema).map_err(|e| e.to_string())?;
    let mut subs = Vec::new();
    for block in &loaded.blocks {
        for row in block.decode().map_err(|e| e.to_string())? {
            subs.push(row_to_sub(&row, schema).map_err(|e| e.to_string())?);
        }
    }
    Ok((subs, loaded.meta.included.clone()))
}

/// Loads `snapshot.apcm` alone, auto-detecting the format by content.
fn load_bare(dir: &Path, schema: &Schema) -> Result<Option<SnapshotData>, SnapshotError> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if colfile::is_colstore(&bytes) {
        load_colstore(&bytes, schema).map(Some)
    } else {
        let text = String::from_utf8(bytes)
            .map_err(|_| SnapshotError::Corrupt("snapshot is neither colstore nor utf-8".into()))?;
        load_text(&text, schema).map(Some)
    }
}

/// Parses a colstore full snapshot: footer-validated, schema-checked,
/// then all blocks CRC-checked, decompressed, and parsed back into
/// subscriptions — block decode fans out partition-parallel on scoped
/// threads, feeding `ShardedEngine::bulk_restore` a ready sorted set.
fn load_colstore(bytes: &[u8], schema: &Schema) -> Result<SnapshotData, SnapshotError> {
    let loaded = colfile::parse_file(bytes).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    if loaded.meta.kind != SnapshotKind::Full {
        return Err(SnapshotError::Corrupt(
            "snapshot.apcm holds a delta file, not a full snapshot".into(),
        ));
    }
    check_schema_lines(&loaded.meta.schema_lines, schema)?;

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(loaded.blocks.len().max(1));
    let chunk = loaded.blocks.len().div_ceil(threads.max(1)).max(1);
    let mut results: Vec<Result<Vec<Subscription>, SnapshotError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = loaded
            .blocks
            .chunks(chunk)
            .map(|blocks| {
                scope.spawn(move || {
                    let mut subs = Vec::new();
                    for block in blocks {
                        let rows = block
                            .decode()
                            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
                        for row in rows {
                            subs.push(row_to_sub(&row, schema)?);
                        }
                    }
                    Ok(subs)
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("decode thread panicked"));
        }
    });
    let mut subs = Vec::with_capacity(loaded.meta.total_subs as usize);
    for result in results {
        subs.extend(result?);
    }
    subs.sort_by_key(|s| s.id());
    if subs.len() as u64 != loaded.meta.total_subs {
        return Err(SnapshotError::Corrupt(format!(
            "footer says {} subs, blocks decode to {}",
            loaded.meta.total_subs,
            subs.len()
        )));
    }
    Ok(SnapshotData::bare(subs, loaded.meta.seq))
}

/// Parses the text v1 format (read-only since v2 became the default).
fn load_text(data: &str, schema: &Schema) -> Result<SnapshotData, SnapshotError> {
    // Split off the trailer (the final non-empty line).
    let trimmed = data.trim_end_matches('\n');
    let Some(trailer_start) = trimmed.rfind('\n') else {
        return Err(SnapshotError::Corrupt("missing trailer".into()));
    };
    let trailer = &trimmed[trailer_start + 1..];
    let body = &data[..trailer_start + 1];
    let mut parts = trailer.split_whitespace();
    if (parts.next(), parts.next()) != (Some("#"), Some("crc")) {
        return Err(SnapshotError::Corrupt(format!(
            "bad trailer line `{trailer}`"
        )));
    }
    let stored = parts
        .next()
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .ok_or_else(|| SnapshotError::Corrupt("trailer missing crc".into()))?;
    let count: usize = match (parts.next(), parts.next()) {
        (Some("subs"), Some(n)) => n
            .parse()
            .map_err(|_| SnapshotError::Corrupt("bad subs count".into()))?,
        _ => return Err(SnapshotError::Corrupt("trailer missing subs count".into())),
    };
    let actual = crc32(body.as_bytes());
    if stored != actual {
        return Err(SnapshotError::Corrupt(format!(
            "crc mismatch (stored {stored:08x}, actual {actual:08x})"
        )));
    }

    // Body is CRC-clean; parse it strictly (any error now is a bug or
    // schema drift, not disk damage).
    let mut lines = body.lines();
    if lines.next() != Some(HEADER) {
        return Err(SnapshotError::Corrupt("bad header".into()));
    }
    let mut seq = 0u64;
    let mut subs = Vec::new();
    let mut attr_idx = 0usize;
    let expected_attrs: Vec<_> = schema.iter().collect();
    for line in lines {
        let Some((kind, rest)) = line.split_once(' ') else {
            return Err(SnapshotError::Corrupt(format!("bad line `{line}`")));
        };
        match kind {
            "seq" => {
                seq = rest
                    .parse()
                    .map_err(|_| SnapshotError::Corrupt(format!("bad seq `{rest}`")))?;
            }
            "attr" => {
                // Validate against the serving schema attribute-by-attribute.
                let mut parts = rest.split_whitespace();
                let (name, min, max) = (parts.next(), parts.next(), parts.next());
                let expected = expected_attrs.get(attr_idx);
                let matches = match (name, min, max, expected) {
                    (Some(n), Some(lo), Some(hi), Some((_, info))) => {
                        n == info.name()
                            && lo.parse() == Ok(info.domain().min())
                            && hi.parse() == Ok(info.domain().max())
                    }
                    _ => false,
                };
                if !matches {
                    return Err(SnapshotError::SchemaMismatch(format!(
                        "snapshot attr {attr_idx} is `{rest}`, serving schema disagrees"
                    )));
                }
                attr_idx += 1;
            }
            "sub" => {
                let (id_text, expr) = rest.split_once(' ').ok_or_else(|| {
                    SnapshotError::Corrupt(format!("sub line missing expression: `{rest}`"))
                })?;
                let id: u32 = id_text.parse().map_err(|_| {
                    SnapshotError::Corrupt(format!("bad subscription id `{id_text}`"))
                })?;
                let sub =
                    parser::parse_subscription_with_id(schema, SubId(id), expr).map_err(|e| {
                        SnapshotError::SchemaMismatch(format!(
                            "subscription {id} no longer parses: {e}"
                        ))
                    })?;
                subs.push(sub);
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown record kind `{other}`"
                )))
            }
        }
    }
    if attr_idx != schema.dims() {
        return Err(SnapshotError::SchemaMismatch(format!(
            "snapshot has {attr_idx} attributes, serving schema has {}",
            schema.dims()
        )));
    }
    if subs.len() != count {
        return Err(SnapshotError::Corrupt(format!(
            "trailer says {count} subs, body has {}",
            subs.len()
        )));
    }
    Ok(SnapshotData::bare(subs, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apcm_snap_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn corpus(schema: &Schema, n: u32) -> Vec<Subscription> {
        (0..n)
            .map(|id| {
                parser::parse_subscription_with_id(schema, SubId(id), &format!("a0 <= {}", id % 8))
                    .unwrap()
            })
            .collect()
    }

    fn write_fmt(
        dir: &Path,
        schema: &Schema,
        subs: &[Subscription],
        seq: u64,
        format: SnapshotFormat,
    ) -> io::Result<u64> {
        write(dir, schema, subs, seq, format, 3)
    }

    #[test]
    fn round_trip_both_formats() {
        let schema = Schema::uniform(3, 16);
        for format in [SnapshotFormat::Text, SnapshotFormat::Colstore] {
            let dir = tmpdir(&format!("roundtrip_{}", format.name()));
            let subs = corpus(&schema, 40);
            write_fmt(&dir, &schema, &subs, 123, format).unwrap();
            let loaded = load(&dir, &schema).unwrap().unwrap();
            assert_eq!(loaded.seq, 123);
            assert_eq!(loaded.subs, subs);
            assert_eq!(loaded.deltas_applied, 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn colstore_is_smaller_than_text() {
        let schema = Schema::uniform(8, 64);
        let dir = tmpdir("sizes");
        let subs: Vec<Subscription> = (0..2000)
            .map(|id| {
                parser::parse_subscription_with_id(
                    &schema,
                    SubId(id),
                    &format!(
                        "a{} <= {} AND a{} >= {}",
                        id % 8,
                        id % 50,
                        (id + 3) % 8,
                        id % 7
                    ),
                )
                .unwrap()
            })
            .collect();
        let text = write_fmt(&dir, &schema, &subs, 1, SnapshotFormat::Text).unwrap();
        let col = write_fmt(&dir, &schema, &subs, 1, SnapshotFormat::Colstore).unwrap();
        assert!(
            col * 3 <= text,
            "colstore {col} bytes not >=3x smaller than text {text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_is_none() {
        let dir = tmpdir("missing");
        assert!(load(&dir, &Schema::uniform(2, 8)).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_in_both_formats() {
        let schema = Schema::uniform(2, 8);
        for format in [SnapshotFormat::Text, SnapshotFormat::Colstore] {
            let dir = tmpdir(&format!("corrupt_{}", format.name()));
            write_fmt(&dir, &schema, &corpus(&schema, 10), 7, format).unwrap();
            let path = dir.join(SNAPSHOT_FILE);
            let mut data = std::fs::read(&path).unwrap();
            let mid = data.len() / 2;
            data[mid] ^= 0x01;
            std::fs::write(&path, &data).unwrap();
            match load(&dir, &schema) {
                Err(SnapshotError::Corrupt(_)) => {}
                other => panic!("{}: expected Corrupt, got {other:?}", format.name()),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn schema_mismatch_is_fatal_in_both_formats() {
        let schema = Schema::uniform(2, 8);
        for format in [SnapshotFormat::Text, SnapshotFormat::Colstore] {
            let dir = tmpdir(&format!("mismatch_{}", format.name()));
            write_fmt(&dir, &schema, &corpus(&schema, 5), 1, format).unwrap();
            match load(&dir, &Schema::uniform(3, 8)) {
                Err(SnapshotError::SchemaMismatch(_)) => {}
                other => panic!("expected SchemaMismatch, got {other:?}"),
            }
            match load(&dir, &Schema::uniform(2, 4)) {
                Err(SnapshotError::SchemaMismatch(_)) => {}
                other => panic!("expected SchemaMismatch, got {other:?}"),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn write_failpoint_preserves_previous_snapshot() {
        let schema = Schema::uniform(2, 8);
        for format in [SnapshotFormat::Text, SnapshotFormat::Colstore] {
            let dir = tmpdir(&format!("fp_write_{}", format.name()));
            write_fmt(&dir, &schema, &corpus(&schema, 5), 1, format).unwrap();
            failpoint::arm("persist.snapshot.write", FailAction::Error, Some(1));
            assert!(write_fmt(&dir, &schema, &corpus(&schema, 9), 2, format).is_err());
            let loaded = load(&dir, &schema).unwrap().unwrap();
            assert_eq!(loaded.seq, 1);
            assert_eq!(loaded.subs.len(), 5);
            failpoint::reset();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn delta_chain_round_trips_and_drops_corrupt_suffix() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("chain");
        let partitions = 3u32;
        let all = corpus(&schema, 30);
        // Full at seq 10 with the first 20 subs.
        write(
            &dir,
            &schema,
            &all[..20],
            10,
            SnapshotFormat::Colstore,
            partitions,
        )
        .unwrap();
        let chain = colmanifest::read(&dir).unwrap().unwrap();
        // Delta 1 at seq 15: subs 20..25 arrive — their partitions get
        // re-serialized from the full state plus the new subs.
        let state1: Vec<Subscription> = all[..25].to_vec();
        let touched1: Vec<u32> = (20..25)
            .map(|i| route_partition(all[i].id(), partitions as usize) as u32)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let (_, chain) =
            write_delta(&dir, &schema, &state1, 15, partitions, &touched1, &chain).unwrap();
        // Delta 2 at seq 18: subs 25..30.
        let state2: Vec<Subscription> = all.clone();
        let touched2: Vec<u32> = (25..30)
            .map(|i| route_partition(all[i].id(), partitions as usize) as u32)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let (_, _chain) =
            write_delta(&dir, &schema, &state2, 18, partitions, &touched2, &chain).unwrap();

        let loaded = load(&dir, &schema).unwrap().unwrap();
        assert_eq!(loaded.seq, 18);
        assert_eq!(loaded.subs, all);
        assert_eq!(loaded.deltas_applied, 2);
        assert_eq!(loaded.deltas_dropped, 0);

        // Corrupt delta 2: the chain falls back to full + delta 1.
        let d2 = dir.join(delta_file(2));
        let mut bytes = std::fs::read(&d2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&d2, &bytes).unwrap();
        let loaded = load(&dir, &schema).unwrap().unwrap();
        assert_eq!(loaded.seq, 15);
        assert_eq!(loaded.subs, state1);
        assert_eq!(loaded.deltas_applied, 1);
        assert_eq!(loaded.deltas_dropped, 1);
        assert!(!loaded.notes.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_manifest_is_ignored_after_seq_mismatch() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("stale_manifest");
        let subs = corpus(&schema, 12);
        write(&dir, &schema, &subs, 5, SnapshotFormat::Colstore, 2).unwrap();
        // Simulate the crash window: a newer full landed but the manifest
        // still names the old seq.
        colmanifest::write(
            &dir,
            &colmanifest::Manifest {
                partitions: 2,
                full: (SNAPSHOT_FILE.to_string(), 3),
                deltas: vec![("snapshot-delta-1.col".into(), 4)],
            },
        )
        .unwrap();
        let loaded = load(&dir, &schema).unwrap().unwrap();
        assert_eq!(loaded.seq, 5);
        assert_eq!(loaded.subs, subs);
        assert_eq!(loaded.deltas_applied, 0);
        assert!(loaded.notes.iter().any(|n| n.contains("chain ignored")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
