//! Checksummed snapshot of the live subscription set.
//!
//! The body reuses the workload `Trace` line syntax (`attr` / `sub`), so a
//! snapshot is human-readable and hand-editable like every other artifact
//! in this repository. Layout:
//!
//! ```text
//! # apcm-snapshot v1
//! seq <last-covered-log-sequence>
//! attr <name> <min> <max>
//! sub <id> <conjunction>
//! # crc <crc32:8-hex> subs <count>
//! ```
//!
//! The trailing CRC covers every byte before the trailer line; the `subs`
//! count cross-checks truncation. Snapshots are written to a temp file,
//! fsynced, then renamed over the live name, so a crash mid-write never
//! damages the previous snapshot.

use apcm_bexpr::{parser, Schema, SubId, Subscription};
use std::io::{self, Write};
use std::path::Path;

use super::crc::crc32;
use super::failpoint::{self, FailAction};

/// File name of the live snapshot inside the persist directory.
pub const SNAPSHOT_FILE: &str = "snapshot.apcm";
const TMP_FILE: &str = "snapshot.apcm.tmp";
const HEADER: &str = "# apcm-snapshot v1";

/// A successfully loaded snapshot.
#[derive(Debug)]
pub struct SnapshotData {
    /// Subscriptions live at snapshot time, ascending id order.
    pub subs: Vec<Subscription>,
    /// Highest churn-log sequence the snapshot covers; replay skips
    /// records at or below it.
    pub seq: u64,
}

/// Why a snapshot could not be used.
#[derive(Debug)]
pub enum SnapshotError {
    Io(io::Error),
    /// Checksum/format damage — recovery continues from the log alone.
    Corrupt(String),
    /// The snapshot was taken under a different schema. Starting anyway
    /// would silently mis-evaluate every expression, so this is fatal.
    SchemaMismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapshotError::SchemaMismatch(msg) => write!(f, "snapshot schema mismatch: {msg}"),
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Writes a snapshot atomically. Returns the byte size written.
pub fn write(dir: &Path, schema: &Schema, subs: &[Subscription], seq: u64) -> io::Result<u64> {
    let mut body = String::new();
    body.push_str(HEADER);
    body.push('\n');
    body.push_str(&format!("seq {seq}\n"));
    for (_, info) in schema.iter() {
        body.push_str(&format!(
            "attr {} {} {}\n",
            info.name(),
            info.domain().min(),
            info.domain().max()
        ));
    }
    for sub in subs {
        body.push_str(&format!("sub {} {}\n", sub.id().0, sub.display(schema)));
    }
    let trailer = format!("# crc {:08x} subs {}\n", crc32(body.as_bytes()), subs.len());
    body.push_str(&trailer);

    if let Some(FailAction::Error | FailAction::TornWrite(_)) =
        failpoint::fire("persist.snapshot.write")
    {
        return Err(failpoint::injected_error("persist.snapshot.write"));
    }

    let tmp = dir.join(TMP_FILE);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(body.as_bytes())?;
        file.sync_data()?;
    }
    if let Some(FailAction::Error | FailAction::TornWrite(_)) =
        failpoint::fire("persist.snapshot.rename")
    {
        let _ = std::fs::remove_file(&tmp);
        return Err(failpoint::injected_error("persist.snapshot.rename"));
    }
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Best-effort directory sync so the rename itself is durable.
    if let Ok(dirf) = std::fs::File::open(dir) {
        let _ = dirf.sync_all();
    }
    Ok(body.len() as u64)
}

/// Loads the snapshot at `dir`, if any. `Ok(None)` when no snapshot
/// exists; `Err(Corrupt)` when one exists but fails validation (the caller
/// reports it and recovers from the log alone).
pub fn load(dir: &Path, schema: &Schema) -> Result<Option<SnapshotData>, SnapshotError> {
    let path = dir.join(SNAPSHOT_FILE);
    let data = match std::fs::read_to_string(&path) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };

    // Split off the trailer (the final non-empty line).
    let trimmed = data.trim_end_matches('\n');
    let Some(trailer_start) = trimmed.rfind('\n') else {
        return Err(SnapshotError::Corrupt("missing trailer".into()));
    };
    let trailer = &trimmed[trailer_start + 1..];
    let body = &data[..trailer_start + 1];
    let mut parts = trailer.split_whitespace();
    if (parts.next(), parts.next()) != (Some("#"), Some("crc")) {
        return Err(SnapshotError::Corrupt(format!(
            "bad trailer line `{trailer}`"
        )));
    }
    let stored = parts
        .next()
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .ok_or_else(|| SnapshotError::Corrupt("trailer missing crc".into()))?;
    let count: usize = match (parts.next(), parts.next()) {
        (Some("subs"), Some(n)) => n
            .parse()
            .map_err(|_| SnapshotError::Corrupt("bad subs count".into()))?,
        _ => return Err(SnapshotError::Corrupt("trailer missing subs count".into())),
    };
    let actual = crc32(body.as_bytes());
    if stored != actual {
        return Err(SnapshotError::Corrupt(format!(
            "crc mismatch (stored {stored:08x}, actual {actual:08x})"
        )));
    }

    // Body is CRC-clean; parse it strictly (any error now is a bug or
    // schema drift, not disk damage).
    let mut lines = body.lines();
    if lines.next() != Some(HEADER) {
        return Err(SnapshotError::Corrupt("bad header".into()));
    }
    let mut seq = 0u64;
    let mut subs = Vec::new();
    let mut attr_idx = 0usize;
    let expected_attrs: Vec<_> = schema.iter().collect();
    for line in lines {
        let Some((kind, rest)) = line.split_once(' ') else {
            return Err(SnapshotError::Corrupt(format!("bad line `{line}`")));
        };
        match kind {
            "seq" => {
                seq = rest
                    .parse()
                    .map_err(|_| SnapshotError::Corrupt(format!("bad seq `{rest}`")))?;
            }
            "attr" => {
                // Validate against the serving schema attribute-by-attribute.
                let mut parts = rest.split_whitespace();
                let (name, min, max) = (parts.next(), parts.next(), parts.next());
                let expected = expected_attrs.get(attr_idx);
                let matches = match (name, min, max, expected) {
                    (Some(n), Some(lo), Some(hi), Some((_, info))) => {
                        n == info.name()
                            && lo.parse() == Ok(info.domain().min())
                            && hi.parse() == Ok(info.domain().max())
                    }
                    _ => false,
                };
                if !matches {
                    return Err(SnapshotError::SchemaMismatch(format!(
                        "snapshot attr {attr_idx} is `{rest}`, serving schema disagrees"
                    )));
                }
                attr_idx += 1;
            }
            "sub" => {
                let (id_text, expr) = rest.split_once(' ').ok_or_else(|| {
                    SnapshotError::Corrupt(format!("sub line missing expression: `{rest}`"))
                })?;
                let id: u32 = id_text.parse().map_err(|_| {
                    SnapshotError::Corrupt(format!("bad subscription id `{id_text}`"))
                })?;
                let sub =
                    parser::parse_subscription_with_id(schema, SubId(id), expr).map_err(|e| {
                        SnapshotError::SchemaMismatch(format!(
                            "subscription {id} no longer parses: {e}"
                        ))
                    })?;
                subs.push(sub);
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown record kind `{other}`"
                )))
            }
        }
    }
    if attr_idx != schema.dims() {
        return Err(SnapshotError::SchemaMismatch(format!(
            "snapshot has {attr_idx} attributes, serving schema has {}",
            schema.dims()
        )));
    }
    if subs.len() != count {
        return Err(SnapshotError::Corrupt(format!(
            "trailer says {count} subs, body has {}",
            subs.len()
        )));
    }
    Ok(Some(SnapshotData { subs, seq }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apcm_snap_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn corpus(schema: &Schema, n: u32) -> Vec<Subscription> {
        (0..n)
            .map(|id| {
                parser::parse_subscription_with_id(schema, SubId(id), &format!("a0 <= {}", id % 8))
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn round_trip() {
        let schema = Schema::uniform(3, 16);
        let dir = tmpdir("roundtrip");
        let subs = corpus(&schema, 40);
        write(&dir, &schema, &subs, 123).unwrap();
        let loaded = load(&dir, &schema).unwrap().unwrap();
        assert_eq!(loaded.seq, 123);
        assert_eq!(loaded.subs, subs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_is_none() {
        let dir = tmpdir("missing");
        assert!(load(&dir, &Schema::uniform(2, 8)).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("corrupt");
        write(&dir, &schema, &corpus(&schema, 10), 7).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        match load(&dir, &schema) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_mismatch_is_fatal() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("mismatch");
        write(&dir, &schema, &corpus(&schema, 5), 1).unwrap();
        match load(&dir, &Schema::uniform(3, 8)) {
            Err(SnapshotError::SchemaMismatch(_)) => {}
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        match load(&dir, &Schema::uniform(2, 4)) {
            Err(SnapshotError::SchemaMismatch(_)) => {}
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failpoint_preserves_previous_snapshot() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("fp_write");
        write(&dir, &schema, &corpus(&schema, 5), 1).unwrap();
        failpoint::arm("persist.snapshot.write", FailAction::Error, Some(1));
        assert!(write(&dir, &schema, &corpus(&schema, 9), 2).is_err());
        let loaded = load(&dir, &schema).unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.subs.len(), 5);
        failpoint::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
