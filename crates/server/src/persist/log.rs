//! Append-only churn log: one framed record per SUB/UNSUB.
//!
//! Record framing (one line each, ASCII):
//!
//! ```text
//! <crc32:8-hex> <seq> S <id> <expr>
//! <crc32:8-hex> <seq> U <id>
//! ```
//!
//! The CRC covers everything after the first space (`<seq> …`), so a torn
//! or bit-flipped record is detected on replay. Sequence numbers increase
//! monotonically across rotations; a snapshot records the sequence it
//! covers, and replay skips records at or below it.
//!
//! Append failures attempt an immediate *repair* — truncating the file
//! back to the last known-good length — so a partially written record
//! never corrupts the framing of the next successful append. If the repair
//! itself fails (disk gone, or the `persist.log.repair` failpoint), the
//! log is marked dirty and every append fails fast until a later repair
//! succeeds; recovery handles whatever tail the crash left behind.

use apcm_bexpr::{parser, Schema, SubId, Subscription};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::crc::crc32;
use super::failpoint::{self, FailAction};

/// File name of the live churn log inside the persist directory.
pub const LOG_FILE: &str = "churn.log";

/// One churn operation, borrowed for appending.
pub enum ChurnOp<'a> {
    Sub(&'a Subscription),
    Unsub(SubId),
}

/// One churn operation, owned, as read back by replay.
#[derive(Debug, Clone)]
pub enum ReplayOp {
    Sub(Subscription),
    Unsub(SubId),
}

/// A replayed record: sequence number plus the operation.
#[derive(Debug, Clone)]
pub struct ReplayRecord {
    pub seq: u64,
    pub op: ReplayOp,
}

/// What replay found (and fixed) in the log file.
#[derive(Debug, Default)]
pub struct LogReplay {
    /// CRC-valid records, in file order.
    pub records: Vec<ReplayRecord>,
    /// CRC-valid but semantically unparseable (schema drift) or mid-file
    /// corrupt records that were skipped.
    pub corrupt_skipped: u64,
    /// Bytes cut off the tail (torn final record / trailing garbage).
    pub truncated_bytes: u64,
    /// Highest sequence number seen in a valid record.
    pub last_seq: u64,
    /// Human-readable description of everything dropped.
    pub notes: Vec<String>,
}

/// The open, append-mode churn log.
pub struct ChurnLog {
    file: File,
    path: PathBuf,
    /// File length after the last successful append — the repair point.
    good_len: u64,
    /// Last sequence number assigned to a durable record.
    seq: u64,
    /// Sequence *before* the oldest record still retained in the file: a
    /// replication stream can serve `from_seq >= base_seq` from the log
    /// alone; anything older predates the last rotation and needs a
    /// snapshot bootstrap.
    base_seq: u64,
    /// Set when a failed append could not be repaired: the on-disk tail is
    /// suspect and appends fail fast until `repair` succeeds.
    dirty: bool,
}

fn render_payload(op: &ChurnOp<'_>, schema: &Schema) -> String {
    match op {
        ChurnOp::Sub(sub) => format!("S {} {}", sub.id().0, sub.display(schema)),
        ChurnOp::Unsub(id) => format!("U {}", id.0),
    }
}

/// Renders one CRC-framed record line (no trailing newline) exactly as it
/// lives in the log file — and exactly as it travels over a `REPLICATE`
/// stream, so one frame format serves both.
pub fn render_frame(seq: u64, op: &ChurnOp<'_>, schema: &Schema) -> String {
    let payload = format!("{seq} {}", render_payload(op, schema));
    format!("{:08x} {payload}", crc32(payload.as_bytes()))
}

/// Parses and CRC-checks one frame line (as produced by [`render_frame`]
/// or read from the log file). The error string says what was wrong.
pub fn parse_frame(line: &str, schema: &Schema) -> Result<ReplayRecord, String> {
    parse_record(line.as_bytes(), schema)
}

impl ChurnLog {
    /// Opens (creating if missing) the log for appending. `start_seq` is
    /// the highest sequence already durable (from snapshot + replay);
    /// `base_seq` is the sequence before the oldest record retained in the
    /// file (from replay — equal to `start_seq` when the file is empty).
    pub fn open(dir: &Path, start_seq: u64, base_seq: u64) -> io::Result<Self> {
        let path = dir.join(LOG_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let good_len = file.metadata()?.len();
        Ok(Self {
            file,
            path,
            good_len,
            seq: start_seq,
            base_seq,
            dirty: false,
        })
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Sequence before the oldest retained record (see the field docs).
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    pub fn len_bytes(&self) -> u64 {
        self.good_len
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. On success returns its sequence number; on
    /// failure the in-file damage is repaired (or the log marked dirty) and
    /// the error returned — the caller must roll back the in-memory
    /// operation so acknowledged state always equals durable state.
    pub fn append(&mut self, op: &ChurnOp<'_>, schema: &Schema, sync: bool) -> io::Result<u64> {
        if self.dirty {
            return Err(io::Error::other(
                "churn log has an unrepaired torn tail; append refused",
            ));
        }
        let seq = self.seq + 1;
        let line = format!("{}\n", render_frame(seq, op, schema));
        let bytes = line.as_bytes();

        let write_result = match failpoint::fire("persist.log.append") {
            Some(FailAction::Error) => Err(failpoint::injected_error("persist.log.append")),
            Some(FailAction::TornWrite(n)) => {
                let n = n.min(bytes.len());
                // Write the torn prefix for real so recovery sees it.
                self.file
                    .write_all(&bytes[..n])
                    .and_then(|()| self.file.flush())
                    .and(Err(failpoint::injected_error("persist.log.append")))
            }
            Some(FailAction::Stall(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.file.write_all(bytes).and_then(|()| self.file.flush())
            }
            None => self.file.write_all(bytes).and_then(|()| self.file.flush()),
        };

        match write_result {
            Ok(()) => {
                if sync {
                    if let Err(e) = self.file.sync_data() {
                        // The record may or may not be durable; treat as a
                        // failed append and cut it back out.
                        self.repair_after_failure();
                        return Err(e);
                    }
                }
                self.good_len += bytes.len() as u64;
                self.seq = seq;
                Ok(seq)
            }
            Err(e) => {
                self.repair_after_failure();
                Err(e)
            }
        }
    }

    /// Truncates any partial bytes a failed append left behind. Marks the
    /// log dirty when that is impossible, so later appends refuse until a
    /// `repair` succeeds.
    fn repair_after_failure(&mut self) {
        self.dirty = self.repair().is_err();
    }

    /// Restores the file to the last known-good length. Used inline after
    /// append failures and by the maintenance retry path.
    pub fn repair(&mut self) -> io::Result<()> {
        if let Some(FailAction::Error | FailAction::TornWrite(_)) =
            failpoint::fire("persist.log.repair")
        {
            return Err(failpoint::injected_error("persist.log.repair"));
        }
        self.file.set_len(self.good_len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.dirty = false;
        Ok(())
    }

    /// Appends a pre-framed record verbatim with the *primary's* sequence
    /// number — the replica apply path. The frame already carries its CRC,
    /// so what lands on the follower's disk is byte-identical to the
    /// primary's record. `seq` must exceed the current sequence (the
    /// caller skips already-applied records on stream overlap).
    pub fn append_frame(&mut self, frame: &str, seq: u64, sync: bool) -> io::Result<()> {
        if self.dirty {
            return Err(io::Error::other(
                "churn log has an unrepaired torn tail; append refused",
            ));
        }
        debug_assert!(seq > self.seq, "replicated frame seq must advance");
        let line = format!("{frame}\n");
        let bytes = line.as_bytes();
        let write_result = self.file.write_all(bytes).and_then(|()| self.file.flush());
        match write_result {
            Ok(()) => {
                if sync {
                    if let Err(e) = self.file.sync_data() {
                        self.repair_after_failure();
                        return Err(e);
                    }
                }
                self.good_len += bytes.len() as u64;
                self.seq = seq;
                Ok(())
            }
            Err(e) => {
                self.repair_after_failure();
                Err(e)
            }
        }
    }

    /// Reads every retained frame with a sequence strictly greater than
    /// `from_seq`, verbatim (CRC framing intact) and in file order — the
    /// backlog half of a `REPLICATE` stream. Frames that do not parse well
    /// enough to expose a sequence number are skipped (the follower's CRC
    /// check would reject them anyway).
    pub fn frames_after(&self, from_seq: u64) -> io::Result<Vec<String>> {
        let data = std::fs::read(&self.path)?;
        let mut out = Vec::new();
        for line in data.split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            let Ok(text) = std::str::from_utf8(line) else {
                continue;
            };
            let seq = text.split(' ').nth(1).and_then(|t| t.parse::<u64>().ok());
            if let Some(seq) = seq {
                if seq > from_seq {
                    out.push(text.to_string());
                }
            }
        }
        Ok(out)
    }

    /// Whether the log currently refuses appends (unrepaired tail).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Flushes OS buffers to disk (the `FsyncPolicy::Interval` path).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Starts a fresh log after a successful snapshot: truncates to zero.
    /// Sequence numbers keep counting — the snapshot records the cutoff —
    /// and `base_seq` advances to it, so replication streams from before
    /// the rotation now require a snapshot bootstrap.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.good_len = 0;
        self.base_seq = self.seq;
        self.dirty = false;
        Ok(())
    }

    /// Truncates the log and jumps both sequence cursors to `seq` — the
    /// follower bootstrap path, where local history is replaced wholesale
    /// by the primary's snapshot at `seq` (which the caller has already
    /// written).
    pub fn rotate_to(&mut self, seq: u64) -> io::Result<()> {
        self.seq = seq;
        self.rotate()
    }

    /// Rotation for snapshots taken *concurrently with churn*: drops
    /// records covered by a snapshot at `after_seq` but keeps (rewrites,
    /// in order) every frame that landed after it while the snapshot was
    /// being compressed and written outside the churn lock. `base_seq`
    /// advances to `after_seq`; the live sequence cursor is untouched.
    pub fn rotate_retaining(&mut self, after_seq: u64) -> io::Result<()> {
        let retained = self.frames_after(after_seq)?;
        let mut body = String::with_capacity(retained.iter().map(|f| f.len() + 1).sum());
        for frame in &retained {
            body.push_str(frame);
            body.push('\n');
        }
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(body.as_bytes())?;
        self.file.sync_data()?;
        self.good_len = body.len() as u64;
        self.base_seq = after_seq;
        self.dirty = false;
        Ok(())
    }
}

/// Reads and validates the log at `dir`, truncating it back to the last
/// good frame so subsequent appends start from a clean point. Returns every
/// valid record in file order; corruption is reported, never fatal.
pub fn replay(dir: &Path, schema: &Schema) -> io::Result<LogReplay> {
    let path = dir.join(LOG_FILE);
    let mut out = LogReplay::default();
    let data = match std::fs::read(&path) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };

    // Offset of the first byte that is NOT part of a fully valid prefix of
    // frames; everything from the last bad frame onward is truncated iff
    // no valid frame follows it (torn tail). Mid-file bad frames followed
    // by valid ones are skipped individually (bit rot, not a crash).
    let mut pos = 0usize;
    let mut keep_len = 0usize; // file keeps [0, keep_len)
    let mut pending_bad: Vec<(usize, String)> = Vec::new(); // (offset, note)
    while pos < data.len() {
        let Some(nl) = data[pos..].iter().position(|&b| b == b'\n') else {
            // Unterminated tail: a record that never finished writing.
            out.notes.push(format!(
                "torn tail: {} unterminated byte(s) at offset {pos}",
                data.len() - pos
            ));
            out.truncated_bytes += (data.len() - pos) as u64;
            break;
        };
        let line_end = pos + nl;
        let line = &data[pos..line_end];
        match parse_record(line, schema) {
            Ok(record) => {
                // Bad frames strictly inside the file are skips, not tears.
                for (off, note) in pending_bad.drain(..) {
                    out.corrupt_skipped += 1;
                    out.notes
                        .push(format!("corrupt record at offset {off} skipped: {note}"));
                }
                out.last_seq = out.last_seq.max(record.seq);
                out.records.push(record);
                keep_len = line_end + 1;
            }
            Err(note) => {
                pending_bad.push((pos, note));
            }
        }
        pos = line_end + 1;
    }
    // Bad frames with no valid frame after them are a torn/corrupt tail:
    // truncate at the first of them.
    if let Some((off, note)) = pending_bad.first() {
        out.truncated_bytes += (pos - off) as u64;
        out.notes
            .push(format!("truncated tail at offset {off}: {note}"));
    }

    if keep_len < data.len() {
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(keep_len as u64)?;
        file.sync_data()?;
    }
    Ok(out)
}

/// Parses and CRC-checks one record line. The error string says what was
/// wrong (it ends up in the recovery report).
fn parse_record(line: &[u8], schema: &Schema) -> Result<ReplayRecord, String> {
    let text = std::str::from_utf8(line).map_err(|_| "not utf-8".to_string())?;
    let (crc_text, payload) = text.split_once(' ').ok_or("missing crc field")?;
    let stored = u32::from_str_radix(crc_text, 16).map_err(|_| format!("bad crc `{crc_text}`"))?;
    let actual = crc32(payload.as_bytes());
    if stored != actual {
        return Err(format!(
            "crc mismatch (stored {stored:08x}, actual {actual:08x})"
        ));
    }
    let (seq_text, rest) = payload.split_once(' ').ok_or("missing seq field")?;
    let seq: u64 = seq_text
        .parse()
        .map_err(|_| format!("bad seq `{seq_text}`"))?;
    let op = match rest.split_once(' ') {
        Some(("S", sub_text)) => {
            let (id_text, expr) = sub_text
                .split_once(' ')
                .ok_or("S record missing expression")?;
            let id: u32 = id_text
                .parse()
                .map_err(|_| format!("bad sub id `{id_text}`"))?;
            let sub = parser::parse_subscription_with_id(schema, SubId(id), expr)
                .map_err(|e| format!("unparseable subscription: {e}"))?;
            ReplayOp::Sub(sub)
        }
        Some(("U", id_text)) => {
            let id: u32 = id_text
                .parse()
                .map_err(|_| format!("bad unsub id `{id_text}`"))?;
            ReplayOp::Unsub(SubId(id))
        }
        None if rest.starts_with("U") => {
            return Err("U record missing id".into());
        }
        _ => return Err(format!("unknown record kind in `{rest}`")),
    };
    Ok(ReplayRecord { seq, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcm_bexpr::Schema;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apcm_log_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sub(schema: &Schema, id: u32, text: &str) -> Subscription {
        parser::parse_subscription_with_id(schema, SubId(id), text).unwrap()
    }

    #[test]
    fn append_and_replay_round_trip() {
        let schema = Schema::uniform(3, 16);
        let dir = tmpdir("roundtrip");
        let mut log = ChurnLog::open(&dir, 0, 0).unwrap();
        let s1 = sub(&schema, 1, "a0 = 3 AND a1 >= 5");
        let s2 = sub(&schema, 2, "a2 != 7");
        assert_eq!(log.append(&ChurnOp::Sub(&s1), &schema, true).unwrap(), 1);
        assert_eq!(log.append(&ChurnOp::Sub(&s2), &schema, false).unwrap(), 2);
        assert_eq!(
            log.append(&ChurnOp::Unsub(SubId(1)), &schema, true)
                .unwrap(),
            3
        );
        drop(log);

        let replayed = replay(&dir, &schema).unwrap();
        assert_eq!(replayed.records.len(), 3);
        assert_eq!(replayed.last_seq, 3);
        assert_eq!(replayed.corrupt_skipped, 0);
        assert_eq!(replayed.truncated_bytes, 0);
        match &replayed.records[0].op {
            ReplayOp::Sub(s) => assert_eq!(*s, s1),
            other => panic!("{other:?}"),
        }
        match &replayed.records[2].op {
            ReplayOp::Unsub(id) => assert_eq!(*id, SubId(1)),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("torn");
        let mut log = ChurnLog::open(&dir, 0, 0).unwrap();
        let s1 = sub(&schema, 1, "a0 = 1");
        log.append(&ChurnOp::Sub(&s1), &schema, true).unwrap();
        drop(log);
        // Simulate a crash mid-record: raw partial bytes, no newline.
        let path = dir.join(LOG_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"deadbeef 2 S 9 a0").unwrap();
        drop(f);

        let replayed = replay(&dir, &schema).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert!(replayed.truncated_bytes > 0);
        // The file was physically truncated back to the good frame.
        let len = std::fs::metadata(&path).unwrap().len();
        let mut log = ChurnLog::open(&dir, replayed.last_seq, 0).unwrap();
        assert_eq!(log.len_bytes(), len);
        let s2 = sub(&schema, 2, "a1 = 2");
        log.append(&ChurnOp::Sub(&s2), &schema, true).unwrap();
        drop(log);
        let replayed = replay(&dir, &schema).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_skipped_with_report() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("midcorrupt");
        let mut log = ChurnLog::open(&dir, 0, 0).unwrap();
        for id in 1..=3u32 {
            let s = sub(&schema, id, "a0 = 1");
            log.append(&ChurnOp::Sub(&s), &schema, false).unwrap();
        }
        drop(log);
        // Flip a byte inside the second record.
        let path = dir.join(LOG_FILE);
        let mut data = std::fs::read(&path).unwrap();
        let second_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        data[second_start + 12] ^= 0x40;
        std::fs::write(&path, &data).unwrap();

        let replayed = replay(&dir, &schema).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.corrupt_skipped, 1);
        assert_eq!(replayed.truncated_bytes, 0);
        assert!(!replayed.notes.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_failpoint_repairs_inline() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("fp_torn");
        let mut log = ChurnLog::open(&dir, 0, 0).unwrap();
        let s1 = sub(&schema, 1, "a0 = 1");
        log.append(&ChurnOp::Sub(&s1), &schema, true).unwrap();
        let good = log.len_bytes();

        failpoint::arm("persist.log.append", FailAction::TornWrite(5), Some(1));
        let s2 = sub(&schema, 2, "a0 = 2");
        assert!(log.append(&ChurnOp::Sub(&s2), &schema, true).is_err());
        // Inline repair cut the torn bytes back out.
        assert!(!log.is_dirty());
        assert_eq!(std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(), good);
        // And the next append lands cleanly with the same seq.
        assert_eq!(log.append(&ChurnOp::Sub(&s2), &schema, true).unwrap(), 2);
        failpoint::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotate_retaining_keeps_frames_past_the_snapshot_seq() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("rot_retain");
        let mut log = ChurnLog::open(&dir, 0, 0).unwrap();
        for id in 1..=5u32 {
            let s = sub(&schema, id, "a0 = 1");
            log.append(&ChurnOp::Sub(&s), &schema, false).unwrap();
        }
        // Snapshot covered seq 3; records 4 and 5 landed during compress.
        log.rotate_retaining(3).unwrap();
        assert_eq!(log.base_seq(), 3);
        assert_eq!(log.seq(), 5);
        let replayed = replay(&dir, &schema).unwrap();
        let seqs: Vec<u64> = replayed.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        // Appends continue from the live cursor.
        let s6 = sub(&schema, 6, "a1 = 2");
        assert_eq!(log.append(&ChurnOp::Sub(&s6), &schema, true).unwrap(), 6);
        // Retaining past everything behaves like a plain rotation.
        log.rotate_retaining(6).unwrap();
        assert_eq!(log.len_bytes(), 0);
        assert_eq!(log.seq(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_repair_marks_dirty_until_fixed() {
        let schema = Schema::uniform(2, 8);
        let dir = tmpdir("fp_dirty");
        let mut log = ChurnLog::open(&dir, 0, 0).unwrap();
        failpoint::arm("persist.log.append", FailAction::TornWrite(3), Some(1));
        failpoint::arm("persist.log.repair", FailAction::Error, Some(1));
        let s1 = sub(&schema, 1, "a0 = 1");
        assert!(log.append(&ChurnOp::Sub(&s1), &schema, true).is_err());
        assert!(log.is_dirty());
        // Appends fail fast while dirty.
        assert!(log.append(&ChurnOp::Sub(&s1), &schema, true).is_err());
        // A later repair (failpoint exhausted) restores service.
        log.repair().unwrap();
        assert!(!log.is_dirty());
        assert_eq!(log.append(&ChurnOp::Sub(&s1), &schema, true).unwrap(), 1);
        failpoint::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
