//! apcm-server: a concurrent matching service over the A-PCM engines.
//!
//! The paper's matcher is a library; this crate turns it into a broker:
//!
//! * [`ShardedEngine`] hash-partitions the subscription space across N
//!   shards, each owning a dynamic engine ([`EngineChoice`]: native A-PCM,
//!   the BE-Tree hybrid behind an overlay, or a brute-force scan), fans
//!   event windows out across shards on scoped threads, and merges rows.
//! * [`IngestPipeline`] applies OSR at the service boundary: publishes
//!   flow through a bounded queue (backpressure) into
//!   [`apcm_core::osr::OsrBuffer`] windows matched by a dedicated thread.
//! * [`Server`] is a TCP broker (`std::net` + threads) speaking a
//!   newline-delimited text protocol (see [`protocol`]) with live
//!   `SUB`/`UNSUB`, batch publishing, per-connection slow-consumer policy,
//!   a background maintenance sweep, and [`ServerStats`] counters.
//! * [`persist`] makes the subscription set durable: a checksummed
//!   snapshot (block-columnar compressed colstore v2 by default, with
//!   delta snapshots of dirty partitions; text v1 still supported) plus a
//!   CRC-framed append-only churn log, replayed at startup with torn-tail
//!   truncation and corrupt-record skipping.
//! * [`replication`] ships that churn log to follower servers live: a
//!   replica (`ServerConfig::replica_of`, or `DEMOTE` at runtime) pulls
//!   `REPLICATE <from_seq>` — log tail or full snapshot bootstrap — and
//!   applies each CRC-framed record to its own engine + persistence,
//!   refusing client churn until `PROMOTE` flips it back to primary.

pub mod broker;
pub mod client;
pub mod config;
pub mod engine;
mod event_broker;
pub mod ingest;
pub mod persist;
pub mod protocol;
pub mod replication;
mod request;
pub mod ring;
pub mod shard;
pub mod stats;

pub use broker::{read_capped_line, LineOutcome, Server};
pub use client::{is_timeout_error, BrokerClient, ConnectOptions};
pub use config::{
    EngineChoice, FsyncPolicy, IoModel, PersistConfig, ServerConfig, SlowConsumerPolicy,
    SnapshotFormat,
};
pub use engine::ShardEngine;
pub use ingest::{IngestItem, IngestPipeline, ResultSink};
pub use persist::{Persister, RecoveryReport, SnapshotOutcome, StreamStart};
pub use protocol::{ReplicateStart, ReshardCmd, RingSpec, RoleReport};
pub use replication::{Role, RoleState};
pub use ring::{parse_member_csv, Ring, RingScope, VNODES_PER_MEMBER};
pub use shard::{route_partition, ShardedEngine};
pub use stats::ServerStats;
