//! OSR-batched ingest pipeline.
//!
//! Publishers push events into a bounded channel (the backpressure
//! boundary: `send` blocks when the queue is full). A single matcher
//! thread drains the queue into an [`OsrBuffer`] window; full windows — or
//! partial windows older than the flush interval — are matched through the
//! sharded engine and the per-event match rows are handed to a sink.

use apcm_bexpr::Event;
use apcm_core::osr::OsrBuffer;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::ServerConfig;
use crate::shard::ShardedEngine;
use crate::stats::ServerStats;

/// One queued publish: the event plus enough routing context to deliver
/// its `RESULT` row back to the publisher.
#[derive(Debug)]
pub struct IngestItem {
    pub conn: u64,
    /// Publisher-scoped event sequence number.
    pub seq: u64,
    pub event: Event,
}

/// Where match results go. Implemented by the broker (delivery to client
/// queues) and by tests (capture).
pub trait ResultSink: Send + Sync + 'static {
    /// Called once per matched window, in window order; `items[i]`
    /// produced `rows[i]`.
    fn on_window(&self, items: &[IngestItem], rows: &[Vec<apcm_bexpr::SubId>]);
}

pub struct IngestPipeline {
    tx: Sender<IngestItem>,
    worker: Option<JoinHandle<()>>,
    depth: Arc<Receiver<IngestItem>>,
}

impl IngestPipeline {
    pub fn start(
        engine: Arc<ShardedEngine>,
        stats: Arc<ServerStats>,
        sink: Arc<dyn ResultSink>,
        config: &ServerConfig,
    ) -> Self {
        let (tx, rx) = bounded::<IngestItem>(config.ingest_queue);
        let window = config.window;
        let flush_interval = config.flush_interval;
        let depth = Arc::new(rx.clone());
        let worker = std::thread::Builder::new()
            .name("apcm-ingest".into())
            .spawn(move || run_matcher(rx, engine, stats, sink, window, flush_interval))
            .expect("spawning ingest thread");
        Self {
            tx,
            worker: Some(worker),
            depth,
        }
    }

    /// A handle publishers use to enqueue events (blocking on a full queue).
    pub fn sender(&self) -> Sender<IngestItem> {
        self.tx.clone()
    }

    /// Current queue depth, for `STATS`.
    pub fn depth(&self) -> usize {
        self.depth.len()
    }

    /// A receiver clone used only for depth observation (never consumed).
    pub fn depth_handle(&self) -> Receiver<IngestItem> {
        (*self.depth).clone()
    }

    /// Drops the pipeline's own sender and joins the matcher thread once
    /// every outstanding publisher handle is gone. Remaining queued events
    /// are flushed before the thread exits.
    pub fn shutdown(mut self) {
        drop(self.tx);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn run_matcher(
    rx: Receiver<IngestItem>,
    engine: Arc<ShardedEngine>,
    stats: Arc<ServerStats>,
    sink: Arc<dyn ResultSink>,
    window: usize,
    flush_interval: Duration,
) {
    // OsrBuffer hands windows back in arrival order (re-ordering is an
    // internal strategy of match_window), so `pending` — the routing
    // context — stays aligned 1:1 with every flushed window.
    let mut pending: Vec<IngestItem> = Vec::new();
    let mut buffer = OsrBuffer::new(window);
    loop {
        match rx.recv_timeout(flush_interval) {
            Ok(item) => {
                let flushed = buffer.push(item.event.clone());
                pending.push(item);
                if let Some(events) = flushed {
                    process_window(&engine, &stats, &sink, &mut pending, events);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let events = buffer.flush();
                if !events.is_empty() {
                    process_window(&engine, &stats, &sink, &mut pending, events);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let events = buffer.flush();
                if !events.is_empty() {
                    process_window(&engine, &stats, &sink, &mut pending, events);
                }
                return;
            }
        }
    }
}

/// Matches one flushed window and routes results back to their items.
fn process_window(
    engine: &ShardedEngine,
    stats: &ServerStats,
    sink: &Arc<dyn ResultSink>,
    pending: &mut Vec<IngestItem>,
    events: Vec<Event>,
) {
    let t0 = Instant::now();
    let rows = engine.match_window(&events);
    stats.latency.record(t0.elapsed());
    ServerStats::add(&stats.windows, 1);
    ServerStats::add(&stats.events_matched, events.len() as u64);
    ServerStats::add(
        &stats.matches,
        rows.iter().map(|r| r.len() as u64).sum::<u64>(),
    );

    let window_items: Vec<IngestItem> = pending.drain(..events.len()).collect();
    debug_assert!(window_items
        .iter()
        .zip(&events)
        .all(|(item, ev)| item.event == *ev));
    sink.on_window(&window_items, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineChoice;
    use apcm_bexpr::{parser, Schema, SubId};
    use parking_lot::Mutex;

    struct Capture {
        rows: Mutex<Vec<(u64, u64, Vec<SubId>)>>,
    }

    impl ResultSink for Capture {
        fn on_window(&self, items: &[IngestItem], rows: &[Vec<SubId>]) {
            let mut out = self.rows.lock();
            for (item, row) in items.iter().zip(rows) {
                out.push((item.conn, item.seq, row.clone()));
            }
        }
    }

    #[test]
    fn windows_flush_by_size_and_timeout() {
        let schema = Schema::uniform(2, 8);
        let config = ServerConfig {
            shards: 2,
            engine: EngineChoice::Scan,
            window: 4,
            flush_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let engine = Arc::new(ShardedEngine::new(&schema, &config).unwrap());
        for id in 0..8u32 {
            let text = format!("a0 = {}", id % 4);
            let sub = parser::parse_subscription_with_id(&schema, SubId(id), &text).unwrap();
            engine.subscribe(&sub).unwrap();
        }
        let stats = Arc::new(ServerStats::default());
        let capture = Arc::new(Capture {
            rows: Mutex::new(Vec::new()),
        });
        let pipeline =
            IngestPipeline::start(engine.clone(), stats.clone(), capture.clone(), &config);

        let tx = pipeline.sender();
        // 6 events: one full window of 4, then 2 flushed by timeout/shutdown.
        for seq in 0..6u64 {
            let event = parser::parse_event(&schema, &format!("a0 = {}", seq % 4)).unwrap();
            tx.send(IngestItem {
                conn: 1,
                seq,
                event,
            })
            .unwrap();
        }
        drop(tx);
        pipeline.shutdown();

        let rows = capture.rows.lock();
        assert_eq!(rows.len(), 6);
        for (conn, seq, row) in rows.iter() {
            assert_eq!(*conn, 1);
            // a0 = s%4 matches subs with id % 4 == s % 4 (ids 0..8).
            let expect: Vec<SubId> = (0..8u32)
                .filter(|id| (id % 4) as u64 == seq % 4)
                .map(SubId)
                .collect();
            assert_eq!(row, &expect, "seq {seq}");
        }
        assert_eq!(ServerStats::get(&stats.events_matched), 6);
        assert!(ServerStats::get(&stats.windows) >= 2);
        assert_eq!(ServerStats::get(&stats.matches), 12);
    }
}
