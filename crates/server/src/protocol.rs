//! Newline-delimited text protocol.
//!
//! Requests (one per line; verbs are case-insensitive, arguments reuse the
//! `bexpr` parser syntax):
//!
//! ```text
//! SUB <id> <expr>      subscribe, e.g. SUB 7 a0 = 3 AND a1 >= 5
//! UNSUB <id>           unsubscribe
//! CLAIM <id>           take over ownership (notifications) of a live id
//! PUB <event>          publish one event, e.g. PUB a0 = 3, a1 = 9
//! BATCH <n>            the next n lines are events, published as one batch
//! STATS                server counters
//! SNAPSHOT             force a durable snapshot + log rotation now
//! TOPOLOGY             cluster membership report (routers; servers answer
//!                      `+OK topology standalone`)
//! SUMMARY <epoch>      coarse predicate-space summary of this backend's
//!                      subscriptions (see `apcm-encoding`'s summary
//!                      module); answers `+OK summary unchanged <epoch>`
//!                      when the caller's epoch is current, else
//!                      `+OK summary <epoch> <nbits> <hex-words>`
//! PING                 liveness probe
//! QUIT                 close this connection
//! ```
//!
//! Replication / role management (see [`crate::replication`]):
//!
//! ```text
//! REPLICATE <from_seq> turn this connection into a churn-record stream
//!                      (follower handshake; requires persistence);
//!                      `v2` advertises colstore bootstrap decode, and
//!                      `v2 ring <members> <keep>` scopes the *bootstrap*
//!                      to the catalog subset the ring routes to `keep`
//!                      (the live tail still carries every record — the
//!                      receiver filters — so seqs stay comparable).
//!                      A trailing `reset` token forces a wholesale
//!                      bootstrap, disclaiming local history (a follower
//!                      whose divergent suffix could not be truncated)
//! REPLACK <seq>        follower progress report on a REPLICATE stream
//! ROLE                 role + sequence/lag report (the health probe)
//! PROMOTE              replica -> primary (idempotent on a primary)
//! DEMOTE <addr>        become a follower of the primary at <addr>
//! ```
//!
//! A follower *ahead* of its primary (unacked ex-primary suffix) whose
//! shared prefix is verifiable is answered `+OK replicate truncate <seq>
//! <crc>` — rewind locally to `<seq>` (the primary's frame there carries
//! CRC `<crc>`), then tail — instead of a wholesale bootstrap.
//!
//! Elastic resharding (see `apcm-cluster`'s migration module): admin verbs
//! answered by the router, data-plane verbs by a backend server:
//!
//! ```text
//! RESHARD ADD <primary> [follower ...]  router: scale out onto a new backend
//! RESHARD REMOVE <partition>         router: drain + drop a partition
//! RESHARD STATUS                     router: migration progress report
//! RESHARD PULL <src> <members> <keep> [<dm> <dk>]
//!                                    backend: start pulling the ring
//!                                    subset `keep` from the primary <src>
//!                                    while staying a live primary; the
//!                                    optional `<dm> <dk>` pair is the
//!                                    donor's old-ring scope, bounding the
//!                                    bootstrap reconcile to ids this
//!                                    donor could ever have owned
//! RESHARD CUTOFF                     backend: stop the pull stream
//! RESHARD PRUNE <members> <keep>     backend: install the ownership
//!                                    filter (refuse churn for ids outside
//!                                    `keep` with `-ERR not owner <id>`)
//!                                    and durably unsub non-owned ids
//! RESHARD STATUS                     backend: pull progress report
//! ```
//!
//! Replies: `+OK ...` / `-ERR <message>` for commands, and asynchronous
//! lines pushed by the matcher:
//!
//! ```text
//! RESULT <seq> <n> [id,id,...] [partial]   match row for event <seq>
//! EVENT <id> <event>             notification to the subscriber owning <id>
//! ```
//!
//! The trailing `partial` token is emitted only by the cluster router, when
//! one or more backends were unreachable while the window was matched — the
//! row covers the surviving partitions only.
//!
//! `STATS` replies with `+OK stats`, `key value` lines, then `.` alone.
//!
//! A `SUB` whose id is already live answers the *structured* error
//! `-ERR duplicate <id>` (see [`render_duplicate_error`]) so routers and
//! clients can drive `CLAIM` automatically — unless the offered expression
//! is byte-identical to the live one, in which case the server treats it as
//! a claim and transfers ownership (`+OK claimed <id>`).

use apcm_bexpr::{parser, BexprError, Event, Schema, SubId, Subscription};
use apcm_encoding::FixedBitSet;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Sub {
        id: SubId,
        sub: Subscription,
    },
    Unsub {
        id: SubId,
    },
    /// Take over ownership of a live subscription (notifications resume on
    /// this connection). The reclaim path after a broker restart.
    Claim {
        id: SubId,
    },
    Pub {
        event: Event,
    },
    Batch {
        count: usize,
    },
    Stats,
    /// Force a snapshot + log rotation now (requires persistence).
    Snapshot,
    /// Cluster membership/health report (meaningful on a router).
    Topology,
    /// Coarse predicate-space summary fetch; `epoch` is the caller's cached
    /// epoch (0 for "none"), letting the backend elide an unchanged bitset.
    Summary {
        epoch: u64,
    },
    /// Follower handshake: stream churn records after this sequence.
    /// `v2` is set when the follower appended a `v2` token, advertising
    /// that it can decode a compressed colstore bootstrap. `ring` scopes
    /// the bootstrap catalog to a ring subset (see [`RingSpec`]); it
    /// requires `v2`. `reset` disclaims the follower's local history,
    /// forcing a wholesale bootstrap even when `from_seq` would allow a
    /// log tail or truncate answer.
    Replicate {
        from_seq: u64,
        v2: bool,
        ring: Option<RingSpec>,
        reset: bool,
    },
    /// Follower progress report on an established `REPLICATE` stream.
    ReplAck {
        seq: u64,
    },
    /// Role + sequence/lag report.
    Role,
    /// Replica -> primary transition.
    Promote,
    /// Become a follower of the primary at this address.
    Demote {
        addr: String,
    },
    /// Elastic-resharding verb (router admin or backend data plane).
    Reshard(ReshardCmd),
    Ping,
    Quit,
}

/// An unvalidated ring scope as it appears on the wire: a member csv
/// (`0,1,2`) plus a kept-member csv (`2`, or `-` for the empty set).
/// Validation (membership, non-empty ring) happens where the scope is
/// materialized into a `ring::RingScope`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSpec {
    pub members_csv: String,
    pub keep_csv: String,
}

/// The `RESHARD` sub-verbs. `Add`/`Remove`/`Status` are answered by the
/// cluster router; `Pull`/`Cutoff`/`Prune`/`Status` by a backend server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReshardCmd {
    /// Router: scale out — register a new backend (primary plus an
    /// optional replication chain of followers) and migrate its ring
    /// share onto it.
    Add {
        primary: String,
        followers: Vec<String>,
    },
    /// Router: scale in — drain this partition's ring share onto the
    /// survivors, then drop it from membership.
    Remove { partition: u32 },
    /// Progress report (meaningful on both tiers).
    Status,
    /// Backend: start pulling the `scope` subset from the primary at
    /// `source` while continuing to serve as a live primary. `donor`
    /// (when present) is the donor's *old-ring* ownership: the puller's
    /// bootstrap reconcile deletes a locally-present id only when both
    /// scopes own it, so ids absorbed from *earlier* legs of the same
    /// migration — owned by `scope` but never by this donor — survive.
    Pull {
        source: String,
        scope: RingSpec,
        donor: Option<RingSpec>,
    },
    /// Backend: stop the pull stream (migration leg complete or aborted).
    Cutoff,
    /// Backend: install `scope` as the ownership filter and durably
    /// unsub every catalog id outside it.
    Prune { scope: RingSpec },
}

/// Parses one request line. `None` for blank lines and `#` comments.
pub fn parse_request(schema: &Schema, line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let request = match verb.to_ascii_uppercase().as_str() {
        "SUB" => {
            let (id_text, expr) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: SUB <id> <expr>")?;
            let id = parse_id(id_text)?;
            let sub = parser::parse_subscription_with_id(schema, id, expr.trim())
                .map_err(|e| bexpr_msg("expression", &e))?;
            Request::Sub { id, sub }
        }
        "UNSUB" => {
            if rest.is_empty() {
                return Err("usage: UNSUB <id>".into());
            }
            Request::Unsub {
                id: parse_id(rest)?,
            }
        }
        "CLAIM" => {
            if rest.is_empty() {
                return Err("usage: CLAIM <id>".into());
            }
            Request::Claim {
                id: parse_id(rest)?,
            }
        }
        "PUB" => {
            if rest.is_empty() {
                return Err("usage: PUB <event>".into());
            }
            let event = parser::parse_event(schema, rest).map_err(|e| bexpr_msg("event", &e))?;
            Request::Pub { event }
        }
        "BATCH" => {
            let count: usize = rest
                .parse()
                .map_err(|_| format!("bad batch size `{rest}`"))?;
            if count == 0 {
                return Err("batch size must be positive".into());
            }
            Request::Batch { count }
        }
        "STATS" => Request::Stats,
        "SNAPSHOT" => Request::Snapshot,
        "TOPOLOGY" => Request::Topology,
        "SUMMARY" => {
            let epoch: u64 = rest
                .parse()
                .map_err(|_| format!("bad summary epoch `{rest}`"))?;
            Request::Summary { epoch }
        }
        "REPLICATE" => {
            let mut parts = rest.split_whitespace();
            let from_seq: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad replicate seq `{rest}`"))?;
            let mut next = parts.next();
            let v2 = match next {
                Some("v2") => {
                    next = parts.next();
                    true
                }
                _ => false,
            };
            let ring = match next {
                Some("ring") if v2 => {
                    let members_csv = parts
                        .next()
                        .ok_or("usage: REPLICATE <seq> v2 ring <members> <keep>")?
                        .to_string();
                    let keep_csv = parts
                        .next()
                        .ok_or("usage: REPLICATE <seq> v2 ring <members> <keep>")?
                        .to_string();
                    next = parts.next();
                    Some(RingSpec {
                        members_csv,
                        keep_csv,
                    })
                }
                _ => None,
            };
            let reset = match next {
                None => false,
                Some("reset") => {
                    next = parts.next();
                    true
                }
                Some(other) => return Err(format!("bad replicate token `{other}`")),
            };
            if next.is_some() || parts.next().is_some() {
                return Err(format!("bad replicate request `{rest}`"));
            }
            Request::Replicate {
                from_seq,
                v2,
                ring,
                reset,
            }
        }
        "REPLACK" => {
            let seq: u64 = rest
                .parse()
                .map_err(|_| format!("bad replack seq `{rest}`"))?;
            Request::ReplAck { seq }
        }
        "ROLE" => Request::Role,
        "PROMOTE" => Request::Promote,
        "DEMOTE" => {
            if rest.is_empty() {
                return Err("usage: DEMOTE <primary-addr>".into());
            }
            Request::Demote {
                addr: rest.to_string(),
            }
        }
        "RESHARD" => Request::Reshard(parse_reshard(rest)?),
        "PING" => Request::Ping,
        "QUIT" => Request::Quit,
        other => return Err(format!("unknown verb `{other}`")),
    };
    Ok(Some(request))
}

fn parse_reshard(rest: &str) -> Result<ReshardCmd, String> {
    let (sub, args) = match rest.split_once(char::is_whitespace) {
        Some((s, a)) => (s, a.trim()),
        None => (rest, ""),
    };
    let mut parts = args.split_whitespace();
    let cmd = match sub.to_ascii_uppercase().as_str() {
        "ADD" => {
            let primary = parts
                .next()
                .ok_or("usage: RESHARD ADD <primary> [follower ...]")?
                .to_string();
            let followers: Vec<String> = parts.by_ref().map(str::to_string).collect();
            ReshardCmd::Add { primary, followers }
        }
        "REMOVE" => {
            let partition: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("usage: RESHARD REMOVE <partition>")?;
            ReshardCmd::Remove { partition }
        }
        "STATUS" => ReshardCmd::Status,
        "PULL" => {
            const USAGE: &str =
                "usage: RESHARD PULL <source> <members> <keep> [<donor-members> <donor-keep>]";
            let source = parts.next().ok_or(USAGE)?.to_string();
            let members_csv = parts.next().ok_or(USAGE)?.to_string();
            let keep_csv = parts.next().ok_or(USAGE)?.to_string();
            let donor = match parts.next() {
                None => None,
                Some(donor_members) => Some(RingSpec {
                    members_csv: donor_members.to_string(),
                    keep_csv: parts.next().ok_or(USAGE)?.to_string(),
                }),
            };
            ReshardCmd::Pull {
                source,
                scope: RingSpec {
                    members_csv,
                    keep_csv,
                },
                donor,
            }
        }
        "CUTOFF" => ReshardCmd::Cutoff,
        "PRUNE" => {
            let members_csv = parts
                .next()
                .ok_or("usage: RESHARD PRUNE <members> <keep>")?
                .to_string();
            let keep_csv = parts
                .next()
                .ok_or("usage: RESHARD PRUNE <members> <keep>")?
                .to_string();
            ReshardCmd::Prune {
                scope: RingSpec {
                    members_csv,
                    keep_csv,
                },
            }
        }
        other => return Err(format!("unknown RESHARD sub-verb `{other}`")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing tokens in RESHARD request `{rest}`"));
    }
    Ok(cmd)
}

fn parse_id(text: &str) -> Result<SubId, String> {
    text.trim()
        .parse::<u32>()
        .map(SubId)
        .map_err(|_| format!("bad subscription id `{text}`"))
}

fn bexpr_msg(what: &str, err: &BexprError) -> String {
    format!("bad {what}: {err}")
}

/// Renders a `RESULT` line for event `seq` of a publish.
pub fn render_result(seq: u64, ids: &[SubId]) -> String {
    render_result_ext(seq, ids, false)
}

/// Renders a `RESULT` line, optionally flagged `partial` (cluster router:
/// one or more backends were unreachable for this window).
pub fn render_result_ext(seq: u64, ids: &[SubId], partial: bool) -> String {
    let mut out = format!("RESULT {seq} {}", ids.len());
    if !ids.is_empty() {
        out.push(' ');
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&id.0.to_string());
        }
    }
    if partial {
        out.push_str(" partial");
    }
    out
}

/// Parses a `RESULT` line back into `(seq, ids)` — used by the bundled
/// client and tests. Tolerates (and discards) a `partial` flag; use
/// [`parse_result_ext`] to observe it.
pub fn parse_result(line: &str) -> Result<(u64, Vec<SubId>), String> {
    parse_result_ext(line).map(|(seq, ids, _)| (seq, ids))
}

/// Parses a `RESULT` line into `(seq, ids, partial)`.
pub fn parse_result_ext(line: &str) -> Result<(u64, Vec<SubId>, bool), String> {
    let rest = line
        .strip_prefix("RESULT ")
        .ok_or_else(|| format!("not a RESULT line: `{line}`"))?;
    let mut parts = rest.split_whitespace();
    let seq: u64 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("RESULT missing seq")?;
    let count: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("RESULT missing count")?;
    let mut partial = false;
    let ids = match parts.next() {
        None if count == 0 => Vec::new(),
        Some("partial") if count == 0 => {
            partial = true;
            Vec::new()
        }
        Some(csv) => csv
            .split(',')
            .map(|t| t.parse::<u32>().map(SubId))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("bad RESULT ids: {e}"))?,
        None => return Err("RESULT ids missing".into()),
    };
    match parts.next() {
        None => {}
        Some("partial") if !partial => partial = true,
        Some(extra) => return Err(format!("unexpected RESULT token `{extra}`")),
    }
    if ids.len() != count {
        return Err(format!("RESULT count {count} != {} ids", ids.len()));
    }
    Ok((seq, ids, partial))
}

/// The structured duplicate-subscription error: `-ERR duplicate <id>`.
/// Routers and clients match on this exact shape to drive `CLAIM`.
pub fn render_duplicate_error(id: SubId) -> String {
    format!("-ERR duplicate {}", id.0)
}

/// Renders a churn acknowledgment. A durable broker reports the appended
/// record's log sequence (`+OK <id> seq <n>`): a router that forwards
/// the churn folds that sequence into the partition's promotion/read
/// floor, making the floor an actual lower bound on the primary's log —
/// it covers the just-acked record even when the router (re)started
/// against a backend with pre-existing history, where an ack *count*
/// would undercount. A broker without persistence acks the bare
/// `+OK <id>` (no log, nothing to replicate, no floor to anchor).
pub fn render_churn_ack(id: SubId, seq: Option<u64>) -> String {
    match seq {
        Some(seq) => format!("+OK {} seq {seq}", id.0),
        None => format!("+OK {}", id.0),
    }
}

/// Extracts the durable log sequence from a [`render_churn_ack`] reply,
/// if it carries one. Deliberately strict — exactly `+OK <id> seq <n>` —
/// so it can never mistake another `+OK` shape (`+OK claimed <id>`,
/// `+OK <seq>` publish acks, `+OK promoted seq <n>`) for a churn ack.
pub fn parse_churn_ack_seq(reply: &str) -> Option<u64> {
    let mut it = reply.strip_prefix("+OK ")?.split(' ');
    it.next()?.parse::<u32>().ok()?;
    if it.next()? != "seq" {
        return None;
    }
    let seq = it.next()?.parse::<u64>().ok()?;
    it.next().is_none().then_some(seq)
}

/// Recognizes [`render_duplicate_error`] output, returning the id.
pub fn parse_duplicate_error(line: &str) -> Option<SubId> {
    line.strip_prefix("-ERR duplicate ")
        .and_then(|rest| rest.trim().parse::<u32>().ok())
        .map(SubId)
}

/// Renders an `EVENT` notification for a subscriber.
pub fn render_event_notification(id: SubId, event: &Event, schema: &Schema) -> String {
    format!("EVENT {} {}", id.0, event.display(schema))
}

/// How a primary answered `REPLICATE <from_seq>` (the line before the
/// frame stream starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicateStart {
    /// Log tail: this many backlog frames, then the live stream.
    Log { backlog: usize },
    /// Snapshot bootstrap: this many catalog frames, all at `seq`; the
    /// follower replaces its local state wholesale, then the live stream.
    Snapshot { subs: usize, seq: u64 },
    /// Compressed bootstrap (the primary runs the colstore snapshot
    /// format and the follower advertised `v2`): this many base64
    /// `BLOCK` lines carrying `subs` subscriptions, all at `seq`.
    Colstore {
        blocks: usize,
        subs: usize,
        seq: u64,
    },
    /// Covered-suffix rewind: the follower is *ahead* of the primary, but
    /// the primary's retained history ends at `seq` with a frame carrying
    /// CRC `crc`. If the follower's own frame at `seq` carries the same
    /// CRC, its suffix past `seq` is an unacknowledged divergence it can
    /// discard locally (truncate + local snapshot rewind) and then tail
    /// the live stream from `seq` — no bootstrap bytes on the wire. A
    /// follower that cannot verify the shared prefix redials with
    /// `reset` to force the wholesale bootstrap instead.
    Truncate { seq: u64, crc: u32 },
}

/// Renders the `+OK replicate truncate <seq> <crc>` handshake header.
pub fn render_replicate_truncate(seq: u64, crc: u32) -> String {
    format!("+OK replicate truncate {seq} {crc:08x}")
}

/// Parses a `+OK replicate ...` handshake header.
pub fn parse_replicate_header(line: &str) -> Result<ReplicateStart, String> {
    let rest = line
        .strip_prefix("+OK replicate ")
        .ok_or_else(|| format!("not a replicate header: `{line}`"))?;
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("log") => {
            let backlog: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("replicate log header missing backlog count")?;
            Ok(ReplicateStart::Log { backlog })
        }
        Some("snapshot") => {
            let subs: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("replicate snapshot header missing sub count")?;
            let seq: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("replicate snapshot header missing seq")?;
            Ok(ReplicateStart::Snapshot { subs, seq })
        }
        Some("colstore") => {
            let blocks: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("replicate colstore header missing block count")?;
            let subs: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("replicate colstore header missing sub count")?;
            let seq: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("replicate colstore header missing seq")?;
            Ok(ReplicateStart::Colstore { blocks, subs, seq })
        }
        Some("truncate") => {
            let seq: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("replicate truncate header missing seq")?;
            let crc = parts
                .next()
                .and_then(|t| u32::from_str_radix(t, 16).ok())
                .ok_or("replicate truncate header missing crc")?;
            Ok(ReplicateStart::Truncate { seq, crc })
        }
        other => Err(format!("unknown replicate mode {other:?}")),
    }
}

/// What a server reports about itself in reply to `ROLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleReport {
    /// `true` for a primary, `false` for a replica.
    pub primary: bool,
    /// Primary: the durable log sequence. Replica: the highest replicated
    /// sequence applied locally.
    pub seq: u64,
    /// Primary: slowest-follower lag in records (0 with no followers).
    /// Replica: 0 (its lag is judged against the primary's seq).
    pub lag: u64,
    /// Primary: live follower streams. Replica: 1 while its puller holds
    /// a connection to the primary, else 0.
    pub connected: u64,
    /// Primary: the lowest sequence any connected follower has
    /// acknowledged (equal to `seq` with no followers) — the quorum
    /// durability horizon of the chain hanging off this node. Replica:
    /// its own applied sequence (everything applied is acknowledged).
    pub acked: u64,
    /// The address a replica follows (`None` on a primary).
    pub following: Option<String>,
}

/// Renders the `+OK role ...` reply.
pub fn render_role_report(report: &RoleReport) -> String {
    if report.primary {
        format!(
            "+OK role primary seq {} followers {} lag {} acked {}",
            report.seq, report.connected, report.lag, report.acked
        )
    } else {
        format!(
            "+OK role replica of {} applied {} connected {}",
            report.following.as_deref().unwrap_or("-"),
            report.seq,
            report.connected
        )
    }
}

/// Parses a `+OK role ...` reply (with or without the leading `+`).
pub fn parse_role_report(line: &str) -> Result<RoleReport, String> {
    let line = line.strip_prefix('+').unwrap_or(line);
    let rest = line
        .strip_prefix("OK role ")
        .ok_or_else(|| format!("not a role reply: `{line}`"))?;
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("primary") => {
            let mut seq = 0u64;
            let mut followers = 0u64;
            let mut lag = 0u64;
            let mut acked = None;
            while let (Some(key), Some(value)) = (parts.next(), parts.next()) {
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("bad role value `{value}`"))?;
                match key {
                    "seq" => seq = value,
                    "followers" => followers = value,
                    "lag" => lag = value,
                    "acked" => acked = Some(value),
                    other => return Err(format!("unknown role field `{other}`")),
                }
            }
            Ok(RoleReport {
                primary: true,
                seq,
                lag,
                connected: followers,
                acked: acked.unwrap_or(seq),
                following: None,
            })
        }
        Some("replica") => {
            if parts.next() != Some("of") {
                return Err("replica role reply missing `of`".into());
            }
            let following = parts
                .next()
                .ok_or("replica role reply missing primary addr")?
                .to_string();
            let mut seq = 0u64;
            let mut connected = 0u64;
            while let (Some(key), Some(value)) = (parts.next(), parts.next()) {
                let value: u64 = value
                    .parse()
                    .map_err(|_| format!("bad role value `{value}`"))?;
                match key {
                    "applied" => seq = value,
                    "connected" => connected = value,
                    other => return Err(format!("unknown role field `{other}`")),
                }
            }
            Ok(RoleReport {
                primary: false,
                seq,
                lag: 0,
                connected,
                acked: seq,
                following: Some(following),
            })
        }
        other => Err(format!("unknown role kind {other:?}")),
    }
}

/// A backend's reply to `SUMMARY <epoch>`.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryReply {
    /// The caller's cached epoch is current; no bitset resent.
    Unchanged { epoch: u64 },
    /// A fresh `(epoch, bits)` summary snapshot.
    Summary { epoch: u64, bits: FixedBitSet },
}

/// Renders the `+OK summary unchanged <epoch>` reply.
pub fn render_summary_unchanged(epoch: u64) -> String {
    format!("+OK summary unchanged {epoch}")
}

/// Renders the `+OK summary <epoch> <nbits> <hex-words>` reply. The bitset
/// travels as big-endian-ordered hex words (lowest word first), which keeps
/// the whole reply on one line — 20 words for the default 20-dim schema.
pub fn render_summary_reply(epoch: u64, bits: &FixedBitSet) -> String {
    let mut out = format!("+OK summary {epoch} {}", bits.nbits());
    out.push(' ');
    for (i, word) in bits.words().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{word:x}"));
    }
    out
}

/// Parses either form of the summary reply (with or without the leading
/// `+`, as `BrokerClient::expect_ok` strips it).
pub fn parse_summary_reply(line: &str) -> Result<SummaryReply, String> {
    let line = line.strip_prefix('+').unwrap_or(line);
    let rest = line
        .strip_prefix("OK summary ")
        .ok_or_else(|| format!("not a summary reply: `{line}`"))?;
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("unchanged") => {
            let epoch: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("summary unchanged reply missing epoch")?;
            Ok(SummaryReply::Unchanged { epoch })
        }
        Some(epoch_text) => {
            let epoch: u64 = epoch_text
                .parse()
                .map_err(|_| format!("bad summary epoch `{epoch_text}`"))?;
            let nbits: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("summary reply missing nbits")?;
            let mut bits = FixedBitSet::new(nbits);
            let words_text = parts.next().ok_or("summary reply missing words")?;
            let words: Vec<u64> = words_text
                .split(',')
                .map(|t| u64::from_str_radix(t, 16))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("bad summary word: {e}"))?;
            if words.len() != bits.words().len() {
                return Err(format!(
                    "summary reply has {} words, expected {} for {nbits} bits",
                    words.len(),
                    bits.words().len()
                ));
            }
            bits.words_mut().copy_from_slice(&words);
            if parts.next().is_some() {
                return Err("trailing tokens in summary reply".into());
            }
            Ok(SummaryReply::Summary { epoch, bits })
        }
        None => Err("empty summary reply".into()),
    }
}

/// The router's structured refusal when *neither* node of a partition is
/// serviceable: `-ERR backend <i> unavailable`.
pub fn render_backend_unavailable(index: usize) -> String {
    format!("-ERR backend {index} unavailable")
}

/// Recognizes [`render_backend_unavailable`], returning the partition.
pub fn parse_backend_unavailable(line: &str) -> Option<usize> {
    let rest = line.strip_prefix("-ERR backend ")?;
    let (index, tail) = rest.split_once(' ')?;
    if tail.trim() != "unavailable" {
        return None;
    }
    index.parse().ok()
}

/// The replica's refusal of client churn.
pub const READ_ONLY_REPLICA_ERR: &str = "-ERR read-only replica";

/// A backend's structured refusal of churn for an id outside its ring
/// ownership: `-ERR not owner <id>`. Seen in the instant between a
/// migration flip and a router thread refreshing its routing view —
/// retrying re-routes to the new owner.
pub fn render_not_owner(id: SubId) -> String {
    format!("-ERR not owner {}", id.0)
}

/// Recognizes [`render_not_owner`], returning the refused id.
pub fn parse_not_owner(line: &str) -> Option<SubId> {
    line.strip_prefix("-ERR not owner ")
        .and_then(|rest| rest.trim().parse::<u32>().ok())
        .map(SubId)
}

/// Whether a churn refusal is transient cluster state — a partition with
/// no serviceable node (failover may still fix it), a node answering
/// mid-role-flip, or an ex-owner answering mid-ownership-flip — and
/// therefore worth a client-side retry (each retry re-sends through the
/// router, which re-routes under its refreshed view).
pub fn is_retryable_churn_refusal(line: &str) -> bool {
    parse_backend_unavailable(line).is_some()
        || line.starts_with(READ_ONLY_REPLICA_ERR)
        || parse_not_owner(line).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::uniform(3, 16)
    }

    #[test]
    fn parses_all_verbs() {
        let schema = schema();
        let req = parse_request(&schema, "SUB 7 a0 = 3 AND a1 >= 5")
            .unwrap()
            .unwrap();
        match req {
            Request::Sub { id, sub } => {
                assert_eq!(id, SubId(7));
                assert_eq!(sub.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(&schema, "unsub 9").unwrap().unwrap(),
            Request::Unsub { id: SubId(9) }
        );
        assert!(matches!(
            parse_request(&schema, "PUB a0 = 1, a1 = 2")
                .unwrap()
                .unwrap(),
            Request::Pub { .. }
        ));
        assert_eq!(
            parse_request(&schema, "BATCH 16").unwrap().unwrap(),
            Request::Batch { count: 16 }
        );
        assert_eq!(
            parse_request(&schema, "STATS").unwrap().unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(&schema, "snapshot").unwrap().unwrap(),
            Request::Snapshot
        );
        assert_eq!(
            parse_request(&schema, "CLAIM 12").unwrap().unwrap(),
            Request::Claim { id: SubId(12) }
        );
        assert_eq!(
            parse_request(&schema, "topology").unwrap().unwrap(),
            Request::Topology
        );
        assert_eq!(
            parse_request(&schema, "PING").unwrap().unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(&schema, "QUIT").unwrap().unwrap(),
            Request::Quit
        );
        assert_eq!(
            parse_request(&schema, "REPLICATE 42").unwrap().unwrap(),
            Request::Replicate {
                from_seq: 42,
                v2: false,
                ring: None,
                reset: false
            }
        );
        assert_eq!(
            parse_request(&schema, "REPLICATE 42 v2").unwrap().unwrap(),
            Request::Replicate {
                from_seq: 42,
                v2: true,
                ring: None,
                reset: false
            }
        );
        assert_eq!(
            parse_request(&schema, "REPLICATE 42 v2 reset")
                .unwrap()
                .unwrap(),
            Request::Replicate {
                from_seq: 42,
                v2: true,
                ring: None,
                reset: true
            }
        );
        assert_eq!(
            parse_request(&schema, "REPLICATE 0 v2 ring 0,1,2 2")
                .unwrap()
                .unwrap(),
            Request::Replicate {
                from_seq: 0,
                v2: true,
                ring: Some(RingSpec {
                    members_csv: "0,1,2".into(),
                    keep_csv: "2".into()
                }),
                reset: false
            }
        );
        assert_eq!(
            parse_request(&schema, "REPLICATE 0 v2 ring 0,1,2 2 reset")
                .unwrap()
                .unwrap(),
            Request::Replicate {
                from_seq: 0,
                v2: true,
                ring: Some(RingSpec {
                    members_csv: "0,1,2".into(),
                    keep_csv: "2".into()
                }),
                reset: true
            }
        );
        assert!(parse_request(&schema, "REPLICATE 42 v3").is_err());
        assert!(parse_request(&schema, "REPLICATE 42 v2 x").is_err());
        assert!(parse_request(&schema, "REPLICATE 42 v2 ring 0,1").is_err());
        assert!(parse_request(&schema, "REPLICATE 42 v2 ring 0,1 1 x").is_err());
        assert!(parse_request(&schema, "REPLICATE 42 v2 reset x").is_err());
        assert_eq!(
            parse_request(&schema, "replack 7").unwrap().unwrap(),
            Request::ReplAck { seq: 7 }
        );
        assert_eq!(
            parse_request(&schema, "ROLE").unwrap().unwrap(),
            Request::Role
        );
        assert_eq!(
            parse_request(&schema, "PROMOTE").unwrap().unwrap(),
            Request::Promote
        );
        assert_eq!(
            parse_request(&schema, "DEMOTE 127.0.0.1:7001")
                .unwrap()
                .unwrap(),
            Request::Demote {
                addr: "127.0.0.1:7001".into()
            }
        );
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        let schema = schema();
        assert_eq!(parse_request(&schema, "   ").unwrap(), None);
        assert_eq!(parse_request(&schema, "# hi").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_requests() {
        let schema = schema();
        for bad in [
            "SUB",
            "SUB x a0 = 1",
            "SUB 1 a9 = 1",
            "UNSUB",
            "UNSUB x",
            "CLAIM",
            "CLAIM x",
            "PUB",
            "PUB nonsense",
            "BATCH",
            "BATCH 0",
            "BATCH -3",
            "REPLICATE",
            "REPLICATE x",
            "REPLACK",
            "REPLACK x",
            "DEMOTE",
            "FROB 1",
            "RESHARD",
            "RESHARD FROB",
            "RESHARD ADD",
            "RESHARD REMOVE",
            "RESHARD REMOVE x",
            "RESHARD PULL 127.0.0.1:1 0,1",
            "RESHARD PRUNE 0,1",
            "RESHARD STATUS extra",
        ] {
            assert!(parse_request(&schema, bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn reshard_verbs_parse() {
        let schema = schema();
        assert_eq!(
            parse_request(&schema, "RESHARD ADD 127.0.0.1:7010")
                .unwrap()
                .unwrap(),
            Request::Reshard(ReshardCmd::Add {
                primary: "127.0.0.1:7010".into(),
                followers: Vec::new()
            })
        );
        assert_eq!(
            parse_request(&schema, "reshard add 127.0.0.1:7010 127.0.0.1:7011")
                .unwrap()
                .unwrap(),
            Request::Reshard(ReshardCmd::Add {
                primary: "127.0.0.1:7010".into(),
                followers: vec!["127.0.0.1:7011".into()]
            })
        );
        assert_eq!(
            parse_request(
                &schema,
                "RESHARD ADD 127.0.0.1:7010 127.0.0.1:7011 127.0.0.1:7012"
            )
            .unwrap()
            .unwrap(),
            Request::Reshard(ReshardCmd::Add {
                primary: "127.0.0.1:7010".into(),
                followers: vec!["127.0.0.1:7011".into(), "127.0.0.1:7012".into()]
            })
        );
        assert_eq!(
            parse_request(&schema, "RESHARD REMOVE 2").unwrap().unwrap(),
            Request::Reshard(ReshardCmd::Remove { partition: 2 })
        );
        assert_eq!(
            parse_request(&schema, "RESHARD STATUS").unwrap().unwrap(),
            Request::Reshard(ReshardCmd::Status)
        );
        assert_eq!(
            parse_request(&schema, "RESHARD PULL 127.0.0.1:7001 0,1,2 2")
                .unwrap()
                .unwrap(),
            Request::Reshard(ReshardCmd::Pull {
                source: "127.0.0.1:7001".into(),
                scope: RingSpec {
                    members_csv: "0,1,2".into(),
                    keep_csv: "2".into()
                },
                donor: None
            })
        );
        assert_eq!(
            parse_request(&schema, "RESHARD PULL 127.0.0.1:7001 0,1,2 2 0,1 0")
                .unwrap()
                .unwrap(),
            Request::Reshard(ReshardCmd::Pull {
                source: "127.0.0.1:7001".into(),
                scope: RingSpec {
                    members_csv: "0,1,2".into(),
                    keep_csv: "2".into()
                },
                donor: Some(RingSpec {
                    members_csv: "0,1".into(),
                    keep_csv: "0".into()
                })
            })
        );
        assert_eq!(
            parse_request(&schema, "RESHARD CUTOFF").unwrap().unwrap(),
            Request::Reshard(ReshardCmd::Cutoff)
        );
        assert_eq!(
            parse_request(&schema, "RESHARD PRUNE 0,1,2 0,1")
                .unwrap()
                .unwrap(),
            Request::Reshard(ReshardCmd::Prune {
                scope: RingSpec {
                    members_csv: "0,1,2".into(),
                    keep_csv: "0,1".into()
                }
            })
        );
    }

    #[test]
    fn not_owner_round_trips_and_is_retryable() {
        let line = render_not_owner(SubId(41));
        assert_eq!(line, "-ERR not owner 41");
        assert_eq!(parse_not_owner(&line), Some(SubId(41)));
        assert_eq!(parse_not_owner("-ERR not owner x"), None);
        assert_eq!(parse_not_owner("-ERR read-only replica"), None);
        assert!(is_retryable_churn_refusal(&line));
    }

    #[test]
    fn result_round_trips() {
        let ids = vec![SubId(1), SubId(5), SubId(9)];
        let line = render_result(42, &ids);
        assert_eq!(line, "RESULT 42 3 1,5,9");
        assert_eq!(parse_result(&line).unwrap(), (42, ids));

        let empty = render_result(7, &[]);
        assert_eq!(empty, "RESULT 7 0");
        assert_eq!(parse_result(&empty).unwrap(), (7, Vec::new()));
    }

    #[test]
    fn partial_results_round_trip() {
        let ids = vec![SubId(2), SubId(8)];
        let line = render_result_ext(5, &ids, true);
        assert_eq!(line, "RESULT 5 2 2,8 partial");
        assert_eq!(parse_result_ext(&line).unwrap(), (5, ids.clone(), true));
        // The legacy parser tolerates the flag.
        assert_eq!(parse_result(&line).unwrap(), (5, ids));

        let empty = render_result_ext(9, &[], true);
        assert_eq!(empty, "RESULT 9 0 partial");
        assert_eq!(parse_result_ext(&empty).unwrap(), (9, Vec::new(), true));

        let full = render_result_ext(3, &[SubId(1)], false);
        assert_eq!(parse_result_ext(&full).unwrap(), (3, vec![SubId(1)], false));
        assert!(parse_result_ext("RESULT 1 1 4 bogus").is_err());
    }

    #[test]
    fn duplicate_error_round_trips() {
        let line = render_duplicate_error(SubId(77));
        assert_eq!(line, "-ERR duplicate 77");
        assert_eq!(parse_duplicate_error(&line), Some(SubId(77)));
        assert_eq!(parse_duplicate_error("-ERR duplicate subscription 7"), None);
        assert_eq!(parse_duplicate_error("-ERR unknown subscription 7"), None);
    }

    #[test]
    fn churn_acks_round_trip_and_parse_strictly() {
        assert_eq!(render_churn_ack(SubId(7), Some(42)), "+OK 7 seq 42");
        assert_eq!(render_churn_ack(SubId(7), None), "+OK 7");
        assert_eq!(parse_churn_ack_seq("+OK 7 seq 42"), Some(42));
        assert_eq!(parse_churn_ack_seq("+OK 7"), None);
        // Never mistake another `+OK` shape for a durable churn ack:
        // publish acks, claims, promotion replies, trailing garbage.
        assert_eq!(parse_churn_ack_seq("+OK 42"), None);
        assert_eq!(parse_churn_ack_seq("+OK claimed 7"), None);
        assert_eq!(parse_churn_ack_seq("+OK promoted seq 5"), None);
        assert_eq!(parse_churn_ack_seq("+OK 7 seq 42 extra"), None);
        assert_eq!(parse_churn_ack_seq("+OK 7 seq x"), None);
        assert_eq!(parse_churn_ack_seq("-ERR duplicate 7"), None);
    }

    #[test]
    fn replicate_headers_parse() {
        assert_eq!(
            parse_replicate_header("+OK replicate log 12").unwrap(),
            ReplicateStart::Log { backlog: 12 }
        );
        assert_eq!(
            parse_replicate_header("+OK replicate snapshot 40 97").unwrap(),
            ReplicateStart::Snapshot { subs: 40, seq: 97 }
        );
        assert_eq!(
            parse_replicate_header("+OK replicate colstore 3 40 97").unwrap(),
            ReplicateStart::Colstore {
                blocks: 3,
                subs: 40,
                seq: 97
            }
        );
        assert_eq!(
            parse_replicate_header("+OK replicate truncate 97 deadbeef").unwrap(),
            ReplicateStart::Truncate {
                seq: 97,
                crc: 0xdead_beef
            }
        );
        assert_eq!(
            render_replicate_truncate(97, 0xdead_beef),
            "+OK replicate truncate 97 deadbeef"
        );
        assert!(parse_replicate_header("+OK replicate").is_err());
        assert!(parse_replicate_header("+OK replicate log").is_err());
        assert!(parse_replicate_header("+OK replicate truncate 97").is_err());
        assert!(parse_replicate_header("+OK replicate truncate 97 zzz").is_err());
        assert!(parse_replicate_header("+OK replicate snapshot 4").is_err());
        assert!(parse_replicate_header("+OK replicate colstore 3 40").is_err());
        assert!(parse_replicate_header("-ERR persistence disabled").is_err());
    }

    #[test]
    fn role_reports_round_trip() {
        let primary = RoleReport {
            primary: true,
            seq: 88,
            lag: 3,
            connected: 1,
            following: None,
            acked: 85,
        };
        let line = render_role_report(&primary);
        assert_eq!(line, "+OK role primary seq 88 followers 1 lag 3 acked 85");
        assert_eq!(parse_role_report(&line).unwrap(), primary);
        // Pre-chain primaries omitted `acked`; it defaults to `seq`.
        let legacy = parse_role_report("+OK role primary seq 88 followers 1 lag 3").unwrap();
        assert_eq!(legacy.acked, 88);

        let replica = RoleReport {
            primary: false,
            seq: 85,
            lag: 0,
            connected: 1,
            following: Some("127.0.0.1:7001".into()),
            acked: 85,
        };
        let line = render_role_report(&replica);
        assert_eq!(
            line,
            "+OK role replica of 127.0.0.1:7001 applied 85 connected 1"
        );
        assert_eq!(parse_role_report(&line).unwrap(), replica);
        // The `+` is optional, as `BrokerClient::expect_ok` strips it.
        assert_eq!(
            parse_role_report("OK role primary seq 0 followers 0 lag 0")
                .unwrap()
                .seq,
            0
        );
        assert!(parse_role_report("+OK topology standalone").is_err());
    }

    #[test]
    fn backend_unavailable_round_trips_and_classifies() {
        let line = render_backend_unavailable(3);
        assert_eq!(line, "-ERR backend 3 unavailable");
        assert_eq!(parse_backend_unavailable(&line), Some(3));
        assert_eq!(
            parse_backend_unavailable("-ERR backend x unavailable"),
            None
        );
        assert_eq!(parse_backend_unavailable("-ERR backend 3 down"), None);
        assert!(is_retryable_churn_refusal(&line));
        assert!(is_retryable_churn_refusal(READ_ONLY_REPLICA_ERR));
        assert!(!is_retryable_churn_refusal("-ERR duplicate 7"));
    }

    #[test]
    fn summary_verb_parses() {
        let schema = schema();
        assert_eq!(
            parse_request(&schema, "SUMMARY 0").unwrap().unwrap(),
            Request::Summary { epoch: 0 }
        );
        assert_eq!(
            parse_request(&schema, "summary 42").unwrap().unwrap(),
            Request::Summary { epoch: 42 }
        );
        assert!(parse_request(&schema, "SUMMARY").is_err());
        assert!(parse_request(&schema, "SUMMARY x").is_err());
    }

    #[test]
    fn summary_replies_round_trip() {
        let unchanged = render_summary_unchanged(9);
        assert_eq!(unchanged, "+OK summary unchanged 9");
        assert_eq!(
            parse_summary_reply(&unchanged).unwrap(),
            SummaryReply::Unchanged { epoch: 9 }
        );

        let bits = FixedBitSet::from_indices(130, [0usize, 63, 64, 129]);
        let line = render_summary_reply(3, &bits);
        match parse_summary_reply(&line).unwrap() {
            SummaryReply::Summary {
                epoch,
                bits: parsed,
            } => {
                assert_eq!(epoch, 3);
                assert_eq!(parsed.nbits(), 130);
                assert_eq!(
                    parsed.ones().collect::<Vec<_>>(),
                    bits.ones().collect::<Vec<_>>()
                );
            }
            other => panic!("{other:?}"),
        }
        // Empty bitset round-trips too.
        let empty = FixedBitSet::new(64);
        let line = render_summary_reply(1, &empty);
        assert_eq!(
            parse_summary_reply(&line).unwrap(),
            SummaryReply::Summary {
                epoch: 1,
                bits: empty
            }
        );
        // The `+` is optional.
        assert!(parse_summary_reply("OK summary unchanged 2").is_ok());
        assert!(parse_summary_reply("+OK summary 1 64").is_err());
        assert!(parse_summary_reply("+OK summary 1 128 0").is_err());
        assert!(parse_summary_reply("+OK topology standalone").is_err());
    }

    #[test]
    fn event_notification_renders_through_schema() {
        let schema = schema();
        let ev = parser::parse_event(&schema, "a0 = 1, a2 = 5").unwrap();
        let line = render_event_notification(SubId(3), &ev, &schema);
        assert!(line.starts_with("EVENT 3 "));
        let body = line.strip_prefix("EVENT 3 ").unwrap();
        assert_eq!(parser::parse_event(&schema, body).unwrap(), ev);
    }
}
