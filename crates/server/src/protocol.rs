//! Newline-delimited text protocol.
//!
//! Requests (one per line; verbs are case-insensitive, arguments reuse the
//! `bexpr` parser syntax):
//!
//! ```text
//! SUB <id> <expr>      subscribe, e.g. SUB 7 a0 = 3 AND a1 >= 5
//! UNSUB <id>           unsubscribe
//! CLAIM <id>           take over ownership (notifications) of a live id
//! PUB <event>          publish one event, e.g. PUB a0 = 3, a1 = 9
//! BATCH <n>            the next n lines are events, published as one batch
//! STATS                server counters
//! SNAPSHOT             force a durable snapshot + log rotation now
//! TOPOLOGY             cluster membership report (routers; servers answer
//!                      `+OK topology standalone`)
//! PING                 liveness probe
//! QUIT                 close this connection
//! ```
//!
//! Replies: `+OK ...` / `-ERR <message>` for commands, and asynchronous
//! lines pushed by the matcher:
//!
//! ```text
//! RESULT <seq> <n> [id,id,...] [partial]   match row for event <seq>
//! EVENT <id> <event>             notification to the subscriber owning <id>
//! ```
//!
//! The trailing `partial` token is emitted only by the cluster router, when
//! one or more backends were unreachable while the window was matched — the
//! row covers the surviving partitions only.
//!
//! `STATS` replies with `+OK stats`, `key value` lines, then `.` alone.
//!
//! A `SUB` whose id is already live answers the *structured* error
//! `-ERR duplicate <id>` (see [`render_duplicate_error`]) so routers and
//! clients can drive `CLAIM` automatically — unless the offered expression
//! is byte-identical to the live one, in which case the server treats it as
//! a claim and transfers ownership (`+OK claimed <id>`).

use apcm_bexpr::{parser, BexprError, Event, Schema, SubId, Subscription};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Sub {
        id: SubId,
        sub: Subscription,
    },
    Unsub {
        id: SubId,
    },
    /// Take over ownership of a live subscription (notifications resume on
    /// this connection). The reclaim path after a broker restart.
    Claim {
        id: SubId,
    },
    Pub {
        event: Event,
    },
    Batch {
        count: usize,
    },
    Stats,
    /// Force a snapshot + log rotation now (requires persistence).
    Snapshot,
    /// Cluster membership/health report (meaningful on a router).
    Topology,
    Ping,
    Quit,
}

/// Parses one request line. `None` for blank lines and `#` comments.
pub fn parse_request(schema: &Schema, line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let request = match verb.to_ascii_uppercase().as_str() {
        "SUB" => {
            let (id_text, expr) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: SUB <id> <expr>")?;
            let id = parse_id(id_text)?;
            let sub = parser::parse_subscription_with_id(schema, id, expr.trim())
                .map_err(|e| bexpr_msg("expression", &e))?;
            Request::Sub { id, sub }
        }
        "UNSUB" => {
            if rest.is_empty() {
                return Err("usage: UNSUB <id>".into());
            }
            Request::Unsub {
                id: parse_id(rest)?,
            }
        }
        "CLAIM" => {
            if rest.is_empty() {
                return Err("usage: CLAIM <id>".into());
            }
            Request::Claim {
                id: parse_id(rest)?,
            }
        }
        "PUB" => {
            if rest.is_empty() {
                return Err("usage: PUB <event>".into());
            }
            let event = parser::parse_event(schema, rest).map_err(|e| bexpr_msg("event", &e))?;
            Request::Pub { event }
        }
        "BATCH" => {
            let count: usize = rest
                .parse()
                .map_err(|_| format!("bad batch size `{rest}`"))?;
            if count == 0 {
                return Err("batch size must be positive".into());
            }
            Request::Batch { count }
        }
        "STATS" => Request::Stats,
        "SNAPSHOT" => Request::Snapshot,
        "TOPOLOGY" => Request::Topology,
        "PING" => Request::Ping,
        "QUIT" => Request::Quit,
        other => return Err(format!("unknown verb `{other}`")),
    };
    Ok(Some(request))
}

fn parse_id(text: &str) -> Result<SubId, String> {
    text.trim()
        .parse::<u32>()
        .map(SubId)
        .map_err(|_| format!("bad subscription id `{text}`"))
}

fn bexpr_msg(what: &str, err: &BexprError) -> String {
    format!("bad {what}: {err}")
}

/// Renders a `RESULT` line for event `seq` of a publish.
pub fn render_result(seq: u64, ids: &[SubId]) -> String {
    render_result_ext(seq, ids, false)
}

/// Renders a `RESULT` line, optionally flagged `partial` (cluster router:
/// one or more backends were unreachable for this window).
pub fn render_result_ext(seq: u64, ids: &[SubId], partial: bool) -> String {
    let mut out = format!("RESULT {seq} {}", ids.len());
    if !ids.is_empty() {
        out.push(' ');
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&id.0.to_string());
        }
    }
    if partial {
        out.push_str(" partial");
    }
    out
}

/// Parses a `RESULT` line back into `(seq, ids)` — used by the bundled
/// client and tests. Tolerates (and discards) a `partial` flag; use
/// [`parse_result_ext`] to observe it.
pub fn parse_result(line: &str) -> Result<(u64, Vec<SubId>), String> {
    parse_result_ext(line).map(|(seq, ids, _)| (seq, ids))
}

/// Parses a `RESULT` line into `(seq, ids, partial)`.
pub fn parse_result_ext(line: &str) -> Result<(u64, Vec<SubId>, bool), String> {
    let rest = line
        .strip_prefix("RESULT ")
        .ok_or_else(|| format!("not a RESULT line: `{line}`"))?;
    let mut parts = rest.split_whitespace();
    let seq: u64 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("RESULT missing seq")?;
    let count: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("RESULT missing count")?;
    let mut partial = false;
    let ids = match parts.next() {
        None if count == 0 => Vec::new(),
        Some("partial") if count == 0 => {
            partial = true;
            Vec::new()
        }
        Some(csv) => csv
            .split(',')
            .map(|t| t.parse::<u32>().map(SubId))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("bad RESULT ids: {e}"))?,
        None => return Err("RESULT ids missing".into()),
    };
    match parts.next() {
        None => {}
        Some("partial") if !partial => partial = true,
        Some(extra) => return Err(format!("unexpected RESULT token `{extra}`")),
    }
    if ids.len() != count {
        return Err(format!("RESULT count {count} != {} ids", ids.len()));
    }
    Ok((seq, ids, partial))
}

/// The structured duplicate-subscription error: `-ERR duplicate <id>`.
/// Routers and clients match on this exact shape to drive `CLAIM`.
pub fn render_duplicate_error(id: SubId) -> String {
    format!("-ERR duplicate {}", id.0)
}

/// Recognizes [`render_duplicate_error`] output, returning the id.
pub fn parse_duplicate_error(line: &str) -> Option<SubId> {
    line.strip_prefix("-ERR duplicate ")
        .and_then(|rest| rest.trim().parse::<u32>().ok())
        .map(SubId)
}

/// Renders an `EVENT` notification for a subscriber.
pub fn render_event_notification(id: SubId, event: &Event, schema: &Schema) -> String {
    format!("EVENT {} {}", id.0, event.display(schema))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::uniform(3, 16)
    }

    #[test]
    fn parses_all_verbs() {
        let schema = schema();
        let req = parse_request(&schema, "SUB 7 a0 = 3 AND a1 >= 5")
            .unwrap()
            .unwrap();
        match req {
            Request::Sub { id, sub } => {
                assert_eq!(id, SubId(7));
                assert_eq!(sub.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(&schema, "unsub 9").unwrap().unwrap(),
            Request::Unsub { id: SubId(9) }
        );
        assert!(matches!(
            parse_request(&schema, "PUB a0 = 1, a1 = 2")
                .unwrap()
                .unwrap(),
            Request::Pub { .. }
        ));
        assert_eq!(
            parse_request(&schema, "BATCH 16").unwrap().unwrap(),
            Request::Batch { count: 16 }
        );
        assert_eq!(
            parse_request(&schema, "STATS").unwrap().unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(&schema, "snapshot").unwrap().unwrap(),
            Request::Snapshot
        );
        assert_eq!(
            parse_request(&schema, "CLAIM 12").unwrap().unwrap(),
            Request::Claim { id: SubId(12) }
        );
        assert_eq!(
            parse_request(&schema, "topology").unwrap().unwrap(),
            Request::Topology
        );
        assert_eq!(
            parse_request(&schema, "PING").unwrap().unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(&schema, "QUIT").unwrap().unwrap(),
            Request::Quit
        );
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        let schema = schema();
        assert_eq!(parse_request(&schema, "   ").unwrap(), None);
        assert_eq!(parse_request(&schema, "# hi").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_requests() {
        let schema = schema();
        for bad in [
            "SUB",
            "SUB x a0 = 1",
            "SUB 1 a9 = 1",
            "UNSUB",
            "UNSUB x",
            "CLAIM",
            "CLAIM x",
            "PUB",
            "PUB nonsense",
            "BATCH",
            "BATCH 0",
            "BATCH -3",
            "FROB 1",
        ] {
            assert!(parse_request(&schema, bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn result_round_trips() {
        let ids = vec![SubId(1), SubId(5), SubId(9)];
        let line = render_result(42, &ids);
        assert_eq!(line, "RESULT 42 3 1,5,9");
        assert_eq!(parse_result(&line).unwrap(), (42, ids));

        let empty = render_result(7, &[]);
        assert_eq!(empty, "RESULT 7 0");
        assert_eq!(parse_result(&empty).unwrap(), (7, Vec::new()));
    }

    #[test]
    fn partial_results_round_trip() {
        let ids = vec![SubId(2), SubId(8)];
        let line = render_result_ext(5, &ids, true);
        assert_eq!(line, "RESULT 5 2 2,8 partial");
        assert_eq!(parse_result_ext(&line).unwrap(), (5, ids.clone(), true));
        // The legacy parser tolerates the flag.
        assert_eq!(parse_result(&line).unwrap(), (5, ids));

        let empty = render_result_ext(9, &[], true);
        assert_eq!(empty, "RESULT 9 0 partial");
        assert_eq!(parse_result_ext(&empty).unwrap(), (9, Vec::new(), true));

        let full = render_result_ext(3, &[SubId(1)], false);
        assert_eq!(parse_result_ext(&full).unwrap(), (3, vec![SubId(1)], false));
        assert!(parse_result_ext("RESULT 1 1 4 bogus").is_err());
    }

    #[test]
    fn duplicate_error_round_trips() {
        let line = render_duplicate_error(SubId(77));
        assert_eq!(line, "-ERR duplicate 77");
        assert_eq!(parse_duplicate_error(&line), Some(SubId(77)));
        assert_eq!(parse_duplicate_error("-ERR duplicate subscription 7"), None);
        assert_eq!(parse_duplicate_error("-ERR unknown subscription 7"), None);
    }

    #[test]
    fn event_notification_renders_through_schema() {
        let schema = schema();
        let ev = parser::parse_event(&schema, "a0 = 1, a2 = 5").unwrap();
        let line = render_event_notification(SubId(3), &ev, &schema);
        assert!(line.starts_with("EVENT 3 "));
        let body = line.strip_prefix("EVENT 3 ").unwrap();
        assert_eq!(parser::parse_event(&schema, body).unwrap(), ev);
    }
}
