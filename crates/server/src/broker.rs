//! TCP broker: accept loop, per-connection worker threads, result
//! delivery, background maintenance, and graceful shutdown.
//!
//! Threading model (`std::net` + threads, no async runtime):
//!
//! * one **accept** thread polling a non-blocking listener;
//! * per connection, a **reader** thread (parses requests, executes
//!   control commands inline, queues publishes into the ingest pipeline)
//!   and a **writer** thread draining the connection's bounded outbound
//!   queue — the slow-consumer boundary;
//! * one **matcher** thread inside [`IngestPipeline`];
//! * one **maintenance** thread sweeping every shard's `maintain()`.
//!
//! Subscriptions are durable: a closed connection keeps its subscriptions
//! live (notifications for them are silently discarded until another
//! connection re-subscribes or unsubscribes the ids).

use apcm_bexpr::{Schema, SubId};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::config::{ServerConfig, SlowConsumerPolicy};
use crate::ingest::{IngestItem, IngestPipeline, ResultSink};
use crate::protocol::{self, Request};
use crate::shard::ShardedEngine;
use crate::stats::ServerStats;

/// Outbound handle for one connection.
struct ConnHandle {
    out: Sender<String>,
    stream: TcpStream,
}

/// State shared by every thread: the registry of live connections and
/// subscription ownership, plus delivery policy. Doubles as the ingest
/// pipeline's [`ResultSink`].
struct Hub {
    schema: Schema,
    stats: Arc<ServerStats>,
    policy: SlowConsumerPolicy,
    conns: Mutex<HashMap<u64, ConnHandle>>,
    /// Which connection owns (receives `EVENT` notifications for) each id.
    owners: RwLock<HashMap<SubId, u64>>,
}

impl Hub {
    /// Queues `line` on a connection's outbound queue, applying the
    /// slow-consumer policy on overflow. Unknown connections (already
    /// closed) discard silently.
    fn push_line(&self, conn_id: u64, line: String) {
        let mut conns = self.conns.lock();
        let Some(handle) = conns.get(&conn_id) else {
            return;
        };
        match handle.out.try_send(line) {
            Ok(()) => {
                ServerStats::add(&self.stats.replies_sent, 1);
            }
            Err(TrySendError::Full(_)) => match self.policy {
                SlowConsumerPolicy::Drop => {
                    ServerStats::add(&self.stats.replies_dropped, 1);
                }
                SlowConsumerPolicy::Disconnect => {
                    ServerStats::add(&self.stats.slow_disconnects, 1);
                    let handle = conns.remove(&conn_id).expect("checked above");
                    // Reader unblocks on the socket shutdown and cleans up;
                    // the writer exits once the last queue sender drops.
                    let _ = handle.stream.shutdown(Shutdown::Both);
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                conns.remove(&conn_id);
            }
        }
    }
}

impl ResultSink for Hub {
    fn on_window(&self, items: &[IngestItem], rows: &[Vec<SubId>]) {
        for (item, row) in items.iter().zip(rows) {
            self.push_line(item.conn, protocol::render_result(item.seq, row));
            for &id in row {
                let owner = self.owners.read().get(&id).copied();
                if let Some(owner) = owner {
                    self.push_line(
                        owner,
                        protocol::render_event_notification(id, &item.event, &self.schema),
                    );
                }
            }
        }
    }
}

/// Everything a connection's reader thread needs.
struct ConnCtx {
    hub: Arc<Hub>,
    engine: Arc<ShardedEngine>,
    ingest: Sender<IngestItem>,
    /// Receiver clone used only for `len()` (queue depth in `STATS`).
    ingest_depth: Receiver<IngestItem>,
}

/// A running broker. Dropping without calling [`Server::shutdown`] aborts
/// connections ungracefully; call `shutdown` for an orderly stop.
pub struct Server {
    hub: Arc<Hub>,
    engine: Arc<ShardedEngine>,
    stats: Arc<ServerStats>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    maintenance_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pipeline: Option<IngestPipeline>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts all
    /// background threads.
    pub fn start(schema: Schema, config: ServerConfig, addr: &str) -> std::io::Result<Server> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let engine =
            Arc::new(ShardedEngine::new(&schema, &config).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?);
        let stats = Arc::new(ServerStats::default());
        let hub = Arc::new(Hub {
            schema,
            stats: stats.clone(),
            policy: config.slow_consumer,
            conns: Mutex::new(HashMap::new()),
            owners: RwLock::new(HashMap::new()),
        });
        let pipeline = IngestPipeline::start(engine.clone(), stats.clone(), hub.clone(), &config);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let ingest_tx = pipeline.sender();

        let accept_thread = {
            let hub = hub.clone();
            let engine = engine.clone();
            let stats = stats.clone();
            let shutdown = shutdown.clone();
            let conn_threads = conn_threads.clone();
            let conn_queue = config.conn_queue;
            let ingest_depth = pipeline.depth_handle();
            std::thread::Builder::new()
                .name("apcm-accept".into())
                .spawn(move || {
                    let mut next_conn = 1u64;
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let conn_id = next_conn;
                                next_conn += 1;
                                ServerStats::add(&stats.conns_total, 1);
                                ServerStats::add(&stats.conns_active, 1);
                                let ctx = Arc::new(ConnCtx {
                                    hub: hub.clone(),
                                    engine: engine.clone(),
                                    ingest: ingest_tx.clone(),
                                    ingest_depth: ingest_depth.clone(),
                                });
                                spawn_connection(ctx, stream, conn_id, conn_queue, &conn_threads);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawning accept thread")
        };

        let maintenance_thread = {
            let engine = engine.clone();
            let stats = stats.clone();
            let shutdown = shutdown.clone();
            let interval = config.maintenance_interval;
            std::thread::Builder::new()
                .name("apcm-maintenance".into())
                .spawn(move || {
                    // Sleep in small quanta so shutdown latency stays
                    // bounded regardless of the maintenance interval.
                    let quantum = Duration::from_millis(20).min(interval);
                    'outer: loop {
                        let mut waited = Duration::ZERO;
                        while waited < interval {
                            if shutdown.load(Ordering::SeqCst) {
                                break 'outer;
                            }
                            std::thread::sleep(quantum);
                            waited += quantum;
                        }
                        let report = engine.maintain();
                        stats.record_maintenance(&report);
                    }
                })
                .expect("spawning maintenance thread")
        };

        Ok(Server {
            hub,
            engine,
            stats,
            addr: local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            maintenance_thread: Some(maintenance_thread),
            conn_threads,
            pipeline: Some(pipeline),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Graceful shutdown: stop accepting, close every connection, join all
    /// worker threads, drain the ingest pipeline, and return the final
    /// rendered stats. Bounded: sockets are shut down before joining, so no
    /// thread is left blocked on I/O.
    pub fn shutdown(mut self) -> String {
        self.shutdown.store(true, Ordering::SeqCst);

        if let Some(t) = self.maintenance_thread.take() {
            let _ = t.join(); // exits within one sleep quantum
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join(); // exits within one poll interval
        }

        // Closing the sockets unblocks every reader; readers drop their
        // ingest senders and outbound queue handles on the way out.
        {
            let conns = self.hub.conns.lock();
            for handle in conns.values() {
                let _ = handle.stream.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock());
        for t in handles {
            let _ = t.join();
        }
        // All publisher senders are gone; the matcher drains and exits.
        let depth = self
            .pipeline
            .take()
            .map(|p| {
                let d = p.depth();
                p.shutdown();
                d
            })
            .unwrap_or(0);

        let mut out = self.stats.render(&self.engine.per_shard_len(), depth);
        out.push_str(&format!("engine {}\n", self.engine.engine_name()));
        out.push_str(&format!("shards {}\n", self.engine.shard_count()));
        out
    }
}

/// Spawns the reader + writer thread pair for one accepted connection.
fn spawn_connection(
    ctx: Arc<ConnCtx>,
    stream: TcpStream,
    conn_id: u64,
    conn_queue: usize,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let (out_tx, out_rx) = bounded::<String>(conn_queue);

    let writer = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        std::thread::Builder::new()
            .name(format!("apcm-conn-{conn_id}-w"))
            .spawn(move || write_loop(stream, out_rx))
            .expect("spawning connection writer")
    };

    let reader = {
        let registry_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        ctx.hub.conns.lock().insert(
            conn_id,
            ConnHandle {
                out: out_tx.clone(),
                stream: registry_stream,
            },
        );
        std::thread::Builder::new()
            .name(format!("apcm-conn-{conn_id}-r"))
            .spawn(move || {
                read_loop(&ctx, stream, conn_id, out_tx);
                // Cleanup: deregister and release the writer.
                ctx.hub.conns.lock().remove(&conn_id);
                ServerStats::sub(&ctx.hub.stats.conns_active, 1);
            })
            .expect("spawning connection reader")
    };

    let mut threads = conn_threads.lock();
    threads.push(writer);
    threads.push(reader);
}

fn write_loop(stream: TcpStream, out_rx: Receiver<String>) {
    let mut w = BufWriter::new(stream);
    while let Ok(line) = out_rx.recv() {
        if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            return;
        }
        // Batch flushes: only force the buffer out when the queue is idle.
        if out_rx.is_empty() && w.flush().is_err() {
            return;
        }
    }
    let _ = w.flush();
}

/// Parses and executes requests until EOF, error, or QUIT.
fn read_loop(ctx: &ConnCtx, stream: TcpStream, conn_id: u64, out: Sender<String>) {
    let stats = &ctx.hub.stats;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut next_seq = 0u64;
    // Control replies go through the same queue as async results; a
    // blocking send here only ever waits on this connection's own writer.
    let reply = |text: String| {
        let _ = out.send(text);
        ServerStats::add(&stats.replies_sent, 1);
    };
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let request = match protocol::parse_request(&ctx.hub.schema, &line) {
            Ok(Some(req)) => req,
            Ok(None) => continue,
            Err(msg) => {
                ServerStats::add(&stats.protocol_errors, 1);
                reply(format!("-ERR {msg}"));
                continue;
            }
        };
        match request {
            Request::Sub { id, sub } => match ctx.engine.subscribe(&sub) {
                Ok(true) => {
                    ctx.hub.owners.write().insert(id, conn_id);
                    ServerStats::add(&stats.subs_added, 1);
                    reply(format!("+OK {}", id.0));
                }
                Ok(false) => {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply(format!("-ERR duplicate subscription {}", id.0));
                }
                Err(e) => {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply(format!("-ERR bad subscription: {e}"));
                }
            },
            Request::Unsub { id } => {
                if ctx.engine.unsubscribe(id) {
                    ctx.hub.owners.write().remove(&id);
                    ServerStats::add(&stats.subs_removed, 1);
                    reply(format!("+OK {}", id.0));
                } else {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply(format!("-ERR unknown subscription {}", id.0));
                }
            }
            Request::Pub { event } => {
                let seq = next_seq;
                next_seq += 1;
                ServerStats::add(&stats.events_in, 1);
                if ctx
                    .ingest
                    .send(IngestItem {
                        conn: conn_id,
                        seq,
                        event,
                    })
                    .is_err()
                {
                    reply("-ERR server shutting down".into());
                    return;
                }
                reply(format!("+OK {seq}"));
            }
            Request::Batch { count } => {
                let first = next_seq;
                let mut accepted = 0usize;
                for i in 0..count {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    match apcm_bexpr::parser::parse_event(&ctx.hub.schema, line.trim()) {
                        Ok(event) => {
                            let seq = next_seq;
                            next_seq += 1;
                            accepted += 1;
                            ServerStats::add(&stats.events_in, 1);
                            if ctx
                                .ingest
                                .send(IngestItem {
                                    conn: conn_id,
                                    seq,
                                    event,
                                })
                                .is_err()
                            {
                                reply("-ERR server shutting down".into());
                                return;
                            }
                        }
                        Err(e) => {
                            ServerStats::add(&stats.protocol_errors, 1);
                            reply(format!("-ERR batch line {i}: bad event: {e}"));
                        }
                    }
                }
                reply(format!("+OK batch {first} {accepted}"));
            }
            Request::Stats => {
                let body = stats.render(&ctx.engine.per_shard_len(), ctx.ingest_depth.len());
                // One queued string so async RESULT/EVENT lines cannot
                // interleave inside the multi-line response.
                reply(format!("+OK stats\n{body}."));
            }
            Request::Ping => reply("+PONG".into()),
            Request::Quit => {
                reply("+OK bye".into());
                return;
            }
        }
    }
}
