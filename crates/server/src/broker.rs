//! TCP broker: accept loop, per-connection worker threads, result
//! delivery, background maintenance, and graceful shutdown.
//!
//! Threading model (`std::net` + threads, no async runtime):
//!
//! * one **accept** thread polling a non-blocking listener;
//! * per connection, a **reader** thread (parses requests, executes
//!   control commands inline, queues publishes into the ingest pipeline)
//!   and a **writer** thread draining the connection's bounded outbound
//!   queue — the slow-consumer boundary;
//! * one **matcher** thread inside [`IngestPipeline`];
//! * one **maintenance** thread sweeping every shard's `maintain()`, the
//!   persister's [`Persister::maintenance_tick`], and idle connections.
//!
//! Subscriptions are durable within a run: a closed connection keeps its
//! subscriptions live (notifications for them are silently discarded until
//! another connection re-subscribes or unsubscribes the ids). With
//! `ServerConfig::persist` set they are durable across runs too — churn is
//! acknowledged only after it reaches the append log, and startup restores
//! the snapshot + log into the engine before the listener opens.
//!
//! Inbound hardening: every protocol line is read through a byte-capped
//! reader (`max_line_bytes`) — an oversized line is discarded up to its
//! newline and answered with a structured `-ERR`, never buffered
//! unboundedly. Connections silent for longer than `idle_timeout` are
//! reaped by the maintenance sweep.

use apcm_bexpr::{Schema, SubId, Subscription};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::{ServerConfig, SlowConsumerPolicy};
use crate::ingest::{IngestItem, IngestPipeline, ResultSink};
use crate::persist::{ChurnError, Persister, RecoveryReport};
use crate::protocol::{self, Request};
use crate::shard::ShardedEngine;
use crate::stats::ServerStats;

/// Outbound handle for one connection.
struct ConnHandle {
    out: Sender<String>,
    stream: TcpStream,
    /// Milliseconds since the server epoch of the last inbound line; the
    /// idle sweep compares this against `idle_timeout`.
    activity: Arc<AtomicU64>,
}

/// Compact fingerprint of a subscription's expression, used to decide
/// whether a duplicate `SUB` is a reconnect offering the byte-identical
/// expression (ownership takeover) or a genuinely conflicting id. The
/// parser normalizes predicate order, so two byte-identical protocol lines
/// always fingerprint equal.
fn sub_fingerprint(sub: &Subscription) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    sub.hash(&mut h);
    h.finish()
}

/// State shared by every thread: the registry of live connections and
/// subscription ownership, plus delivery policy. Doubles as the ingest
/// pipeline's [`ResultSink`].
struct Hub {
    schema: Schema,
    stats: Arc<ServerStats>,
    policy: SlowConsumerPolicy,
    conns: Mutex<HashMap<u64, ConnHandle>>,
    /// Which connection owns (receives `EVENT` notifications for) each id.
    owners: RwLock<HashMap<SubId, u64>>,
    /// Fingerprint of every live subscription's expression (seeded from
    /// recovery, maintained by SUB/UNSUB). Backs `CLAIM` liveness checks
    /// and identical-expression takeover without cloning expressions.
    live: RwLock<HashMap<SubId, u64>>,
}

impl Hub {
    /// Queues `line` on a connection's outbound queue, applying the
    /// slow-consumer policy on overflow. Unknown connections (already
    /// closed) discard silently.
    fn push_line(&self, conn_id: u64, line: String) {
        let mut conns = self.conns.lock();
        let Some(handle) = conns.get(&conn_id) else {
            return;
        };
        match handle.out.try_send(line) {
            Ok(()) => {
                ServerStats::add(&self.stats.replies_sent, 1);
            }
            Err(TrySendError::Full(_)) => match self.policy {
                SlowConsumerPolicy::Drop => {
                    ServerStats::add(&self.stats.replies_dropped, 1);
                }
                SlowConsumerPolicy::Disconnect => {
                    ServerStats::add(&self.stats.slow_disconnects, 1);
                    let handle = conns.remove(&conn_id).expect("checked above");
                    // Reader unblocks on the socket shutdown and cleans up;
                    // the writer exits once the last queue sender drops.
                    let _ = handle.stream.shutdown(Shutdown::Both);
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                conns.remove(&conn_id);
            }
        }
    }

    /// Shuts down connections idle longer than `timeout`. The socket
    /// shutdown unblocks the reader, which then deregisters itself.
    fn reap_idle(&self, epoch: Instant, timeout: Duration) {
        let now_ms = epoch.elapsed().as_millis() as u64;
        let limit_ms = timeout.as_millis() as u64;
        let mut conns = self.conns.lock();
        conns.retain(|_, handle| {
            let idle = now_ms.saturating_sub(handle.activity.load(Ordering::Relaxed));
            if idle > limit_ms {
                ServerStats::add(&self.stats.idle_reaped, 1);
                let _ = handle.stream.shutdown(Shutdown::Both);
                false
            } else {
                true
            }
        });
    }
}

impl ResultSink for Hub {
    fn on_window(&self, items: &[IngestItem], rows: &[Vec<SubId>]) {
        for (item, row) in items.iter().zip(rows) {
            self.push_line(item.conn, protocol::render_result(item.seq, row));
            for &id in row {
                let owner = self.owners.read().get(&id).copied();
                if let Some(owner) = owner {
                    self.push_line(
                        owner,
                        protocol::render_event_notification(id, &item.event, &self.schema),
                    );
                }
            }
        }
    }
}

/// Everything a connection's reader thread needs.
struct ConnCtx {
    hub: Arc<Hub>,
    engine: Arc<ShardedEngine>,
    persist: Option<Arc<Persister>>,
    ingest: Sender<IngestItem>,
    /// Receiver clone used only for `len()` (queue depth in `STATS`).
    ingest_depth: Receiver<IngestItem>,
    epoch: Instant,
    max_line_bytes: usize,
}

/// Outcome of one capped line read.
pub enum LineOutcome {
    /// A complete line (newline stripped) is in the caller's buffer.
    Line,
    /// The line exceeded the cap; it was discarded through its newline.
    TooLong,
    Eof,
}

/// Reads one `\n`-terminated line into `line`, refusing to buffer more
/// than `max` bytes: once a line overflows, the remainder is consumed and
/// discarded until its newline and `TooLong` is returned. Works on
/// `fill_buf`/`consume` so no input byte is ever lost or double-read. A
/// final unterminated line at EOF is returned as a normal line.
///
/// Public so the cluster router (`apcm-cluster`) applies the same inbound
/// hardening to its client connections.
pub fn read_capped_line(
    reader: &mut impl BufRead,
    line: &mut String,
    max: usize,
) -> std::io::Result<LineOutcome> {
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if overflowed {
                LineOutcome::TooLong
            } else if buf.is_empty() {
                LineOutcome::Eof
            } else {
                *line = String::from_utf8_lossy(&buf).into_owned();
                LineOutcome::Line
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflowed && buf.len() + pos <= max {
                    buf.extend_from_slice(&available[..pos]);
                } else {
                    overflowed = true;
                }
                reader.consume(pos + 1);
                return Ok(if overflowed {
                    LineOutcome::TooLong
                } else {
                    *line = String::from_utf8_lossy(&buf).into_owned();
                    LineOutcome::Line
                });
            }
            None => {
                let n = available.len();
                if !overflowed && buf.len() + n <= max {
                    buf.extend_from_slice(available);
                } else {
                    overflowed = true;
                    buf.clear();
                }
                reader.consume(n);
            }
        }
    }
}

/// A running broker. Dropping without calling [`Server::shutdown`] aborts
/// connections ungracefully; call `shutdown` for an orderly stop.
pub struct Server {
    hub: Arc<Hub>,
    engine: Arc<ShardedEngine>,
    persist: Option<Arc<Persister>>,
    stats: Arc<ServerStats>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    maintenance_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pipeline: Option<IngestPipeline>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts all
    /// background threads. With `config.persist` set, recovery (snapshot
    /// load + log replay + engine restore) completes before the listener
    /// accepts its first connection.
    pub fn start(schema: Schema, config: ServerConfig, addr: &str) -> std::io::Result<Server> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let engine =
            Arc::new(ShardedEngine::new(&schema, &config).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?);
        let stats = Arc::new(ServerStats::default());

        let mut recovered_live: HashMap<SubId, u64> = HashMap::new();
        let persist = match &config.persist {
            Some(pconfig) => {
                let (persister, restored) =
                    Persister::open(pconfig.clone(), schema.clone(), stats.clone())?;
                engine.bulk_restore(&restored).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                // Recovered subscriptions have no owning connection yet;
                // seeding their fingerprints is what lets a reconnecting
                // client CLAIM them (or re-SUB the identical expression).
                recovered_live = restored
                    .iter()
                    .map(|sub| (sub.id(), sub_fingerprint(sub)))
                    .collect();
                Some(Arc::new(persister))
            }
            None => None,
        };

        let hub = Arc::new(Hub {
            schema,
            stats: stats.clone(),
            policy: config.slow_consumer,
            conns: Mutex::new(HashMap::new()),
            owners: RwLock::new(HashMap::new()),
            live: RwLock::new(recovered_live),
        });
        let pipeline = IngestPipeline::start(engine.clone(), stats.clone(), hub.clone(), &config);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let ingest_tx = pipeline.sender();
        let epoch = Instant::now();

        let accept_thread = {
            let hub = hub.clone();
            let engine = engine.clone();
            let persist = persist.clone();
            let stats = stats.clone();
            let shutdown = shutdown.clone();
            let conn_threads = conn_threads.clone();
            let conn_queue = config.conn_queue;
            let max_line_bytes = config.max_line_bytes;
            let ingest_depth = pipeline.depth_handle();
            std::thread::Builder::new()
                .name("apcm-accept".into())
                .spawn(move || {
                    let mut next_conn = 1u64;
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let conn_id = next_conn;
                                next_conn += 1;
                                ServerStats::add(&stats.conns_total, 1);
                                ServerStats::add(&stats.conns_active, 1);
                                let ctx = Arc::new(ConnCtx {
                                    hub: hub.clone(),
                                    engine: engine.clone(),
                                    persist: persist.clone(),
                                    ingest: ingest_tx.clone(),
                                    ingest_depth: ingest_depth.clone(),
                                    epoch,
                                    max_line_bytes,
                                });
                                spawn_connection(ctx, stream, conn_id, conn_queue, &conn_threads);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawning accept thread")
        };

        let maintenance_thread = {
            let hub = hub.clone();
            let engine = engine.clone();
            let persist = persist.clone();
            let stats = stats.clone();
            let shutdown = shutdown.clone();
            let interval = config.maintenance_interval;
            let idle_timeout = config.idle_timeout;
            std::thread::Builder::new()
                .name("apcm-maintenance".into())
                .spawn(move || {
                    // Sleep in small quanta so shutdown latency stays
                    // bounded regardless of the maintenance interval.
                    let quantum = Duration::from_millis(20).min(interval);
                    'outer: loop {
                        let mut waited = Duration::ZERO;
                        while waited < interval {
                            if shutdown.load(Ordering::SeqCst) {
                                break 'outer;
                            }
                            std::thread::sleep(quantum);
                            waited += quantum;
                        }
                        let report = engine.maintain();
                        stats.record_maintenance(&report);
                        if let Some(persister) = &persist {
                            persister.maintenance_tick();
                        }
                        if let Some(timeout) = idle_timeout {
                            hub.reap_idle(epoch, timeout);
                        }
                    }
                })
                .expect("spawning maintenance thread")
        };

        Ok(Server {
            hub,
            engine,
            persist,
            stats,
            addr: local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            maintenance_thread: Some(maintenance_thread),
            conn_threads,
            pipeline: Some(pipeline),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// What startup recovery found; `None` without persistence.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.persist.as_ref().map(|p| p.recovery_report())
    }

    /// Stops threads and closes sockets; shared by the graceful and
    /// abortive paths. Returns the residual ingest queue depth.
    fn teardown(&mut self) -> usize {
        self.shutdown.store(true, Ordering::SeqCst);

        if let Some(t) = self.maintenance_thread.take() {
            let _ = t.join(); // exits within one sleep quantum
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join(); // exits within one poll interval
        }

        // Closing the sockets unblocks every reader; readers drop their
        // ingest senders and outbound queue handles on the way out.
        {
            let conns = self.hub.conns.lock();
            for handle in conns.values() {
                let _ = handle.stream.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock());
        for t in handles {
            let _ = t.join();
        }
        // All publisher senders are gone; the matcher drains and exits.
        self.pipeline
            .take()
            .map(|p| {
                let d = p.depth();
                p.shutdown();
                d
            })
            .unwrap_or(0)
    }

    /// Graceful shutdown: stop accepting, close every connection, join all
    /// worker threads, drain the ingest pipeline, flush the durable log,
    /// and return the final rendered stats. Bounded: sockets are shut down
    /// before joining, so no thread is left blocked on I/O.
    pub fn shutdown(mut self) -> String {
        let depth = self.teardown();
        if let Some(persister) = &self.persist {
            persister.flush();
        }
        let mut out = self.stats.render(
            &self.engine.per_shard_len(),
            depth,
            self.engine.kernel_counters(),
        );
        out.push_str(&format!("engine {}\n", self.engine.engine_name()));
        out.push_str(&format!("shards {}\n", self.engine.shard_count()));
        out
    }

    /// Abortive stop for crash tests: threads are joined (no leaked
    /// resources in-process) but the durable log is **not** flushed and no
    /// final snapshot is taken — on-disk state is exactly what the write
    /// path had produced at the moment of the "crash".
    pub fn abort(mut self) {
        let _ = self.teardown();
    }
}

/// Spawns the reader + writer thread pair for one accepted connection.
fn spawn_connection(
    ctx: Arc<ConnCtx>,
    stream: TcpStream,
    conn_id: u64,
    conn_queue: usize,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let (out_tx, out_rx) = bounded::<String>(conn_queue);
    let activity = Arc::new(AtomicU64::new(ctx.epoch.elapsed().as_millis() as u64));

    let writer = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        std::thread::Builder::new()
            .name(format!("apcm-conn-{conn_id}-w"))
            .spawn(move || write_loop(stream, out_rx))
            .expect("spawning connection writer")
    };

    let reader = {
        let registry_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        ctx.hub.conns.lock().insert(
            conn_id,
            ConnHandle {
                out: out_tx.clone(),
                stream: registry_stream,
                activity: activity.clone(),
            },
        );
        std::thread::Builder::new()
            .name(format!("apcm-conn-{conn_id}-r"))
            .spawn(move || {
                read_loop(&ctx, stream, conn_id, out_tx, &activity);
                // Cleanup: deregister and release the writer.
                ctx.hub.conns.lock().remove(&conn_id);
                ServerStats::sub(&ctx.hub.stats.conns_active, 1);
            })
            .expect("spawning connection reader")
    };

    let mut threads = conn_threads.lock();
    threads.push(writer);
    threads.push(reader);
}

fn write_loop(stream: TcpStream, out_rx: Receiver<String>) {
    let mut w = BufWriter::new(stream);
    while let Ok(line) = out_rx.recv() {
        if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            return;
        }
        // Batch flushes: only force the buffer out when the queue is idle.
        if out_rx.is_empty() && w.flush().is_err() {
            return;
        }
    }
    let _ = w.flush();
}

/// Parses and executes requests until EOF, error, or QUIT.
fn read_loop(
    ctx: &ConnCtx,
    stream: TcpStream,
    conn_id: u64,
    out: Sender<String>,
    activity: &AtomicU64,
) {
    let stats = &ctx.hub.stats;
    let max_line = ctx.max_line_bytes;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut next_seq = 0u64;
    // Control replies go through the same queue as async results; a
    // blocking send here only ever waits on this connection's own writer.
    let reply = |text: String| {
        let _ = out.send(text);
        ServerStats::add(&stats.replies_sent, 1);
    };
    loop {
        match read_capped_line(&mut reader, &mut line, max_line) {
            Ok(LineOutcome::Line) => {}
            Ok(LineOutcome::TooLong) => {
                ServerStats::add(&stats.oversized_lines, 1);
                ServerStats::add(&stats.protocol_errors, 1);
                reply(format!("-ERR line too long (max {max_line} bytes)"));
                continue;
            }
            Ok(LineOutcome::Eof) | Err(_) => return,
        }
        activity.store(ctx.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        let request = match protocol::parse_request(&ctx.hub.schema, &line) {
            Ok(Some(req)) => req,
            Ok(None) => continue,
            Err(msg) => {
                ServerStats::add(&stats.protocol_errors, 1);
                reply(format!("-ERR {msg}"));
                continue;
            }
        };
        match request {
            Request::Sub { id, sub } => {
                let outcome = match &ctx.persist {
                    Some(p) => p.apply_sub(&ctx.engine, &sub),
                    None => ctx.engine.subscribe(&sub).map_err(ChurnError::Engine),
                };
                match outcome {
                    Ok(true) => {
                        ctx.hub.owners.write().insert(id, conn_id);
                        ctx.hub.live.write().insert(id, sub_fingerprint(&sub));
                        ServerStats::add(&stats.subs_added, 1);
                        reply(format!("+OK {}", id.0));
                    }
                    Ok(false) => {
                        // Duplicate id. A byte-identical expression is a
                        // reconnect reclaiming its subscription: transfer
                        // ownership, no engine or durable churn. Anything
                        // else is the structured duplicate error.
                        let identical =
                            ctx.hub.live.read().get(&id).copied() == Some(sub_fingerprint(&sub));
                        if identical {
                            ctx.hub.owners.write().insert(id, conn_id);
                            ServerStats::add(&stats.subs_reclaimed, 1);
                            reply(format!("+OK claimed {}", id.0));
                        } else {
                            ServerStats::add(&stats.protocol_errors, 1);
                            reply(protocol::render_duplicate_error(id));
                        }
                    }
                    Err(e @ ChurnError::Engine(_)) => {
                        ServerStats::add(&stats.protocol_errors, 1);
                        reply(format!("-ERR {e}"));
                    }
                    Err(e @ ChurnError::Persist(_)) => {
                        // Counted as persist_errors by the persister, not
                        // as a protocol error — the request was valid.
                        reply(format!("-ERR {e}"));
                    }
                }
            }
            Request::Unsub { id } => {
                let outcome = match &ctx.persist {
                    Some(p) => p.apply_unsub(&ctx.engine, id),
                    None => Ok(ctx.engine.unsubscribe(id)),
                };
                match outcome {
                    Ok(true) => {
                        ctx.hub.owners.write().remove(&id);
                        ctx.hub.live.write().remove(&id);
                        ServerStats::add(&stats.subs_removed, 1);
                        reply(format!("+OK {}", id.0));
                    }
                    Ok(false) => {
                        ServerStats::add(&stats.protocol_errors, 1);
                        reply(format!("-ERR unknown subscription {}", id.0));
                    }
                    Err(e) => reply(format!("-ERR {e}")),
                }
            }
            Request::Claim { id } => {
                // Ownership transfer for a live id: the reclaim path after
                // a broker restart (recovered subscriptions have no owning
                // connection until someone claims them).
                if ctx.hub.live.read().contains_key(&id) {
                    ctx.hub.owners.write().insert(id, conn_id);
                    ServerStats::add(&stats.subs_reclaimed, 1);
                    reply(format!("+OK claimed {}", id.0));
                } else {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply(format!("-ERR unknown subscription {}", id.0));
                }
            }
            Request::Pub { event } => {
                let seq = next_seq;
                next_seq += 1;
                ServerStats::add(&stats.events_in, 1);
                if ctx
                    .ingest
                    .send(IngestItem {
                        conn: conn_id,
                        seq,
                        event,
                    })
                    .is_err()
                {
                    reply("-ERR server shutting down".into());
                    return;
                }
                reply(format!("+OK {seq}"));
            }
            Request::Batch { count } => {
                let first = next_seq;
                let mut accepted = 0usize;
                for i in 0..count {
                    match read_capped_line(&mut reader, &mut line, max_line) {
                        Ok(LineOutcome::Line) => {}
                        Ok(LineOutcome::TooLong) => {
                            ServerStats::add(&stats.oversized_lines, 1);
                            ServerStats::add(&stats.protocol_errors, 1);
                            reply(format!("-ERR batch line {i}: line too long"));
                            continue;
                        }
                        Ok(LineOutcome::Eof) | Err(_) => return,
                    }
                    activity.store(ctx.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
                    match apcm_bexpr::parser::parse_event(&ctx.hub.schema, line.trim()) {
                        Ok(event) => {
                            let seq = next_seq;
                            next_seq += 1;
                            accepted += 1;
                            ServerStats::add(&stats.events_in, 1);
                            if ctx
                                .ingest
                                .send(IngestItem {
                                    conn: conn_id,
                                    seq,
                                    event,
                                })
                                .is_err()
                            {
                                reply("-ERR server shutting down".into());
                                return;
                            }
                        }
                        Err(e) => {
                            ServerStats::add(&stats.protocol_errors, 1);
                            reply(format!("-ERR batch line {i}: bad event: {e}"));
                        }
                    }
                }
                reply(format!("+OK batch {first} {accepted}"));
            }
            Request::Stats => {
                let body = stats.render(
                    &ctx.engine.per_shard_len(),
                    ctx.ingest_depth.len(),
                    ctx.engine.kernel_counters(),
                );
                // One queued string so async RESULT/EVENT lines cannot
                // interleave inside the multi-line response.
                reply(format!("+OK stats\n{body}."));
            }
            Request::Snapshot => match &ctx.persist {
                Some(p) => match p.snapshot() {
                    Ok(outcome) => reply(format!(
                        "+OK snapshot subs {} seq {} bytes {}",
                        outcome.subs, outcome.seq, outcome.bytes
                    )),
                    Err(e) => reply(format!("-ERR snapshot failed: {e}")),
                },
                None => {
                    ServerStats::add(&stats.protocol_errors, 1);
                    reply("-ERR persistence disabled".into());
                }
            },
            Request::Topology => {
                // A standalone server is its own (only) partition; the
                // multi-line backend report is the cluster router's.
                reply("+OK topology standalone".into());
            }
            Request::Ping => reply("+PONG".into()),
            Request::Quit => {
                reply("+OK bye".into());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn capped(input: &[u8], max: usize) -> Vec<(String, bool)> {
        let mut reader = BufReader::with_capacity(4, Cursor::new(input.to_vec()));
        let mut line = String::new();
        let mut out = Vec::new();
        loop {
            match read_capped_line(&mut reader, &mut line, max).unwrap() {
                LineOutcome::Line => out.push((line.clone(), false)),
                LineOutcome::TooLong => out.push((String::new(), true)),
                LineOutcome::Eof => return out,
            }
        }
    }

    #[test]
    fn capped_reader_splits_lines() {
        let out = capped(b"alpha\nbeta\n", 64);
        assert_eq!(out, vec![("alpha".into(), false), ("beta".into(), false)]);
    }

    #[test]
    fn capped_reader_returns_final_unterminated_line() {
        let out = capped(b"alpha\nbeta", 64);
        assert_eq!(out, vec![("alpha".into(), false), ("beta".into(), false)]);
    }

    #[test]
    fn capped_reader_discards_oversized_line_and_recovers() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let out = capped(&input, 10);
        assert_eq!(out, vec![(String::new(), true), ("ok".into(), false)]);
    }

    #[test]
    fn capped_reader_handles_oversized_tail_without_newline() {
        let input = vec![b'y'; 50];
        let out = capped(&input, 10);
        assert_eq!(out, vec![(String::new(), true)]);
    }

    #[test]
    fn capped_reader_accepts_line_exactly_at_cap() {
        let mut input = vec![b'z'; 10];
        input.push(b'\n');
        let out = capped(&input, 10);
        assert_eq!(out, vec![("z".repeat(10), false)]);
    }
}
