//! TCP broker: connection serving, result delivery, background
//! maintenance, and graceful shutdown — over either of two I/O models
//! ([`crate::config::IoModel`], no async runtime in either).
//!
//! **Event loop** (the default): the listener and every client
//! connection are served by the `apcm-netio` readiness loop — a fixed
//! worker pool multiplexing epoll-driven reads, byte-capped line
//! framing, bounded per-connection outbound queues flushed on
//! `EPOLLOUT`, and a timer wheel for idle reaping, with the maintenance
//! sweep riding the loop's tick hook. Thread count is O(workers), not
//! O(connections), so tens of thousands of mostly-idle subscribers fit
//! in one pool.
//!
//! **Threads**: the original model, retained as a baseline and
//! fallback —
//!
//! * one **accept** thread polling a non-blocking listener;
//! * per connection, a **reader** thread and a **writer** thread
//!   draining the connection's bounded outbound queue — the
//!   slow-consumer boundary;
//! * one **maintenance** thread sweeping every shard's `maintain()`, the
//!   persister's [`Persister::maintenance_tick`], and idle connections.
//!
//! Both models funnel every inbound line through the same dispatcher
//! ([`crate::request::on_conn_line`]), so protocol semantics — reply
//! text, ack-before-submit ordering, counters, slow-consumer policy —
//! are byte-identical. The **matcher** thread inside [`IngestPipeline`]
//! and the outbound replication/reshard pullers ([`ReplicaRunner`],
//! [`ReshardRunner`]) are dedicated threads in both models.
//!
//! Subscriptions are durable within a run: a closed connection keeps its
//! subscriptions live (notifications for them are silently discarded until
//! another connection re-subscribes or unsubscribes the ids). With
//! `ServerConfig::persist` set they are durable across runs too — churn is
//! acknowledged only after it reaches the append log, and startup restores
//! the snapshot + log into the engine before the listener opens.
//!
//! Inbound hardening: every protocol line is read through a byte-capped
//! reader (`max_line_bytes`) — an oversized line is discarded up to its
//! newline and answered with a structured `-ERR`, never buffered
//! unboundedly. Connections silent for longer than `idle_timeout` are
//! reaped by the maintenance sweep.

use apcm_bexpr::{Schema, SubId, Subscription};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::client::{connect_stream, ConnectOptions};
use crate::config::{IoModel, ServerConfig, SlowConsumerPolicy};
use crate::event_broker::BrokerService;
use crate::ingest::{IngestItem, IngestPipeline, ResultSink};
use crate::persist::log::{parse_frame, ReplayOp};
use crate::persist::{Persister, RecoveryReport};
use crate::protocol::{self, ReplicateStart};
use crate::replication::{FollowerConn, Role, RoleState, ThreadedFollower};
use crate::request::{on_conn_line, ConnCtx, ConnState, Flow, LineInput};
use crate::ring::RingScope;
use crate::shard::ShardedEngine;
use crate::stats::ServerStats;

/// Outbound handle for one threaded-mode connection.
pub(crate) struct ConnHandle {
    out: Sender<String>,
    stream: TcpStream,
    /// Milliseconds since the server epoch of the last inbound line; the
    /// idle sweep compares this against `idle_timeout`.
    activity: Arc<AtomicU64>,
}

/// Compact fingerprint of a subscription's expression, used to decide
/// whether a duplicate `SUB` is a reconnect offering the byte-identical
/// expression (ownership takeover) or a genuinely conflicting id. The
/// parser normalizes predicate order, so two byte-identical protocol lines
/// always fingerprint equal.
pub(crate) fn sub_fingerprint(sub: &Subscription) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    sub.hash(&mut h);
    h.finish()
}

/// Decodes one `BLOCK <partition> <rows> <raw_len> <crc8hex> <base64>`
/// line of a colstore replication bootstrap into subscriptions. Every
/// failure mode (bad framing, base64 damage, CRC mismatch, columnar
/// decode error, unparseable expression) is just an error string — the
/// caller drops the connection and refetches the whole bootstrap.
fn decode_bootstrap_block(line: &str, schema: &Schema) -> Result<Vec<Subscription>, String> {
    let rest = line.strip_prefix("BLOCK ").ok_or("not a BLOCK line")?;
    let mut parts = rest.split_whitespace();
    let partition: u32 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("missing partition")?;
    let rows: u32 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("missing row count")?;
    let raw_len: u32 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("missing raw_len")?;
    let crc: u32 = parts
        .next()
        .and_then(|t| u32::from_str_radix(t, 16).ok())
        .ok_or("missing crc")?;
    let data = apcm_colstore::b64::decode(parts.next().ok_or("missing payload")?)
        .map_err(|e| e.to_string())?;
    if parts.next().is_some() {
        return Err("trailing tokens on BLOCK line".into());
    }
    let block = apcm_colstore::CompressedBlock {
        partition,
        rows,
        min_id: 0,
        max_id: 0,
        raw_len,
        crc,
        data,
    };
    let decoded = block.decode().map_err(|e| e.to_string())?;
    decoded
        .iter()
        .map(|row| crate::persist::snapshot::row_to_sub(row, schema).map_err(|e| e.to_string()))
        .collect()
}

/// How outbound lines reach their connection: the threaded broker's
/// per-connection queue/registry, or the event loop's handle. Settled at
/// startup from [`IoModel`]; the loop variant is a `OnceLock` because the
/// hub must exist (the ingest pipeline sinks into it) before the loop —
/// which needs the hub via its service — can start.
pub(crate) enum Delivery {
    Threads(Mutex<HashMap<u64, ConnHandle>>),
    Loop(OnceLock<Arc<apcm_netio::LoopHandle>>),
}

/// State shared by every thread: the registry of live connections and
/// subscription ownership, plus delivery policy. Doubles as the ingest
/// pipeline's [`ResultSink`].
pub(crate) struct Hub {
    pub(crate) schema: Schema,
    pub(crate) stats: Arc<ServerStats>,
    policy: SlowConsumerPolicy,
    pub(crate) delivery: Delivery,
    /// Which connection owns (receives `EVENT` notifications for) each id.
    pub(crate) owners: RwLock<HashMap<SubId, u64>>,
    /// Fingerprint of every live subscription's expression (seeded from
    /// recovery, maintained by SUB/UNSUB). Backs `CLAIM` liveness checks
    /// and identical-expression takeover without cloning expressions.
    pub(crate) live: RwLock<HashMap<SubId, u64>>,
    /// Ring ownership filter installed by `RESHARD PRUNE`: churn for ids
    /// the scope does not own is refused with `-ERR not owner <id>`.
    /// `None` (the default, and the state after a restart) accepts
    /// everything — the filter is a migration-era safety net against
    /// stale-routed churn, re-installed idempotently by the router's
    /// migration controller, not the source of routing truth.
    pub(crate) ownership: RwLock<Option<RingScope>>,
}

impl Hub {
    /// Queues `line` on a connection's outbound queue, applying the
    /// slow-consumer policy on overflow. Unknown connections (already
    /// closed) discard silently.
    pub(crate) fn push_line(&self, conn_id: u64, line: String) {
        match &self.delivery {
            Delivery::Threads(registry) => {
                let mut conns = registry.lock();
                let Some(handle) = conns.get(&conn_id) else {
                    return;
                };
                match handle.out.try_send(line) {
                    Ok(()) => {
                        ServerStats::add(&self.stats.replies_sent, 1);
                    }
                    Err(TrySendError::Full(_)) => match self.policy {
                        SlowConsumerPolicy::Drop => {
                            ServerStats::add(&self.stats.replies_dropped, 1);
                        }
                        SlowConsumerPolicy::Disconnect => {
                            ServerStats::add(&self.stats.slow_disconnects, 1);
                            let handle = conns.remove(&conn_id).expect("checked above");
                            // Reader unblocks on the socket shutdown and
                            // cleans up; the writer exits once the last
                            // queue sender drops.
                            let _ = handle.stream.shutdown(Shutdown::Both);
                        }
                    },
                    Err(TrySendError::Disconnected(_)) => {
                        conns.remove(&conn_id);
                    }
                }
            }
            Delivery::Loop(cell) => {
                let Some(handle) = cell.get() else {
                    return;
                };
                match handle.try_send(conn_id, line) {
                    apcm_netio::SendOutcome::Sent => {
                        ServerStats::add(&self.stats.replies_sent, 1);
                    }
                    apcm_netio::SendOutcome::Full => match self.policy {
                        SlowConsumerPolicy::Drop => {
                            ServerStats::add(&self.stats.replies_dropped, 1);
                        }
                        SlowConsumerPolicy::Disconnect => {
                            ServerStats::add(&self.stats.slow_disconnects, 1);
                            handle.kick(conn_id);
                        }
                    },
                    apcm_netio::SendOutcome::Gone => {}
                }
            }
        }
    }

    /// The threaded connection registry; `None` in event-loop mode.
    fn thread_conns(&self) -> Option<&Mutex<HashMap<u64, ConnHandle>>> {
        match &self.delivery {
            Delivery::Threads(registry) => Some(registry),
            Delivery::Loop(_) => None,
        }
    }

    /// Shuts down connections idle longer than `timeout` (threaded mode;
    /// the event loop's timer wheel reaps its own). The socket shutdown
    /// unblocks the reader, which then deregisters itself.
    fn reap_idle(&self, epoch: Instant, timeout: Duration) {
        let Some(registry) = self.thread_conns() else {
            return;
        };
        let now_ms = epoch.elapsed().as_millis() as u64;
        let limit_ms = timeout.as_millis() as u64;
        let mut conns = registry.lock();
        conns.retain(|_, handle| {
            let idle = now_ms.saturating_sub(handle.activity.load(Ordering::Relaxed));
            if idle > limit_ms {
                ServerStats::add(&self.stats.idle_reaped, 1);
                let _ = handle.stream.shutdown(Shutdown::Both);
                false
            } else {
                true
            }
        });
    }

    /// Event-loop gauges for `STATS` rendering, in the order
    /// [`ServerStats::render`] expects: `(connections_open,
    /// epoll_wakeups, outbound_queued_lines, conns_rejected)`. `None` in
    /// threaded mode (the keys are elided entirely).
    pub(crate) fn netio_gauges(&self) -> Option<(u64, u64, u64, u64)> {
        match &self.delivery {
            Delivery::Threads(_) => None,
            Delivery::Loop(cell) => cell.get().map(|handle| {
                let m = handle.metrics();
                (
                    m.connections_open.load(Ordering::Relaxed),
                    m.epoll_wakeups.load(Ordering::Relaxed),
                    m.outbound_queued_lines.load(Ordering::Relaxed),
                    m.conns_rejected.load(Ordering::Relaxed),
                )
            }),
        }
    }
}

impl ResultSink for Hub {
    fn on_window(&self, items: &[IngestItem], rows: &[Vec<SubId>]) {
        for (item, row) in items.iter().zip(rows) {
            self.push_line(item.conn, protocol::render_result(item.seq, row));
            for &id in row {
                let owner = self.owners.read().get(&id).copied();
                if let Some(owner) = owner {
                    self.push_line(
                        owner,
                        protocol::render_event_notification(id, &item.event, &self.schema),
                    );
                }
            }
        }
    }
}

/// Outcome of one capped line read.
pub enum LineOutcome {
    /// A complete line (newline stripped) is in the caller's buffer.
    Line,
    /// The line exceeded the cap; it was discarded through its newline.
    TooLong,
    Eof,
}

/// Reads one `\n`-terminated line into `line`, refusing to buffer more
/// than `max` bytes: once a line overflows, the remainder is consumed and
/// discarded until its newline and `TooLong` is returned. Works on
/// `fill_buf`/`consume` so no input byte is ever lost or double-read. A
/// final unterminated line at EOF is returned as a normal line.
///
/// Public so the cluster router (`apcm-cluster`) applies the same inbound
/// hardening to its client connections.
pub fn read_capped_line(
    reader: &mut impl BufRead,
    line: &mut String,
    max: usize,
) -> std::io::Result<LineOutcome> {
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if overflowed {
                LineOutcome::TooLong
            } else if buf.is_empty() {
                LineOutcome::Eof
            } else {
                *line = String::from_utf8_lossy(&buf).into_owned();
                LineOutcome::Line
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflowed && buf.len() + pos <= max {
                    buf.extend_from_slice(&available[..pos]);
                } else {
                    overflowed = true;
                }
                reader.consume(pos + 1);
                return Ok(if overflowed {
                    LineOutcome::TooLong
                } else {
                    *line = String::from_utf8_lossy(&buf).into_owned();
                    LineOutcome::Line
                });
            }
            None => {
                let n = available.len();
                if !overflowed && buf.len() + n <= max {
                    buf.extend_from_slice(available);
                } else {
                    overflowed = true;
                    buf.clear();
                }
                reader.consume(n);
            }
        }
    }
}

/// A running broker. Dropping without calling [`Server::shutdown`] aborts
/// connections ungracefully; call `shutdown` for an orderly stop.
pub struct Server {
    hub: Arc<Hub>,
    engine: Arc<ShardedEngine>,
    persist: Option<Arc<Persister>>,
    stats: Arc<ServerStats>,
    role: Arc<RoleState>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Threaded mode only; the event loop owns its own listener.
    accept_thread: Option<JoinHandle<()>>,
    /// Threaded mode only; the event loop's tick hook does this work.
    maintenance_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pipeline: Option<IngestPipeline>,
    event_loop: Option<apcm_netio::EventLoop>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts all
    /// background threads. With `config.persist` set, recovery (snapshot
    /// load + log replay + engine restore) completes before the listener
    /// accepts its first connection.
    pub fn start(schema: Schema, config: ServerConfig, addr: &str) -> std::io::Result<Server> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let engine =
            Arc::new(ShardedEngine::new(&schema, &config).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?);
        let stats = Arc::new(ServerStats::default());

        let mut recovered_live: HashMap<SubId, u64> = HashMap::new();
        let persist = match &config.persist {
            Some(pconfig) => {
                let (persister, restored) = Persister::open(
                    pconfig.clone(),
                    schema.clone(),
                    stats.clone(),
                    config.shards,
                )?;
                engine.bulk_restore(&restored).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                // Recovered subscriptions have no owning connection yet;
                // seeding their fingerprints is what lets a reconnecting
                // client CLAIM them (or re-SUB the identical expression).
                recovered_live = restored
                    .iter()
                    .map(|sub| (sub.id(), sub_fingerprint(sub)))
                    .collect();
                Some(Arc::new(persister))
            }
            None => None,
        };

        let hub = Arc::new(Hub {
            schema,
            stats: stats.clone(),
            policy: config.slow_consumer,
            delivery: match config.io_model {
                IoModel::Threads => Delivery::Threads(Mutex::new(HashMap::new())),
                IoModel::EventLoop => Delivery::Loop(OnceLock::new()),
            },
            owners: RwLock::new(HashMap::new()),
            live: RwLock::new(recovered_live),
            ownership: RwLock::new(None),
        });
        let pipeline = IngestPipeline::start(engine.clone(), stats.clone(), hub.clone(), &config);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let ingest_tx = pipeline.sender();
        let epoch = Instant::now();

        let role = Arc::new(RoleState::new(match &config.replica_of {
            Some(primary) => Role::Replica {
                primary: primary.clone(),
            },
            None => Role::Primary,
        }));
        stats
            .role_replica
            .store(u64::from(config.replica_of.is_some()), Ordering::Relaxed);
        let runner = persist.as_ref().map(|persist| {
            Arc::new(ReplicaRunner {
                hub: hub.clone(),
                engine: engine.clone(),
                persist: persist.clone(),
                role: role.clone(),
                shutdown: shutdown.clone(),
                conn_threads: conn_threads.clone(),
                ack_every: config.repl_ack_every,
            })
        });
        let reshard = persist.as_ref().map(|persist| {
            Arc::new(ReshardRunner {
                hub: hub.clone(),
                engine: engine.clone(),
                persist: persist.clone(),
                shutdown: shutdown.clone(),
                conn_threads: conn_threads.clone(),
                ack_every: config.repl_ack_every,
                generation: AtomicU64::new(0),
                target: Mutex::new(None),
                cursor: AtomicU64::new(0),
                connected: AtomicU64::new(0),
            })
        });
        if config.replica_of.is_some() {
            // Replica mode requires persistence (validated above), so the
            // runner exists; pull from the configured primary right away.
            runner
                .as_ref()
                .expect("replica mode requires persistence")
                .clone()
                .spawn(role.generation());
        }

        let (accept_thread, maintenance_thread, event_loop) = match config.io_model {
            IoModel::EventLoop => {
                // Blocking-request escape hatch: runs the job on a
                // short-lived thread (joined with the pullers at
                // teardown) and queues its reply on the connection's
                // uncapped control path, exactly like an inline reply.
                let offload = {
                    let hub = hub.clone();
                    let conn_threads = conn_threads.clone();
                    Arc::new(move |conn_id: u64, job: crate::request::BlockingJob| {
                        let hub = hub.clone();
                        let handle = std::thread::Builder::new()
                            .name("apcm-blocking".into())
                            .spawn(move || {
                                let text = job();
                                if let Delivery::Loop(cell) = &hub.delivery {
                                    if let Some(loop_handle) = cell.get() {
                                        let _ = loop_handle.send(conn_id, text);
                                        ServerStats::add(&hub.stats.replies_sent, 1);
                                    }
                                }
                            })
                            .expect("spawning blocking-request thread");
                        conn_threads.lock().push(handle);
                    })
                };
                let ctx = ConnCtx {
                    hub: hub.clone(),
                    engine: engine.clone(),
                    persist: persist.clone(),
                    ingest: ingest_tx.clone(),
                    ingest_depth: pipeline.depth_handle(),
                    epoch,
                    max_line_bytes: config.max_line_bytes,
                    role: role.clone(),
                    runner: runner.clone(),
                    reshard: reshard.clone(),
                    offload: Some(offload),
                };
                let options = apcm_netio::LoopOptions {
                    workers: config
                        .loop_workers
                        .unwrap_or_else(apcm_netio::default_workers),
                    conn_queue: config.conn_queue,
                    max_line_bytes: config.max_line_bytes,
                    idle_timeout: config.idle_timeout,
                    max_conns: config.max_conns,
                    reject_line: Some("-ERR server busy".into()),
                    tick_interval: Some(config.maintenance_interval),
                    read_chunk: 64 * 1024,
                };
                let el = apcm_netio::EventLoop::start(
                    listener,
                    Arc::new(BrokerService::new(ctx)),
                    options,
                )?;
                if let Delivery::Loop(cell) = &hub.delivery {
                    let _ = cell.set(el.handle());
                }
                (None, None, Some(el))
            }
            IoModel::Threads => {
                let accept_thread = {
                    let hub = hub.clone();
                    let engine = engine.clone();
                    let persist = persist.clone();
                    let stats = stats.clone();
                    let shutdown = shutdown.clone();
                    let conn_threads = conn_threads.clone();
                    let role = role.clone();
                    let runner = runner.clone();
                    let reshard = reshard.clone();
                    let conn_queue = config.conn_queue;
                    let max_line_bytes = config.max_line_bytes;
                    let max_conns = config.max_conns;
                    let ingest_depth = pipeline.depth_handle();
                    std::thread::Builder::new()
                        .name("apcm-accept".into())
                        .spawn(move || {
                            let mut next_conn = 1u64;
                            while !shutdown.load(Ordering::SeqCst) {
                                match listener.accept() {
                                    Ok((stream, _peer)) => {
                                        let busy = max_conns.is_some_and(|max| {
                                            ServerStats::get(&stats.conns_active) as usize >= max
                                        });
                                        if busy {
                                            // Answered inline: the refused
                                            // connection never gets threads
                                            // or a registry slot.
                                            ServerStats::add(&stats.conns_rejected, 1);
                                            let _ = (&stream).write_all(b"-ERR server busy\n");
                                            let _ = stream.shutdown(Shutdown::Both);
                                            continue;
                                        }
                                        let conn_id = next_conn;
                                        next_conn += 1;
                                        ServerStats::add(&stats.conns_total, 1);
                                        ServerStats::add(&stats.conns_active, 1);
                                        let ctx = Arc::new(ConnCtx {
                                            hub: hub.clone(),
                                            engine: engine.clone(),
                                            persist: persist.clone(),
                                            ingest: ingest_tx.clone(),
                                            ingest_depth: ingest_depth.clone(),
                                            epoch,
                                            max_line_bytes,
                                            role: role.clone(),
                                            runner: runner.clone(),
                                            reshard: reshard.clone(),
                                            offload: None,
                                        });
                                        spawn_connection(
                                            ctx,
                                            stream,
                                            conn_id,
                                            conn_queue,
                                            &conn_threads,
                                        );
                                    }
                                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                        std::thread::sleep(Duration::from_millis(5));
                                    }
                                    Err(_) => break,
                                }
                            }
                        })
                        .expect("spawning accept thread")
                };

                let maintenance_thread = {
                    let hub = hub.clone();
                    let engine = engine.clone();
                    let persist = persist.clone();
                    let stats = stats.clone();
                    let shutdown = shutdown.clone();
                    let interval = config.maintenance_interval;
                    let idle_timeout = config.idle_timeout;
                    std::thread::Builder::new()
                        .name("apcm-maintenance".into())
                        .spawn(move || {
                            // Sleep in small quanta so shutdown latency stays
                            // bounded regardless of the maintenance interval.
                            let quantum = Duration::from_millis(20).min(interval);
                            'outer: loop {
                                let mut waited = Duration::ZERO;
                                while waited < interval {
                                    if shutdown.load(Ordering::SeqCst) {
                                        break 'outer;
                                    }
                                    std::thread::sleep(quantum);
                                    waited += quantum;
                                }
                                let report = engine.maintain();
                                stats.record_maintenance(&report);
                                if let Some(persister) = &persist {
                                    persister.maintenance_tick();
                                }
                                if let Some(timeout) = idle_timeout {
                                    hub.reap_idle(epoch, timeout);
                                }
                            }
                        })
                        .expect("spawning maintenance thread")
                };
                (Some(accept_thread), Some(maintenance_thread), None)
            }
        };

        Ok(Server {
            hub,
            engine,
            persist,
            stats,
            role,
            addr: local_addr,
            shutdown,
            accept_thread,
            maintenance_thread,
            conn_threads,
            pipeline: Some(pipeline),
            event_loop,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// What startup recovery found; `None` without persistence.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.persist.as_ref().map(|p| p.recovery_report())
    }

    /// The server's current role (dynamic: `PROMOTE`/`DEMOTE` flip it).
    pub fn role(&self) -> Role {
        self.role.role()
    }

    /// Highest durable churn sequence; 0 without persistence.
    pub fn current_seq(&self) -> u64 {
        self.persist.as_ref().map(|p| p.current_seq()).unwrap_or(0)
    }

    /// Forces a full snapshot + log rotation (the `SNAPSHOT` verb's
    /// in-process equivalent). Errors without persistence.
    pub fn snapshot(&self) -> std::io::Result<crate::persist::SnapshotOutcome> {
        match &self.persist {
            Some(p) => p.snapshot(),
            None => Err(std::io::Error::other("persistence disabled")),
        }
    }

    /// Background-style snapshot pass: writes a delta when the colstore
    /// chain permits one, a full otherwise. Errors without persistence.
    pub fn snapshot_incremental(&self) -> std::io::Result<crate::persist::SnapshotOutcome> {
        match &self.persist {
            Some(p) => p.snapshot_incremental(),
            None => Err(std::io::Error::other("persistence disabled")),
        }
    }

    /// Stops threads and closes sockets; shared by the graceful and
    /// abortive paths. Returns the residual ingest queue depth.
    fn teardown(&mut self) -> usize {
        self.shutdown.store(true, Ordering::SeqCst);

        if let Some(t) = self.maintenance_thread.take() {
            let _ = t.join(); // exits within one sleep quantum
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join(); // exits within one poll interval
        }

        // Event-loop mode: closes every loop-served connection, joins the
        // worker pool, and drops the service — releasing its ingest
        // sender so the matcher below can drain to completion.
        if let Some(el) = self.event_loop.take() {
            el.shutdown();
        }

        // Threaded mode: closing the sockets unblocks every reader;
        // readers drop their ingest senders and outbound queue handles on
        // the way out.
        if let Some(registry) = self.hub.thread_conns() {
            let conns = registry.lock();
            for handle in conns.values() {
                let _ = handle.stream.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock());
        for t in handles {
            let _ = t.join();
        }
        // All publisher senders are gone; the matcher drains and exits.
        self.pipeline
            .take()
            .map(|p| {
                let d = p.depth();
                p.shutdown();
                d
            })
            .unwrap_or(0)
    }

    /// Graceful shutdown: stop accepting, close every connection, join all
    /// worker threads, drain the ingest pipeline, flush the durable log,
    /// and return the final rendered stats. Bounded: sockets are shut down
    /// before joining, so no thread is left blocked on I/O.
    pub fn shutdown(mut self) -> String {
        let depth = self.teardown();
        if let Some(persister) = &self.persist {
            persister.flush();
        }
        let mut out = self.stats.render(
            &self.engine.per_shard_len(),
            depth,
            self.engine.kernel_counters(),
            (
                self.engine.summary_epoch(),
                self.engine.summary_bits_set() as u64,
                self.engine.summary_rebuilds(),
            ),
            self.hub.netio_gauges(),
        );
        out.push_str(&format!("engine {}\n", self.engine.engine_name()));
        out.push_str(&format!("shards {}\n", self.engine.shard_count()));
        out
    }

    /// Abortive stop for crash tests: threads are joined (no leaked
    /// resources in-process) but the durable log is **not** flushed and no
    /// final snapshot is taken — on-disk state is exactly what the write
    /// path had produced at the moment of the "crash".
    pub fn abort(mut self) {
        let _ = self.teardown();
    }
}

/// Drives replica mode: a puller thread that dials the primary, performs
/// the `REPLICATE <from_seq>` handshake, and applies the streamed churn
/// frames to the local engine + persistence. One runner exists per server
/// (when persistence is on); each `DEMOTE` spawns a fresh puller tagged
/// with the role generation, and stale pullers notice the generation
/// moved on and exit — `PROMOTE` therefore stops replication without any
/// extra signalling.
pub(crate) struct ReplicaRunner {
    hub: Arc<Hub>,
    engine: Arc<ShardedEngine>,
    persist: Arc<Persister>,
    role: Arc<RoleState>,
    shutdown: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    ack_every: u64,
}

impl ReplicaRunner {
    /// Starts a puller for role `generation`; the handle joins with the
    /// connection threads at shutdown.
    pub(crate) fn spawn(self: Arc<Self>, generation: u64) {
        let runner = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("apcm-replica-g{generation}"))
            .spawn(move || runner.run(generation))
            .expect("spawning replica puller");
        self.conn_threads.lock().push(handle);
    }

    /// The primary to follow, or `None` once this puller is obsolete
    /// (server shutting down, role flipped, or a newer generation took
    /// over).
    fn primary(&self, generation: u64) -> Option<String> {
        if self.shutdown.load(Ordering::SeqCst) || self.role.generation() != generation {
            return None;
        }
        self.role.primary_addr()
    }

    fn run(&self, generation: u64) {
        let stats = &self.hub.stats;
        let options = ConnectOptions {
            connect_timeout: Some(Duration::from_millis(500)),
            // Short read quanta keep shutdown/demotion latency bounded and
            // double as the keepalive-REPLACK cadence while idle.
            read_timeout: Some(Duration::from_millis(250)),
            attempts: 1,
            ..ConnectOptions::default()
        };
        let mut connected_before = false;
        let mut failures = 0u32;
        // Set when a truncate handshake's CRC probe failed: the next dial
        // sends a trailing `reset` to force the wholesale bootstrap.
        let mut force_reset = false;
        loop {
            let Some(primary) = self.primary(generation) else {
                stats.repl_connected.store(0, Ordering::Relaxed);
                return;
            };
            match connect_stream(&primary, &options) {
                Ok(stream) => {
                    if connected_before {
                        ServerStats::add(&stats.repl_reconnects, 1);
                    }
                    connected_before = true;
                    failures = 0;
                    self.follow(generation, stream, &mut force_reset);
                    stats.repl_connected.store(0, Ordering::Relaxed);
                }
                Err(_) => {
                    failures = failures.saturating_add(1).min(8);
                    let deadline = Instant::now() + options.delay_before_retry(failures);
                    while Instant::now() < deadline {
                        if self.primary(generation).is_none() {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }
    }

    /// One connected stint against the primary: handshake, optional
    /// snapshot bootstrap, then the live frame tail. Returning (for any
    /// reason) sends control back to `run`, which redials from the
    /// current applied seq — so every exit path is also the repair path.
    fn follow(&self, generation: u64, stream: TcpStream, force_reset: &mut bool) {
        let stats = &self.hub.stats;
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut pending = String::new();
        let mut applied = self.persist.current_seq();
        // `v2` advertises that this follower can decode a compressed
        // colstore bootstrap; a primary on the text snapshot format still
        // answers with the plain-frame form. `reset` (one-shot, after a
        // failed truncate CRC probe) forces the wholesale bootstrap.
        let reset = if std::mem::take(force_reset) {
            " reset"
        } else {
            ""
        };
        if writer
            .write_all(format!("REPLICATE {applied} v2{reset}\n").as_bytes())
            .is_err()
        {
            return;
        }

        let Some(header) =
            self.next_line(generation, &mut reader, &mut pending, &mut writer, applied)
        else {
            return;
        };
        let start = match protocol::parse_replicate_header(&header) {
            Ok(start) => start,
            // `-ERR` (e.g. the peer lost persistence) or garbage: redial.
            Err(_) => return,
        };

        // Full bootstrap (either form): our log position is useless to
        // the primary (predates its retained log, or is ahead of it after
        // a failed promote). Collect the whole catalog image first; any
        // corrupt frame or block poisons the image, so abort and redial —
        // the refetch starts from scratch, skipping nothing — rather than
        // install a catalog with holes.
        let bootstrap: Option<(Vec<Subscription>, u64)> = match start {
            ReplicateStart::Log { .. } => None,
            ReplicateStart::Snapshot { subs: count, seq } => {
                let mut subs = Vec::with_capacity(count);
                for _ in 0..count {
                    let Some(line) =
                        self.next_line(generation, &mut reader, &mut pending, &mut writer, applied)
                    else {
                        return;
                    };
                    match parse_frame(&line, &self.hub.schema) {
                        Ok(record) => match record.op {
                            ReplayOp::Sub(sub) => subs.push(sub),
                            ReplayOp::Unsub(_) => return,
                        },
                        Err(_) => {
                            ServerStats::add(&stats.repl_crc_skipped, 1);
                            return;
                        }
                    }
                }
                Some((subs, seq))
            }
            ReplicateStart::Colstore {
                blocks,
                subs: count,
                seq,
            } => {
                let mut subs = Vec::with_capacity(count);
                for _ in 0..blocks {
                    let Some(line) =
                        self.next_line(generation, &mut reader, &mut pending, &mut writer, applied)
                    else {
                        return;
                    };
                    match decode_bootstrap_block(&line, &self.hub.schema) {
                        Ok(mut block_subs) => subs.append(&mut block_subs),
                        Err(_) => {
                            // CRC/format damage on the wire: counted like
                            // a corrupt streamed frame, connection dropped,
                            // whole bootstrap refetched on reconnect.
                            ServerStats::add(&stats.repl_crc_skipped, 1);
                            return;
                        }
                    }
                }
                if subs.len() != count {
                    ServerStats::add(&stats.repl_crc_skipped, 1);
                    return;
                }
                Some((subs, seq))
            }
            ReplicateStart::Truncate { seq, crc } => {
                // Covered-suffix rewind: our history is ahead of the
                // primary's (an unacked suffix from an old promotion).
                // Verify our own frame at `seq` carries the CRC the
                // primary announced; a match proves the histories agree
                // up to `seq`, so the suffix can be discarded locally
                // with zero transferred state. A mismatch (or a missing
                // frame) means divergence — redial with `reset` for the
                // wholesale bootstrap.
                if self.persist.local_frame_crc(seq) != Some(crc) {
                    *force_reset = true;
                    return;
                }
                match self.persist.rewind_to(&self.engine, seq) {
                    Ok(subs) => {
                        let fresh: HashMap<SubId, u64> = subs
                            .iter()
                            .map(|sub| (sub.id(), sub_fingerprint(sub)))
                            .collect();
                        self.hub
                            .owners
                            .write()
                            .retain(|id, _| fresh.contains_key(id));
                        *self.hub.live.write() = fresh;
                        applied = seq;
                        stats.repl_applied_seq.store(applied, Ordering::Relaxed);
                        if writer
                            .write_all(format!("REPLACK {applied}\n").as_bytes())
                            .is_err()
                        {
                            return;
                        }
                        None
                    }
                    Err(_) => {
                        *force_reset = true;
                        return;
                    }
                }
            }
        };
        if let Some((subs, seq)) = bootstrap {
            let fresh: HashMap<SubId, u64> = subs
                .iter()
                .map(|sub| (sub.id(), sub_fingerprint(sub)))
                .collect();
            if self
                .persist
                .bootstrap_replace(&self.engine, subs, seq)
                .is_err()
            {
                return;
            }
            // The engine + catalog were swapped wholesale; mirror that in
            // the hub so CLAIM liveness and notification routing agree
            // with what is actually matchable.
            self.hub
                .owners
                .write()
                .retain(|id, _| fresh.contains_key(id));
            *self.hub.live.write() = fresh;
            applied = seq;
            stats.repl_applied_seq.store(applied, Ordering::Relaxed);
            ServerStats::add(&stats.repl_bootstraps, 1);
            let _ = writer.write_all(format!("REPLACK {applied}\n").as_bytes());
        }
        // Flip the gauge only now that any bootstrap/rewind has resolved:
        // `connected 1` in this node's `ROLE` report certifies "history
        // reconciled with the upstream", which is what the router's
        // follower-read eligibility check leans on — a returned
        // ex-primary mid-bootstrap must not look readable.
        stats.repl_connected.store(1, Ordering::Relaxed);

        let mut since_ack = 0u64;
        loop {
            let Some(line) =
                self.next_line(generation, &mut reader, &mut pending, &mut writer, applied)
            else {
                return;
            };
            let record = match parse_frame(&line, &self.hub.schema) {
                Ok(record) => record,
                Err(_) => {
                    // A framed-but-corrupt record is never applied. Drop
                    // the connection instead of skipping past it: the
                    // reconnect handshake (`REPLICATE <applied>`) refetches
                    // the record from the primary's durable log, so no
                    // hole survives wire corruption.
                    ServerStats::add(&stats.repl_crc_skipped, 1);
                    return;
                }
            };
            if record.seq <= applied {
                continue; // backlog/live overlap around the handshake
            }
            match self.persist.apply_replicated(&self.engine, &line, &record) {
                Ok(true) => {
                    match &record.op {
                        ReplayOp::Sub(sub) => {
                            self.hub.live.write().insert(sub.id(), sub_fingerprint(sub));
                        }
                        ReplayOp::Unsub(id) => {
                            self.hub.live.write().remove(id);
                            self.hub.owners.write().remove(id);
                        }
                    }
                    applied = record.seq;
                    stats.repl_applied_seq.store(applied, Ordering::Relaxed);
                    since_ack += 1;
                    // Pipelined acks: while more records are already
                    // readable on the stream they will be applied in this
                    // same drain, so hold the ack and send one line at
                    // the drain boundary — `ack_every` caps how long a
                    // continuous burst can go unacknowledged.
                    let more_buffered = burst_continues(&mut reader);
                    if since_ack >= self.ack_every || !more_buffered {
                        if since_ack > 1 {
                            ServerStats::add(&stats.replacks_pipelined, 1);
                        }
                        since_ack = 0;
                        if writer
                            .write_all(format!("REPLACK {applied}\n").as_bytes())
                            .is_err()
                        {
                            return;
                        }
                    }
                }
                Ok(false) => {
                    applied = applied.max(record.seq);
                }
                // Local persistence is degraded; redial after backoff so
                // the append retries rather than silently dropping churn.
                Err(_) => return,
            }
        }
    }

    /// Reads the next complete line, tolerating read-timeout ticks. Each
    /// idle tick re-checks the stop conditions and sends a keepalive
    /// `REPLACK` so the primary's lag gauge stays fresh. `None` means the
    /// stream ended or this puller should stop.
    fn next_line(
        &self,
        generation: u64,
        reader: &mut BufReader<TcpStream>,
        pending: &mut String,
        writer: &mut TcpStream,
        applied: u64,
    ) -> Option<String> {
        loop {
            self.primary(generation)?;
            match reader.read_line(pending) {
                Ok(0) => return None,
                Ok(_) => {
                    if pending.ends_with('\n') {
                        let line = pending.trim_end().to_string();
                        pending.clear();
                        return Some(line);
                    }
                    // Unterminated tail: EOF follows on the next read.
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if writer
                        .write_all(format!("REPLACK {applied}\n").as_bytes())
                        .is_err()
                    {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
    }
}

/// Whether the replication burst being drained continues: another frame
/// is already buffered, or the kernel socket buffer has more bytes ready
/// right now. The `BufReader` buffer alone is not a drain boundary — a
/// burst larger than one buffer fill (8KB default) looks "drained" at
/// every buffer edge, which would ack far more often than `ack_every`
/// intends — so when the buffer is quiet, peek the socket with a
/// momentary non-blocking fill: `WouldBlock` is the genuine boundary.
fn burst_continues(reader: &mut BufReader<TcpStream>) -> bool {
    if reader.buffer().contains(&b'\n') {
        return true;
    }
    // A non-empty buffer without a newline is a torn frame: its tail is
    // in flight, so the fill below reports the burst continuing (either
    // from fresh bytes or the buffered remainder) and the ack holds —
    // the idle keepalive still bounds how long that can last.
    if reader.get_ref().set_nonblocking(true).is_err() {
        return false;
    }
    let ready = matches!(reader.fill_buf(), Ok(buf) if !buf.is_empty());
    let _ = reader.get_ref().set_nonblocking(false);
    ready
}

/// What a `RESHARD PULL` told us to migrate: the donor to dial, the ring
/// subset to keep out of its catalog, and (optionally) the donor's
/// old-ring ownership, which bounds the bootstrap reconcile.
#[derive(Clone)]
struct PullTarget {
    source: String,
    scope: RingScope,
    donor: Option<RingScope>,
}

/// Drives the receiving side of a live partition migration (`RESHARD
/// PULL`): a puller thread dials the donor, performs a **scoped**
/// `REPLICATE ... ring` handshake, and applies the owned subset of the
/// stream through the **local** churn path.
///
/// Differences from [`ReplicaRunner`], which it otherwise mirrors:
///
/// * Applied records mint **local** seqs via [`Persister::apply_sub`] —
///   the donor's seq domain is never copied into this node's log, so the
///   node stays a normal primary (serving churn, feeding its own standby)
///   throughout the migration.
/// * Progress is a **source-seq cursor** (`cursor`), advanced across
///   *every* streamed frame — owned or not — so the `REPLACK`s it sends
///   stay comparable with the donor's log seq. That comparability is what
///   the router's double-write floor handshake relies on.
/// * The cursor survives re-`PULL`s that carry the same scope (a donor
///   failover changes the address, not the leg), and is reset when the
///   scope changes (a different leg).
pub(crate) struct ReshardRunner {
    hub: Arc<Hub>,
    engine: Arc<ShardedEngine>,
    persist: Arc<Persister>,
    shutdown: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    ack_every: u64,
    /// Bumped by every `PULL`/`CUTOFF`/`DEMOTE`; a puller thread tagged
    /// with an older generation notices and exits — cutover needs no
    /// extra signalling, exactly like role generations.
    generation: AtomicU64,
    target: Mutex<Option<PullTarget>>,
    /// Highest donor-log seq fully covered (bootstrap or applied frame).
    /// Stored, not maxed: a promoted standby can legitimately present
    /// fewer records than the dead donor had streamed.
    pub(crate) cursor: AtomicU64,
    /// 1 while a stream is established (for `RESHARD STATUS`).
    connected: AtomicU64,
}

impl ReshardRunner {
    /// Installs a (new or re-issued) pull target and starts a puller
    /// generation for it. Idempotent per leg: re-pulling the same scope —
    /// the router controller's repair action after either side dies —
    /// keeps the cursor and simply redials.
    pub(crate) fn start_pull(
        self: &Arc<Self>,
        source: String,
        scope: RingScope,
        donor: Option<RingScope>,
    ) {
        let mut target = self.target.lock();
        let same_leg = matches!(&*target, Some(t) if t.scope == scope && t.donor == donor);
        if !same_leg {
            self.cursor.store(0, Ordering::SeqCst);
        }
        *target = Some(PullTarget {
            source,
            scope,
            donor,
        });
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        drop(target);
        self.hub.stats.reshard_pulling.store(1, Ordering::Relaxed);
        let runner = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("apcm-reshard-g{generation}"))
            .spawn(move || runner.run(generation))
            .expect("spawning reshard puller");
        self.conn_threads.lock().push(handle);
    }

    /// `RESHARD CUTOFF` (or demotion): stop pulling. The applied catalog
    /// stays — cutoff means the migration controller decided this node
    /// now owns what it pulled.
    pub(crate) fn stop(&self) {
        // Bump the generation while holding the target lock: frame
        // application takes the same lock and re-checks liveness, so once
        // this returns (and `RESHARD CUTOFF` is acked) no further frame —
        // in particular no donor-prune `UNSUB` racing down the stream —
        // can touch the catalog this node now owns.
        let mut target = self.target.lock();
        *target = None;
        self.generation.fetch_add(1, Ordering::SeqCst);
        drop(target);
        self.connected.store(0, Ordering::Relaxed);
        self.hub.stats.reshard_pulling.store(0, Ordering::Relaxed);
    }

    /// Whether the puller tagged `generation` should keep running.
    fn live(&self, generation: u64) -> bool {
        !self.shutdown.load(Ordering::SeqCst)
            && self.generation.load(Ordering::SeqCst) == generation
    }

    pub(crate) fn status_line(&self) -> String {
        match &*self.target.lock() {
            Some(t) => format!(
                "+OK reshard pulling {} applied {} connected {}",
                t.source,
                self.cursor.load(Ordering::SeqCst),
                self.connected.load(Ordering::Relaxed)
            ),
            None => "+OK reshard idle".into(),
        }
    }

    fn run(&self, generation: u64) {
        let options = ConnectOptions {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_millis(250)),
            attempts: 1,
            ..ConnectOptions::default()
        };
        let mut failures = 0u32;
        loop {
            if !self.live(generation) {
                return;
            }
            let Some(target) = self.target.lock().clone() else {
                return;
            };
            match connect_stream(&target.source, &options) {
                Ok(stream) => {
                    failures = 0;
                    self.follow(generation, &target, stream);
                    self.connected.store(0, Ordering::Relaxed);
                }
                Err(_) => {
                    failures = failures.saturating_add(1).min(8);
                    let deadline = Instant::now() + options.delay_before_retry(failures);
                    while Instant::now() < deadline {
                        if !self.live(generation) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }
    }

    /// Applies one owned subscription through the local churn path.
    /// Convergent: an already-present identical expression is a no-op, a
    /// conflicting expression under the same id (the donor's version
    /// wins — it is the owner of record during catch-up) is replaced.
    /// `Err` means local persistence is degraded; the caller drops the
    /// stream and the redial re-covers from the cursor.
    fn apply_owned_sub(&self, sub: &Subscription) -> Result<(), ()> {
        let fp = sub_fingerprint(sub);
        if self.hub.live.read().get(&sub.id()).copied() == Some(fp) {
            return Ok(());
        }
        match self.persist.apply_sub(&self.engine, sub) {
            Ok(Some(_)) => {}
            Ok(None) => {
                if self.persist.apply_unsub(&self.engine, sub.id()).is_err()
                    || self.persist.apply_sub(&self.engine, sub).is_err()
                {
                    return Err(());
                }
            }
            Err(_) => return Err(()),
        }
        self.hub.live.write().insert(sub.id(), fp);
        ServerStats::add(&self.hub.stats.reshard_pull_applied, 1);
        Ok(())
    }

    /// Removes one owned subscription through the local churn path.
    fn apply_owned_unsub(&self, id: SubId) -> Result<(), ()> {
        match self.persist.apply_unsub(&self.engine, id) {
            Ok(Some(_)) => {
                self.hub.live.write().remove(&id);
                self.hub.owners.write().remove(&id);
                ServerStats::add(&self.hub.stats.reshard_pull_applied, 1);
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(_) => Err(()),
        }
    }

    /// One connected stint against the donor: scoped handshake, optional
    /// bootstrap (the donor filters the catalog image to our scope; we
    /// re-filter defensively), then the live frame tail. The log tail and
    /// live stream carry **all** of the donor's frames — we skip the ones
    /// outside our scope but still advance the cursor across them.
    fn follow(&self, generation: u64, target: &PullTarget, stream: TcpStream) {
        let stats = &self.hub.stats;
        let scope = &target.scope;
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut pending = String::new();
        let mut cursor = self.cursor.load(Ordering::SeqCst);
        if writer
            .write_all(
                format!(
                    "REPLICATE {cursor} v2 ring {} {}\n",
                    scope.ring().to_csv(),
                    scope.keep_csv()
                )
                .as_bytes(),
            )
            .is_err()
        {
            return;
        }

        let Some(header) =
            self.next_line(generation, &mut reader, &mut pending, &mut writer, cursor)
        else {
            return;
        };
        let start = match protocol::parse_replicate_header(&header) {
            Ok(start) => start,
            Err(_) => return,
        };
        self.connected.store(1, Ordering::Relaxed);

        // Bootstrap forms mirror ReplicaRunner: collect the whole image,
        // abort on any damage, and only then touch local state.
        let bootstrap: Option<(Vec<Subscription>, u64)> = match start {
            ReplicateStart::Log { .. } => None,
            ReplicateStart::Snapshot { subs: count, seq } => {
                let mut subs = Vec::with_capacity(count);
                for _ in 0..count {
                    let Some(line) =
                        self.next_line(generation, &mut reader, &mut pending, &mut writer, cursor)
                    else {
                        return;
                    };
                    match parse_frame(&line, &self.hub.schema) {
                        Ok(record) => match record.op {
                            ReplayOp::Sub(sub) => subs.push(sub),
                            ReplayOp::Unsub(_) => return,
                        },
                        Err(_) => {
                            ServerStats::add(&stats.repl_crc_skipped, 1);
                            return;
                        }
                    }
                }
                Some((subs, seq))
            }
            ReplicateStart::Colstore {
                blocks,
                subs: count,
                seq,
            } => {
                let mut subs = Vec::with_capacity(count);
                for _ in 0..blocks {
                    let Some(line) =
                        self.next_line(generation, &mut reader, &mut pending, &mut writer, cursor)
                    else {
                        return;
                    };
                    match decode_bootstrap_block(&line, &self.hub.schema) {
                        Ok(mut block_subs) => subs.append(&mut block_subs),
                        Err(_) => {
                            ServerStats::add(&stats.repl_crc_skipped, 1);
                            return;
                        }
                    }
                }
                if subs.len() != count {
                    ServerStats::add(&stats.repl_crc_skipped, 1);
                    return;
                }
                Some((subs, seq))
            }
            // Scoped pulls are never offered a truncate (the donor's
            // handshake gates it on an unscoped stream); treat one as a
            // protocol violation and redial.
            ReplicateStart::Truncate { .. } => return,
        };
        if let Some((mut subs, seq)) = bootstrap {
            // Unlike a replica bootstrap, this is *additive*: the node
            // keeps serving its existing catalog while absorbing the
            // migrated subset, so no wholesale replace.
            subs.retain(|s| scope.owns(s.id()));
            let image: HashMap<SubId, ()> = subs.iter().map(|s| (s.id(), ())).collect();
            // Applied under the target lock with a liveness re-check: a
            // cutoff acked mid-bootstrap must not race a stale image into
            // the catalog the controller just took ownership of.
            let guard = self.target.lock();
            if !self.live(generation) {
                return;
            }
            for sub in &subs {
                if self.apply_owned_sub(sub).is_err() {
                    return;
                }
            }
            // Reconcile: an owned id present locally but absent from the
            // donor's image was unsubscribed while we were disconnected
            // past the donor's log retention — drop it, or it resurrects.
            // Bounded by the donor's old-ring scope: ids absorbed from
            // *earlier* legs of the same migration are owned by `scope`
            // but were never this donor's, and must survive.
            for id in self.persist.catalog_ids() {
                let from_this_donor = target.donor.as_ref().is_none_or(|d| d.owns(id));
                if scope.owns(id)
                    && from_this_donor
                    && !image.contains_key(&id)
                    && self.apply_owned_unsub(id).is_err()
                {
                    return;
                }
            }
            drop(guard);
            cursor = seq;
            self.cursor.store(cursor, Ordering::SeqCst);
            stats.reshard_pull_seq.store(cursor, Ordering::Relaxed);
            if writer
                .write_all(format!("REPLACK {cursor}\n").as_bytes())
                .is_err()
            {
                return;
            }
        }

        let mut since_ack = 0u64;
        loop {
            let Some(line) =
                self.next_line(generation, &mut reader, &mut pending, &mut writer, cursor)
            else {
                return;
            };
            let record = match parse_frame(&line, &self.hub.schema) {
                Ok(record) => record,
                Err(_) => {
                    // Never applied, never acked: drop the stream and let
                    // the redial refetch it from the donor's durable log.
                    ServerStats::add(&stats.repl_crc_skipped, 1);
                    return;
                }
            };
            if record.seq <= cursor {
                continue;
            }
            let id = match &record.op {
                ReplayOp::Sub(sub) => sub.id(),
                ReplayOp::Unsub(id) => *id,
            };
            if scope.owns(id) {
                // Lock-and-recheck against a concurrent `RESHARD CUTOFF`:
                // once the cutoff is acked this node owns its catalog, and
                // a frame already in flight — the donor prune's `UNSUB`s
                // chief among them — must not be applied over it.
                let guard = self.target.lock();
                if !self.live(generation) {
                    return;
                }
                let applied = match &record.op {
                    ReplayOp::Sub(sub) => self.apply_owned_sub(sub),
                    ReplayOp::Unsub(id) => self.apply_owned_unsub(*id),
                };
                drop(guard);
                if applied.is_err() {
                    return;
                }
            }
            // The cursor covers non-owned frames too — acking them is
            // what keeps it comparable with the donor's log seq.
            cursor = record.seq;
            self.cursor.store(cursor, Ordering::SeqCst);
            stats.reshard_pull_seq.store(cursor, Ordering::Relaxed);
            since_ack += 1;
            if since_ack >= self.ack_every {
                since_ack = 0;
                if writer
                    .write_all(format!("REPLACK {cursor}\n").as_bytes())
                    .is_err()
                {
                    return;
                }
            }
        }
    }

    /// Reads the next complete line, tolerating read-timeout ticks; each
    /// idle tick re-checks the stop conditions and keeps the donor's lag
    /// gauge fresh with a keepalive `REPLACK`.
    fn next_line(
        &self,
        generation: u64,
        reader: &mut BufReader<TcpStream>,
        pending: &mut String,
        writer: &mut TcpStream,
        cursor: u64,
    ) -> Option<String> {
        loop {
            if !self.live(generation) {
                return None;
            }
            match reader.read_line(pending) {
                Ok(0) => return None,
                Ok(_) => {
                    if pending.ends_with('\n') {
                        let line = pending.trim_end().to_string();
                        pending.clear();
                        return Some(line);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if writer
                        .write_all(format!("REPLACK {cursor}\n").as_bytes())
                        .is_err()
                    {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
    }
}

/// Spawns the reader + writer thread pair for one accepted connection.
fn spawn_connection(
    ctx: Arc<ConnCtx>,
    stream: TcpStream,
    conn_id: u64,
    conn_queue: usize,
    conn_threads: &Mutex<Vec<JoinHandle<()>>>,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let (out_tx, out_rx) = bounded::<String>(conn_queue);
    let activity = Arc::new(AtomicU64::new(ctx.epoch.elapsed().as_millis() as u64));

    let writer = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        std::thread::Builder::new()
            .name(format!("apcm-conn-{conn_id}-w"))
            .spawn(move || write_loop(stream, out_rx))
            .expect("spawning connection writer")
    };

    let reader = {
        let registry_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        ctx.hub
            .thread_conns()
            .expect("spawn_connection is threaded-mode only")
            .lock()
            .insert(
                conn_id,
                ConnHandle {
                    out: out_tx.clone(),
                    stream: registry_stream,
                    activity: activity.clone(),
                },
            );
        std::thread::Builder::new()
            .name(format!("apcm-conn-{conn_id}-r"))
            .spawn(move || {
                read_loop(&ctx, stream, conn_id, out_tx, &activity);
                // Cleanup: deregister and release the writer. If this
                // connection was a replication feed, drop its follower
                // slot so the lag gauge stops tracking it.
                if let Some(p) = &ctx.persist {
                    p.remove_follower(conn_id);
                }
                if let Some(registry) = ctx.hub.thread_conns() {
                    registry.lock().remove(&conn_id);
                }
                ServerStats::sub(&ctx.hub.stats.conns_active, 1);
            })
            .expect("spawning connection reader")
    };

    let mut threads = conn_threads.lock();
    threads.push(writer);
    threads.push(reader);
}

fn write_loop(stream: TcpStream, out_rx: Receiver<String>) {
    let mut w = BufWriter::new(stream);
    while let Ok(line) = out_rx.recv() {
        if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            return;
        }
        // Batch flushes: only force the buffer out when the queue is idle.
        if out_rx.is_empty() && w.flush().is_err() {
            return;
        }
    }
    let _ = w.flush();
}

/// Frames capped lines off the socket and feeds them to the shared
/// dispatcher until EOF, error, or the dispatcher closes the connection.
fn read_loop(
    ctx: &ConnCtx,
    stream: TcpStream,
    conn_id: u64,
    out: Sender<String>,
    activity: &AtomicU64,
) {
    let stats = ctx.hub.stats.clone();
    let max_line = ctx.max_line_bytes;
    // Source for the follower face a `REPLICATE` handshake materializes;
    // cloned up front because the stream itself moves into the reader.
    let follower_src = stream.try_clone().ok();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut state = ConnState::default();
    let out_follower = out.clone();
    let mut make_follower = move || -> std::io::Result<Box<dyn FollowerConn>> {
        let stream = follower_src
            .as_ref()
            .ok_or_else(|| std::io::Error::other("connection stream unavailable"))?
            .try_clone()?;
        Ok(Box::new(ThreadedFollower {
            out: out_follower.clone(),
            stream,
        }))
    };
    // Control replies go through the same queue as async results; a
    // blocking send here only ever waits on this connection's own writer.
    let mut reply = |text: String| {
        let _ = out.send(text);
        ServerStats::add(&stats.replies_sent, 1);
    };
    loop {
        let input = match read_capped_line(&mut reader, &mut line, max_line) {
            Ok(LineOutcome::Line) => {
                activity.store(ctx.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
                LineInput::Text(&line)
            }
            Ok(LineOutcome::TooLong) => LineInput::TooLong,
            Ok(LineOutcome::Eof) | Err(_) => return,
        };
        let flow = on_conn_line(
            ctx,
            conn_id,
            &mut state,
            input,
            &mut reply,
            &mut make_follower,
        );
        if flow == Flow::Close {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn capped(input: &[u8], max: usize) -> Vec<(String, bool)> {
        let mut reader = BufReader::with_capacity(4, Cursor::new(input.to_vec()));
        let mut line = String::new();
        let mut out = Vec::new();
        loop {
            match read_capped_line(&mut reader, &mut line, max).unwrap() {
                LineOutcome::Line => out.push((line.clone(), false)),
                LineOutcome::TooLong => out.push((String::new(), true)),
                LineOutcome::Eof => return out,
            }
        }
    }

    #[test]
    fn capped_reader_splits_lines() {
        let out = capped(b"alpha\nbeta\n", 64);
        assert_eq!(out, vec![("alpha".into(), false), ("beta".into(), false)]);
    }

    #[test]
    fn capped_reader_returns_final_unterminated_line() {
        let out = capped(b"alpha\nbeta", 64);
        assert_eq!(out, vec![("alpha".into(), false), ("beta".into(), false)]);
    }

    #[test]
    fn capped_reader_discards_oversized_line_and_recovers() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let out = capped(&input, 10);
        assert_eq!(out, vec![(String::new(), true), ("ok".into(), false)]);
    }

    #[test]
    fn capped_reader_handles_oversized_tail_without_newline() {
        let input = vec![b'y'; 50];
        let out = capped(&input, 10);
        assert_eq!(out, vec![(String::new(), true)]);
    }

    #[test]
    fn capped_reader_accepts_line_exactly_at_cap() {
        let mut input = vec![b'z'; 10];
        input.push(b'\n');
        let out = capped(&input, 10);
        assert_eq!(out, vec![("z".repeat(10), false)]);
    }
}
