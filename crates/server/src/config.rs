//! Server configuration: shard layout, engine choice, ingest tuning,
//! connection policies, and durability.

use apcm_core::ApcmConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Which matching engine each shard runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// A-PCM (`apcm_core::ApcmMatcher`) — native dynamic churn, OSR + batch
    /// pruning inside each shard. The default.
    Apcm,
    /// BE-Tree with compressed buckets (`apcm_betree::HybridPcmTree`),
    /// made dynamic with an overlay buffer folded in by maintenance.
    BetreeHybrid,
    /// Brute-force scan over the shard's live set. The correctness
    /// baseline and the fallback when index build cost is not worth it.
    Scan,
}

impl EngineChoice {
    /// Parses the CLI / protocol spelling.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "apcm" => Ok(Self::Apcm),
            "betree-hybrid" | "hybrid" => Ok(Self::BetreeHybrid),
            "scan" => Ok(Self::Scan),
            other => Err(format!(
                "unknown engine `{other}` (expected apcm|betree-hybrid|scan)"
            )),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Self::Apcm => "apcm",
            Self::BetreeHybrid => "betree-hybrid",
            Self::Scan => "scan",
        }
    }
}

/// What to do with a connection whose outbound queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowConsumerPolicy {
    /// Drop the notification and count it (`replies_dropped`); the
    /// connection stays up. The default.
    Drop,
    /// Disconnect the consumer; a client that cannot keep up loses its
    /// session rather than wedging the matcher.
    Disconnect,
}

impl SlowConsumerPolicy {
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "drop" => Ok(Self::Drop),
            "disconnect" => Ok(Self::Disconnect),
            other => Err(format!(
                "unknown slow-consumer policy `{other}` (expected drop|disconnect)"
            )),
        }
    }
}

/// When appended churn records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append — an acknowledged SUB/UNSUB survives
    /// a machine crash, at per-op syscall cost.
    Always,
    /// Sync once per maintenance sweep. A process crash loses nothing (the
    /// kernel has the bytes); a machine crash can lose up to one sweep of
    /// churn. The default.
    Interval,
    /// Never force; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(Self::Always),
            "interval" => Ok(Self::Interval),
            "never" => Ok(Self::Never),
            other => Err(format!(
                "unknown fsync policy `{other}` (expected always|interval|never)"
            )),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Interval => "interval",
            Self::Never => "never",
        }
    }
}

/// On-disk snapshot encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Text v1 (`# apcm-snapshot v1`, one `sub` line per subscription).
    /// Still readable on recovery regardless of this setting; selecting
    /// it keeps *writing* the legacy format.
    Text,
    /// Block-columnar compressed v2 (`apcm-colstore`): dictionary-encoded
    /// atoms, delta+varint ids, per-block LZSS + CRC framing, delta
    /// snapshots, and compressed replication bootstrap. The default.
    Colstore,
}

impl SnapshotFormat {
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "text" | "v1" => Ok(Self::Text),
            "colstore" | "v2" => Ok(Self::Colstore),
            other => Err(format!(
                "unknown snapshot format `{other}` (expected text|colstore)"
            )),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Self::Text => "text",
            Self::Colstore => "colstore",
        }
    }
}

/// How the broker serves client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One `apcm-netio` readiness loop on a fixed worker pool multiplexes
    /// every client connection (epoll + timer wheel). The default.
    EventLoop,
    /// Two threads per connection (blocking reader + writer). Kept as the
    /// scalability baseline and for environments without epoll.
    Threads,
}

impl IoModel {
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "event-loop" | "epoll" | "loop" => Ok(Self::EventLoop),
            "threads" | "threaded" => Ok(Self::Threads),
            other => Err(format!(
                "unknown io model `{other}` (expected event-loop|threads)"
            )),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Self::EventLoop => "event-loop",
            Self::Threads => "threads",
        }
    }
}

/// Durability settings. `ServerConfig::persist = Some(..)` turns the
/// broker's subscription set into durable state (see [`crate::persist`]).
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding `snapshot.apcm` and `churn.log` (created if
    /// missing).
    pub dir: PathBuf,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Background snapshot period; `None` disables age-triggered
    /// snapshots (size rotation and the `SNAPSHOT` command still work).
    pub snapshot_interval: Option<Duration>,
    /// Snapshot + rotate once the churn log exceeds this many bytes.
    pub rotate_log_bytes: u64,
    /// Initial retry delay after a failed append (doubles per failure).
    pub retry_backoff: Duration,
    /// Ceiling for the exponential backoff.
    pub max_retry_backoff: Duration,
    /// Snapshot encoding written by this server (recovery auto-detects).
    pub format: SnapshotFormat,
    /// Colstore only: age-triggered background snapshots may serialize
    /// just the partitions dirtied since the last chain element, up to
    /// this many deltas stacked on one full before the next full is
    /// forced. `0` disables delta snapshots.
    pub max_delta_chain: u32,
}

impl PersistConfig {
    /// Defaults for a given directory.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval,
            snapshot_interval: Some(Duration::from_secs(60)),
            rotate_log_bytes: 16 * 1024 * 1024,
            retry_backoff: Duration::from_millis(100),
            max_retry_backoff: Duration::from_secs(10),
            format: SnapshotFormat::Colstore,
            max_delta_chain: 4,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.rotate_log_bytes == 0 {
            return Err("rotate_log_bytes must be positive".into());
        }
        if self.retry_backoff.is_zero() || self.max_retry_backoff < self.retry_backoff {
            return Err("retry backoff must be positive and <= its ceiling".into());
        }
        Ok(())
    }
}

/// Tuning for the sharded matching service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of hash partitions of the subscription space.
    pub shards: usize,
    /// Engine run by every shard.
    pub engine: EngineChoice,
    /// Worker threads per shard for engines with internal parallelism.
    /// `None` divides available cores evenly across shards.
    pub threads_per_shard: Option<usize>,
    /// OSR ingest window: events are matched in windows of this many.
    pub window: usize,
    /// Capacity of the bounded ingest queue (events). Producers block when
    /// it is full — this is the backpressure boundary.
    pub ingest_queue: usize,
    /// Capacity of each connection's bounded outbound queue (lines).
    pub conn_queue: usize,
    /// Flush a partial ingest window after this long without new events.
    pub flush_interval: Duration,
    /// Period of the background per-shard `maintain()` sweep.
    pub maintenance_interval: Duration,
    /// Policy for consumers whose outbound queue is full.
    pub slow_consumer: SlowConsumerPolicy,
    /// Hard cap on one protocol line; longer lines get `-ERR line too
    /// long` and are discarded without unbounded buffering.
    pub max_line_bytes: usize,
    /// Close connections with no inbound traffic for this long (the
    /// maintenance thread sweeps); `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Durable subscription state; `None` keeps the pre-durability
    /// behavior (everything lost on restart).
    pub persist: Option<PersistConfig>,
    /// Start as a read-only replica following the primary at this address:
    /// client churn is refused (`-ERR read-only replica`) and a puller
    /// thread streams the primary's churn records into the local engine +
    /// persistence. Requires `persist`. `PROMOTE` flips the role at
    /// runtime.
    pub replica_of: Option<String>,
    /// A replica sends `REPLACK` after this many applied records (and on
    /// stream idle), bounding how stale the primary's lag gauge can be.
    pub repl_ack_every: u64,
    /// How client connections are served (event loop vs thread pair).
    pub io_model: IoModel,
    /// Admission cap: accepts beyond this many open client connections
    /// are answered `-ERR server busy` and closed (counted in
    /// `conns_rejected`). `None` disables the cap.
    pub max_conns: Option<usize>,
    /// Event-loop worker threads; `None` sizes from available cores
    /// (clamped to 2..=8). Ignored under `IoModel::Threads`.
    pub loop_workers: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            engine: EngineChoice::Apcm,
            threads_per_shard: None,
            window: 128,
            ingest_queue: 4096,
            conn_queue: 1024,
            flush_interval: Duration::from_millis(5),
            maintenance_interval: Duration::from_millis(250),
            slow_consumer: SlowConsumerPolicy::Drop,
            max_line_bytes: 1024 * 1024,
            idle_timeout: None,
            persist: None,
            replica_of: None,
            repl_ack_every: 32,
            io_model: IoModel::EventLoop,
            max_conns: None,
            loop_workers: None,
        }
    }
}

impl ServerConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.ingest_queue == 0 || self.conn_queue == 0 {
            return Err("queue capacities must be positive".into());
        }
        if self.max_line_bytes < 16 {
            return Err("max_line_bytes must be at least 16".into());
        }
        if let Some(persist) = &self.persist {
            persist.validate()?;
        }
        if self.replica_of.is_some() && self.persist.is_none() {
            return Err("replica mode requires persistence (the replicated churn \
                        log is applied through the local persister)"
                .into());
        }
        if self.repl_ack_every == 0 {
            return Err("repl_ack_every must be positive".into());
        }
        if self.max_conns == Some(0) {
            return Err("max_conns must be positive when set".into());
        }
        if self.loop_workers == Some(0) {
            return Err("loop_workers must be positive when set".into());
        }
        Ok(())
    }

    /// Engine configuration for one shard: with several shards the fan-out
    /// happens at the shard level, so each shard runs sequentially on its
    /// share of the cores; a single shard keeps the engine's own pool.
    pub fn shard_engine_config(&self) -> ApcmConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let per_shard = self
            .threads_per_shard
            .unwrap_or_else(|| (cores / self.shards).max(1));
        if per_shard <= 1 {
            ApcmConfig::sequential()
        } else {
            ApcmConfig::default().with_threads(per_shard)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServerConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_shards() {
        let config = ServerConfig {
            shards: 0,
            ..ServerConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(
            FsyncPolicy::parse("interval").unwrap(),
            FsyncPolicy::Interval
        );
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn persist_config_validates() {
        let mut p = PersistConfig::new("/tmp/somewhere");
        p.validate().unwrap();
        p.rotate_log_bytes = 0;
        assert!(p.validate().is_err());
        let mut p = PersistConfig::new("/tmp/somewhere");
        p.max_retry_backoff = Duration::from_millis(1);
        assert!(p.validate().is_err());

        let config = ServerConfig {
            persist: Some(PersistConfig {
                rotate_log_bytes: 0,
                ..PersistConfig::new("/tmp/x")
            }),
            ..ServerConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn replica_mode_requires_persistence() {
        let config = ServerConfig {
            replica_of: Some("127.0.0.1:7001".into()),
            ..ServerConfig::default()
        };
        assert!(config.validate().is_err());
        let config = ServerConfig {
            replica_of: Some("127.0.0.1:7001".into()),
            persist: Some(PersistConfig::new("/tmp/x")),
            ..ServerConfig::default()
        };
        config.validate().unwrap();
        let config = ServerConfig {
            repl_ack_every: 0,
            ..ServerConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn rejects_tiny_line_cap() {
        let config = ServerConfig {
            max_line_bytes: 4,
            ..ServerConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn snapshot_format_parses_and_defaults_to_colstore() {
        assert_eq!(SnapshotFormat::parse("text").unwrap(), SnapshotFormat::Text);
        assert_eq!(
            SnapshotFormat::parse("colstore").unwrap(),
            SnapshotFormat::Colstore
        );
        assert_eq!(
            SnapshotFormat::parse("v2").unwrap(),
            SnapshotFormat::Colstore
        );
        assert!(SnapshotFormat::parse("parquet").is_err());
        let p = PersistConfig::new("/tmp/somewhere");
        assert_eq!(p.format, SnapshotFormat::Colstore);
        assert_eq!(p.format.name(), "colstore");
        assert!(p.max_delta_chain > 0);
    }

    #[test]
    fn io_model_parses_and_defaults_to_event_loop() {
        assert_eq!(IoModel::parse("event-loop").unwrap(), IoModel::EventLoop);
        assert_eq!(IoModel::parse("epoll").unwrap(), IoModel::EventLoop);
        assert_eq!(IoModel::parse("threads").unwrap(), IoModel::Threads);
        assert!(IoModel::parse("fibers").is_err());
        let config = ServerConfig::default();
        assert_eq!(config.io_model, IoModel::EventLoop);
        assert_eq!(config.io_model.name(), "event-loop");
        assert!(config.max_conns.is_none());
    }

    #[test]
    fn rejects_zero_conn_cap_and_workers() {
        let config = ServerConfig {
            max_conns: Some(0),
            ..ServerConfig::default()
        };
        assert!(config.validate().is_err());
        let config = ServerConfig {
            loop_workers: Some(0),
            ..ServerConfig::default()
        };
        assert!(config.validate().is_err());
        let config = ServerConfig {
            max_conns: Some(64),
            loop_workers: Some(2),
            ..ServerConfig::default()
        };
        config.validate().unwrap();
    }

    #[test]
    fn engine_choice_parses() {
        assert_eq!(EngineChoice::parse("apcm").unwrap(), EngineChoice::Apcm);
        assert_eq!(
            EngineChoice::parse("betree-hybrid").unwrap(),
            EngineChoice::BetreeHybrid
        );
        assert_eq!(EngineChoice::parse("scan").unwrap(), EngineChoice::Scan);
        assert!(EngineChoice::parse("nope").is_err());
    }
}
