//! The broker's plug-in for the `apcm-netio` event loop.
//!
//! [`BrokerService`] adapts the shared per-line dispatcher
//! ([`crate::request::on_conn_line`]) to [`apcm_netio::Service`]: the
//! loop frames byte-capped lines and drives idle reaping; this adapter
//! supplies the protocol semantics, connection accounting, and the
//! maintenance tick. A connection that performs the `REPLICATE`
//! handshake gets a [`LoopFollower`] — the event-loop face of
//! [`FollowerConn`] — so replication broadcast enqueues frames on the
//! same bounded outbound queue as any other reply.

use std::sync::{Arc, OnceLock};

use apcm_netio::{CloseReason, ConnId, Line, LoopHandle, SendOutcome, Service, Verdict};

use crate::broker::Delivery;
use crate::replication::FollowerConn;
use crate::request::{on_conn_line, ConnCtx, ConnState, Flow, LineInput};
use crate::stats::ServerStats;

pub(crate) struct BrokerService {
    ctx: ConnCtx,
    handle: OnceLock<Arc<LoopHandle>>,
}

impl BrokerService {
    pub(crate) fn new(ctx: ConnCtx) -> Self {
        BrokerService {
            ctx,
            handle: OnceLock::new(),
        }
    }
}

/// Replication feed outbound face for a loop-served connection.
struct LoopFollower {
    handle: Arc<LoopHandle>,
    conn: ConnId,
}

impl FollowerConn for LoopFollower {
    fn try_send(&self, line: String) -> bool {
        matches!(self.handle.try_send(self.conn, line), SendOutcome::Sent)
    }

    fn kick(&self) {
        self.handle.kick(self.conn);
    }
}

impl Service for BrokerService {
    type Session = ConnState;

    fn on_open(&self, _conn: ConnId, handle: &Arc<LoopHandle>) -> ConnState {
        let _ = self.handle.set(handle.clone());
        // Also publish the handle into the hub's delivery cell here:
        // `Server::start` sets it right after `EventLoop::start` returns,
        // but a connection accepted in that gap could PUB and need its
        // RESULT routed before the cell is otherwise populated.
        if let Delivery::Loop(cell) = &self.ctx.hub.delivery {
            let _ = cell.set(handle.clone());
        }
        ServerStats::add(&self.ctx.hub.stats.conns_total, 1);
        ServerStats::add(&self.ctx.hub.stats.conns_active, 1);
        ConnState::default()
    }

    fn on_line(&self, session: &mut ConnState, conn: ConnId, line: Line<'_>) -> Verdict {
        let handle = self
            .handle
            .get()
            .expect("on_open registered the handle")
            .clone();
        let stats = self.ctx.hub.stats.clone();
        let reply_handle = handle.clone();
        let mut reply = move |text: String| {
            // Control replies ride the uncapped path: the threaded broker
            // blocks its reader on the connection's own bounded queue, but
            // a loop worker must never stall on one connection — the queue
            // is drained by EPOLLOUT regardless.
            let _ = reply_handle.send(conn, text);
            ServerStats::add(&stats.replies_sent, 1);
        };
        let mut make_follower = move || -> std::io::Result<Box<dyn FollowerConn>> {
            Ok(Box::new(LoopFollower {
                handle: handle.clone(),
                conn,
            }))
        };
        let input = match line {
            Line::Text(text) => LineInput::Text(text),
            Line::TooLong => LineInput::TooLong,
        };
        match on_conn_line(
            &self.ctx,
            conn,
            session,
            input,
            &mut reply,
            &mut make_follower,
        ) {
            Flow::Continue => Verdict::Continue,
            Flow::Close => Verdict::Close,
        }
    }

    fn on_close(&self, _session: &mut ConnState, conn: ConnId, reason: CloseReason) {
        // If this connection was a replication feed, drop its follower
        // slot so the lag gauge stops tracking it.
        if let Some(p) = &self.ctx.persist {
            p.remove_follower(conn);
        }
        ServerStats::sub(&self.ctx.hub.stats.conns_active, 1);
        if reason == CloseReason::Idle {
            ServerStats::add(&self.ctx.hub.stats.idle_reaped, 1);
        }
    }

    /// The loop-mode maintenance sweep (the threaded broker runs the
    /// same work on its dedicated maintenance thread); idle reaping is
    /// the loop's own timer wheel's job.
    fn on_tick(&self) {
        let report = self.ctx.engine.maintain();
        self.ctx.hub.stats.record_maintenance(&report);
        if let Some(p) = &self.ctx.persist {
            p.maintenance_tick();
        }
    }
}
