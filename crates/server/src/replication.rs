//! Primary/follower replication over the durable churn machinery.
//!
//! ## Wire protocol
//!
//! A follower dials its primary like any client and sends
//! `REPLICATE <from_seq>` — the highest sequence it has already applied —
//! optionally suffixed with `v2` to advertise that it can decode a
//! compressed colstore bootstrap. The primary answers with one of:
//!
//! ```text
//! +OK replicate log <backlog>             followed by that many log frames
//! +OK replicate snapshot <n> <seq>        followed by n catalog frames
//! +OK replicate colstore <b> <n> <seq>    followed by b BLOCK lines
//! +OK replicate truncate <seq> <crc8hex>  no body; follower rewinds
//! ```
//!
//! and then keeps the connection open, pushing every subsequent durable
//! churn record as one CRC-framed line — the *same* framing as
//! `churn.log`, so one parser serves the file and the wire. The log form
//! is used when `from_seq` falls inside the retained log
//! (`base_seq <= from_seq <= seq`). A follower *ahead* of the primary
//! (an unacked suffix left over from an old promotion) gets the
//! `truncate` form when the primary still retains its own head frame:
//! `<seq>` is the primary's current sequence and `<crc8hex>` the CRC
//! field of its frame at that sequence. The follower checks its own log
//! frame at `<seq>` against that CRC; on a match the histories agree up
//! to `<seq>`, so it rewinds locally — discarding only the divergent
//! suffix — and tails from there with zero transferred state. On a
//! mismatch (or if it cannot check) it redials with a trailing `reset`
//! token, which forces the wholesale bootstrap path. Anything else — the
//! follower predates the last rotation, the CRC probe fails, or `reset`
//! was sent — gets a bootstrap: the full live catalog, which the
//! follower applies as a wholesale replacement of its local state. The
//! bootstrap form is `snapshot` (one `S` frame per subscription) unless
//! the follower said `v2` *and* the primary runs the colstore snapshot
//! format, in which case it is `colstore`: each
//! `BLOCK <partition> <rows> <raw_len> <crc8hex> <base64>` line carries
//! one LZSS-compressed columnar block (the same prepare+compress path the
//! snapshot writer uses). The follower CRC-checks and decodes every
//! block; any damage drops the connection and the reconnect refetches the
//! whole bootstrap — nothing is skipped.
//!
//! The follower reports progress on the same connection with
//! `REPLACK <applied_seq>`. Acks are *pipelined*: the follower applies
//! every record already buffered on its stream and acks once at the
//! drain boundary (or every `repl_ack_every` records, whichever comes
//! first), so a burst of N records costs one ack line instead of N. The
//! primary folds the minimum across followers into its
//! `repl_lag_records` gauge.
//!
//! ## Chains
//!
//! Replication composes hop-to-hop: a follower that has `REPLICATE`
//! streams open *against itself* re-broadcasts every record it applies
//! to its own followers (primary → f1 → f2 …). Each hop persists before
//! forwarding, so a chain of depth N survives N-1 failures without
//! losing acked churn. When a mid-chain node bootstraps or rewinds, it
//! kicks its own followers ([`ReplicationHub::kick_all`]) so they
//! re-handshake against its new history instead of silently skipping the
//! sequence jump.
//!
//! ## Roles
//!
//! A server's role is dynamic: `PROMOTE` turns a replica into a primary
//! (its puller stops; it starts accepting churn and serving `REPLICATE`),
//! and `DEMOTE <addr>` turns a primary into a follower of `addr` (it
//! refuses churn with `-ERR read-only replica` and starts pulling). The
//! generation counter lets an in-flight puller thread notice it is stale
//! and exit. `ROLE` reports the current role, sequence, and lag — the
//! cluster router's health sweep uses it as its liveness probe.

use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;

use crate::persist::failpoint::{self, FailAction};
use crate::stats::ServerStats;

/// Outbound face of one follower connection, abstracting over the two
/// broker I/O models: a thread-pair connection queues onto a bounded
/// crossbeam channel drained by its writer thread, an event-loop
/// connection queues onto its `LoopHandle` outbound queue. Registration
/// and broadcast never touch the socket directly — only this trait.
pub trait FollowerConn: Send {
    /// Bounded enqueue of one frame line; `false` means the queue is
    /// full or the connection is gone (the follower is cut loose).
    fn try_send(&self, line: String) -> bool;
    /// Force-close the follower's connection (it reconnects and catches
    /// up from its acked sequence).
    fn kick(&self);
}

/// [`FollowerConn`] for the threaded broker: the connection's bounded
/// outbound channel plus a stream clone for the force-close.
pub struct ThreadedFollower {
    pub out: Sender<String>,
    pub stream: TcpStream,
}

impl FollowerConn for ThreadedFollower {
    fn try_send(&self, line: String) -> bool {
        self.out.try_send(line).is_ok()
    }

    fn kick(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// What this server currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    Primary,
    /// Following (pulling churn from) the primary at this address.
    Replica {
        primary: String,
    },
}

/// Dynamic role state shared by the broker's threads. The generation
/// bumps on every role change so a puller spawned for an old role can
/// detect staleness and exit without any channel plumbing.
pub struct RoleState {
    role: RwLock<Role>,
    generation: Mutex<u64>,
}

impl RoleState {
    pub fn new(role: Role) -> Self {
        Self {
            role: RwLock::new(role),
            generation: Mutex::new(0),
        }
    }

    pub fn role(&self) -> Role {
        self.role.read().clone()
    }

    pub fn is_replica(&self) -> bool {
        matches!(&*self.role.read(), Role::Replica { .. })
    }

    /// The address this server follows, when it is a replica.
    pub fn primary_addr(&self) -> Option<String> {
        match &*self.role.read() {
            Role::Primary => None,
            Role::Replica { primary } => Some(primary.clone()),
        }
    }

    pub fn generation(&self) -> u64 {
        *self.generation.lock()
    }

    /// Replica → primary. Returns `true` when the role actually changed
    /// (idempotent on a primary).
    pub fn promote(&self) -> bool {
        let mut generation = self.generation.lock();
        let mut role = self.role.write();
        if *role == Role::Primary {
            return false;
        }
        *role = Role::Primary;
        *generation += 1;
        true
    }

    /// → follower of `primary`. Returns the new generation, which the
    /// freshly spawned puller thread checks against [`Self::generation`]
    /// to detect later role changes.
    pub fn demote(&self, primary: String) -> u64 {
        let mut generation = self.generation.lock();
        let mut role = self.role.write();
        *role = Role::Replica { primary };
        *generation += 1;
        *generation
    }
}

/// One live follower connection on a primary: frames are queued onto the
/// connection's outbound queue (writer thread or event-loop flush).
struct Follower {
    /// Follower id — the broker connection id serving the stream.
    id: u64,
    conn: Box<dyn FollowerConn>,
    /// Highest sequence the follower has `REPLACK`ed.
    acked: u64,
}

/// Registry of live `REPLICATE` streams on a primary, and the broadcast
/// fan-out for freshly appended churn records. Registration and broadcast
/// both happen under the persister's inner lock, so followers observe
/// records in exactly append order with no gaps.
#[derive(Default)]
pub struct ReplicationHub {
    followers: Mutex<Vec<Follower>>,
}

impl ReplicationHub {
    /// Registers a follower stream. `acked` starts at the handshake's
    /// `from_seq` (pessimistic — `REPLACK`s refine it).
    pub fn register(&self, id: u64, conn: Box<dyn FollowerConn>, acked: u64) {
        self.followers.lock().push(Follower { id, conn, acked });
    }

    /// Drops a follower (its connection closed). Idempotent.
    pub fn remove(&self, id: u64) {
        self.followers.lock().retain(|f| f.id != id);
    }

    pub fn follower_count(&self) -> usize {
        self.followers.lock().len()
    }

    /// Whether broadcast would do any work (checked before re-rendering
    /// frames on the churn path).
    pub fn has_followers(&self) -> bool {
        !self.followers.lock().is_empty()
    }

    /// Records a follower's `REPLACK <seq>` and returns the new maximum
    /// lag (`current_seq` minus the slowest follower's acked sequence).
    pub fn ack(&self, id: u64, seq: u64, current_seq: u64) -> u64 {
        let mut followers = self.followers.lock();
        if let Some(f) = followers.iter_mut().find(|f| f.id == id) {
            f.acked = f.acked.max(seq);
        }
        Self::max_lag_locked(&followers, current_seq)
    }

    /// Maximum lag across live followers (0 with none).
    pub fn max_lag(&self, current_seq: u64) -> u64 {
        Self::max_lag_locked(&self.followers.lock(), current_seq)
    }

    /// Minimum acked sequence across live followers, or `current_seq`
    /// with none connected. `ROLE` reports this so the router's
    /// promotion floor can track what the chain has durably confirmed.
    pub fn min_acked(&self, current_seq: u64) -> u64 {
        self.followers
            .lock()
            .iter()
            .map(|f| f.acked)
            .min()
            .unwrap_or(current_seq)
    }

    /// Force-closes every follower stream. Called after a wholesale
    /// bootstrap or covered-suffix rewind rewrites this node's history:
    /// downstream followers must re-handshake (and themselves bootstrap,
    /// rewind, or tail) rather than silently skip the sequence jump.
    pub fn kick_all(&self, stats: &ServerStats) {
        let mut followers = self.followers.lock();
        for f in followers.drain(..) {
            f.conn.kick();
        }
        stats.repl_followers.store(0, Ordering::Relaxed);
        stats.repl_lag_records.store(0, Ordering::Relaxed);
    }

    fn max_lag_locked(followers: &[Follower], current_seq: u64) -> u64 {
        followers
            .iter()
            .map(|f| current_seq.saturating_sub(f.acked))
            .max()
            .unwrap_or(0)
    }

    /// Fans one freshly appended frame out to every follower. Called with
    /// the persister's inner lock held (appends are serialized), so the
    /// per-follower queues see records in append order.
    ///
    /// The `repl.stream.send` failpoint injects stream faults here:
    /// `Error` drops every follower connection mid-stream (they reconnect
    /// and catch up from their acked sequence), `TornWrite(n)` ships only
    /// the first `n` bytes of the frame — a torn frame the follower's CRC
    /// check rejects — then drops the connection, and `Stall(ms)` delays
    /// the send (visible as replication lag).
    pub fn broadcast(&self, frame: &str, seq: u64, stats: &ServerStats) {
        let mut followers = self.followers.lock();
        if followers.is_empty() {
            return;
        }
        let mut torn: Option<usize> = None;
        match failpoint::fire("repl.stream.send") {
            Some(FailAction::Error) => {
                for f in followers.drain(..) {
                    f.conn.kick();
                }
                stats.repl_followers.store(0, Ordering::Relaxed);
                return;
            }
            Some(FailAction::TornWrite(n)) => torn = Some(n.min(frame.len())),
            Some(FailAction::Stall(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            None => {}
        }
        if let Some(n) = torn {
            // Ship the torn prefix as its own line, then cut the streams:
            // followers see a CRC-bad frame (skip + count) and reconnect.
            for f in followers.drain(..) {
                let _ = f.conn.try_send(frame[..n].to_string());
                f.conn.kick();
            }
            stats.repl_followers.store(0, Ordering::Relaxed);
            return;
        }
        followers.retain(|f| {
            if f.conn.try_send(frame.to_string()) {
                ServerStats::add(&stats.repl_records_sent, 1);
                ServerStats::add(&stats.repl_bytes, frame.len() as u64 + 1);
                true
            } else {
                // A follower too slow to drain its queue is cut loose
                // rather than blocking churn; it reconnects and catches up
                // from its acked sequence.
                f.conn.kick();
                false
            }
        });
        stats
            .repl_followers
            .store(followers.len() as u64, Ordering::Relaxed);
        stats
            .repl_lag_records
            .store(Self::max_lag_locked(&followers, seq), Ordering::Relaxed);
    }
}

/// Queues one pre-rendered multi-line chunk (handshake header + backlog)
/// onto a follower connection's outbound queue as a single item, so
/// concurrently broadcast frames cannot interleave inside it.
pub fn send_chunk(conn: &dyn FollowerConn, chunk: String) -> Result<(), String> {
    if conn.try_send(chunk) {
        Ok(())
    } else {
        Err("replication backlog exceeds connection queue".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use std::net::TcpListener;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn role_state_transitions_bump_generation() {
        let state = RoleState::new(Role::Primary);
        assert!(!state.is_replica());
        assert!(!state.promote()); // idempotent on a primary
        assert_eq!(state.generation(), 0);

        let g1 = state.demote("127.0.0.1:9".into());
        assert_eq!(g1, 1);
        assert!(state.is_replica());
        assert_eq!(state.primary_addr().as_deref(), Some("127.0.0.1:9"));

        assert!(state.promote());
        assert_eq!(state.generation(), 2);
        assert!(state.primary_addr().is_none());
    }

    #[test]
    fn broadcast_orders_and_tracks_lag() {
        let hub = ReplicationHub::default();
        let stats = ServerStats::default();
        let (tx, rx) = bounded::<String>(16);
        let (stream, _peer) = loopback_pair();
        hub.register(7, Box::new(ThreadedFollower { out: tx, stream }), 0);
        assert_eq!(hub.follower_count(), 1);

        hub.broadcast("aaaa 1 U 5", 1, &stats);
        hub.broadcast("bbbb 2 U 6", 2, &stats);
        assert_eq!(rx.try_recv().unwrap(), "aaaa 1 U 5");
        assert_eq!(rx.try_recv().unwrap(), "bbbb 2 U 6");
        assert_eq!(hub.max_lag(2), 2);
        assert_eq!(hub.ack(7, 2, 2), 0);
        assert_eq!(ServerStats::get(&stats.repl_records_sent), 2);

        hub.remove(7);
        assert_eq!(hub.follower_count(), 0);
        assert_eq!(hub.max_lag(9), 0);
    }

    #[test]
    fn min_acked_tracks_slowest_follower_and_kick_all_clears() {
        let hub = ReplicationHub::default();
        let stats = ServerStats::default();
        assert_eq!(hub.min_acked(42), 42); // no followers -> own seq

        let (tx1, _rx1) = bounded::<String>(16);
        let (s1, _p1) = loopback_pair();
        hub.register(
            1,
            Box::new(ThreadedFollower {
                out: tx1,
                stream: s1,
            }),
            0,
        );
        let (tx2, _rx2) = bounded::<String>(16);
        let (s2, _p2) = loopback_pair();
        hub.register(
            2,
            Box::new(ThreadedFollower {
                out: tx2,
                stream: s2,
            }),
            0,
        );

        hub.ack(1, 10, 12);
        hub.ack(2, 7, 12);
        assert_eq!(hub.min_acked(12), 7);

        hub.kick_all(&stats);
        assert_eq!(hub.follower_count(), 0);
        assert_eq!(hub.min_acked(12), 12);
        assert_eq!(ServerStats::get(&stats.repl_followers), 0);
    }

    #[test]
    fn slow_follower_is_cut_loose_not_blocking() {
        let hub = ReplicationHub::default();
        let stats = ServerStats::default();
        let (tx, _rx) = bounded::<String>(1);
        let (stream, _peer) = loopback_pair();
        hub.register(1, Box::new(ThreadedFollower { out: tx, stream }), 0);
        hub.broadcast("aaaa 1 U 1", 1, &stats);
        hub.broadcast("bbbb 2 U 2", 2, &stats); // queue full -> dropped
        assert_eq!(hub.follower_count(), 0);
    }

    #[test]
    fn torn_frame_failpoint_ships_prefix_then_disconnects() {
        let hub = ReplicationHub::default();
        let stats = ServerStats::default();
        let (tx, rx) = bounded::<String>(4);
        let (stream, _peer) = loopback_pair();
        hub.register(1, Box::new(ThreadedFollower { out: tx, stream }), 0);
        failpoint::arm("repl.stream.send", FailAction::TornWrite(4), Some(1));
        hub.broadcast("deadbeef 1 U 1", 1, &stats);
        assert_eq!(rx.try_recv().unwrap(), "dead");
        assert_eq!(hub.follower_count(), 0);
        failpoint::reset();
    }
}
