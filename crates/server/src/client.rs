//! Minimal blocking client for the broker's text protocol — used by the
//! `apcm client` subcommand and integration tests.

use apcm_bexpr::{Event, Schema, SubId, Subscription};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol;

pub struct BrokerClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl BrokerClient {
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Caps how long any single read waits; `None` blocks indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw protocol line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one line (without the trailing newline). `Ok(None)` on EOF.
    pub fn read_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    fn expect_ok(&mut self, context: &str) -> std::io::Result<String> {
        // Skip asynchronous RESULT/EVENT lines; the next command reply
        // (+/-) on this connection belongs to the command just sent.
        loop {
            let line = self.read_line()?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, context.to_string())
            })?;
            if line.starts_with("RESULT ") || line.starts_with("EVENT ") {
                continue;
            }
            if let Some(rest) = line.strip_prefix('+') {
                return Ok(rest.to_string());
            }
            return Err(std::io::Error::other(format!("{context}: {line}")));
        }
    }

    /// `SUB id expr`, waiting for the acknowledgment.
    pub fn subscribe(&mut self, sub: &Subscription, schema: &Schema) -> std::io::Result<()> {
        self.send_line(&format!("SUB {} {}", sub.id().0, sub.display(schema)))?;
        self.expect_ok("SUB").map(|_| ())
    }

    /// `UNSUB id`, waiting for the acknowledgment.
    pub fn unsubscribe(&mut self, id: SubId) -> std::io::Result<()> {
        self.send_line(&format!("UNSUB {}", id.0))?;
        self.expect_ok("UNSUB").map(|_| ())
    }

    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send_line("PING")?;
        self.expect_ok("PING").map(|_| ())
    }

    /// Publishes `events` as one `BATCH` and collects the `RESULT` row for
    /// each, keyed by this connection's event sequence number.
    pub fn publish_batch(
        &mut self,
        events: &[Event],
        schema: &Schema,
    ) -> std::io::Result<BTreeMap<u64, Vec<SubId>>> {
        self.send_line(&format!("BATCH {}", events.len()))?;
        for ev in events {
            self.send_line(&ev.display(schema).to_string())?;
        }
        let mut results = BTreeMap::new();
        let mut acked = false;
        while !acked || results.len() < events.len() {
            let line = self
                .read_line()?
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "BATCH"))?;
            if let Some(rest) = line.strip_prefix("RESULT ") {
                let (seq, ids) = protocol::parse_result(&format!("RESULT {rest}"))
                    .map_err(std::io::Error::other)?;
                results.insert(seq, ids);
            } else if line.starts_with("+OK batch ") {
                acked = true;
            } else if line.starts_with("-ERR") {
                return Err(std::io::Error::other(line));
            }
            // EVENT notifications for our own subscriptions are ignored.
        }
        Ok(results)
    }

    /// `STATS`: returns the key/value body.
    pub fn stats(&mut self) -> std::io::Result<BTreeMap<String, u64>> {
        self.send_line("STATS")?;
        let header = self.expect_ok("STATS")?;
        if header.trim() != "OK stats" && !header.starts_with("OK stats") {
            return Err(std::io::Error::other(format!("bad STATS header: {header}")));
        }
        let mut out = BTreeMap::new();
        loop {
            let line = self.read_line()?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "STATS body")
            })?;
            if line == "." {
                return Ok(out);
            }
            if line.starts_with("RESULT ") || line.starts_with("EVENT ") {
                continue;
            }
            if let Some((key, value)) = line.rsplit_once(' ') {
                if let Ok(v) = value.parse::<u64>() {
                    out.insert(key.to_string(), v);
                }
            }
        }
    }

    /// `QUIT` and wait for the goodbye (best-effort).
    pub fn quit(&mut self) -> std::io::Result<()> {
        self.send_line("QUIT")?;
        let _ = self.expect_ok("QUIT");
        Ok(())
    }
}
