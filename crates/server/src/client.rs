//! Minimal blocking client for the broker's text protocol — used by the
//! `apcm client` subcommand and integration tests.

use apcm_bexpr::{Event, Schema, SubId, Subscription};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{self, RoleReport};

/// Connection policy for [`BrokerClient::connect_with`]: bounded dial and
/// read waits plus a jittered exponential-backoff retry loop, so a client
/// racing a (re)starting broker converges instead of failing or hammering.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// Cap on one TCP dial; `None` uses the OS default.
    pub connect_timeout: Option<Duration>,
    /// Read timeout installed on the connected socket; `None` blocks.
    pub read_timeout: Option<Duration>,
    /// Total connection attempts (>= 1).
    pub attempts: u32,
    /// Delay before the second attempt; doubles per failure.
    pub backoff: Duration,
    /// Ceiling for the exponential backoff.
    pub max_backoff: Duration,
    /// Seed for the +/-50% jitter applied to each delay; two clients
    /// restarted together should pass different seeds.
    pub jitter_seed: u64,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: None,
            attempts: 1,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x9E37_79B9,
        }
    }
}

impl ConnectOptions {
    /// Builder shorthand: cap every read at `ms` milliseconds. A read that
    /// times out surfaces as a retryable [`std::io::Error`]
    /// ([`is_timeout_error`]); [`BrokerClient`] keeps any partial line the
    /// timed-out read consumed and re-joins it on the next read, so a
    /// timeout never tears a protocol line.
    pub fn read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout = Some(Duration::from_millis(ms));
        self
    }

    /// Jittered delay before attempt `attempt` (1-based count of failures
    /// so far): `backoff * 2^(attempt-1)`, clamped, then scaled by a
    /// deterministic factor in `[0.5, 1.5)` from an xorshift of the seed.
    ///
    /// Public so long-lived reconnect loops (the cluster router's
    /// membership sweep) can reuse the same jittered schedule across
    /// sweeps instead of burning all attempts in one call.
    pub fn delay_before_retry(&self, attempt: u32) -> Duration {
        let base = self
            .backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_backoff);
        let mut x = self.jitter_seed ^ (attempt as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let factor = 0.5 + (x % 1000) as f64 / 1000.0;
        base.mul_f64(factor)
    }
}

/// Dials `addr` under `options` and returns the configured raw stream —
/// the retry/backoff loop shared by [`BrokerClient::connect_with`] and
/// raw-stream users like the `apcm client` pump.
pub fn connect_stream(addr: &str, options: &ConnectOptions) -> std::io::Result<TcpStream> {
    let attempts = options.attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(options.delay_before_retry(attempt));
        }
        match BrokerClient::dial(addr, options.connect_timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(options.read_timeout)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
}

/// True when `err` is a read-timeout expiring (`SO_RCVTIMEO` surfaces as
/// `WouldBlock` on unix, `TimedOut` on windows) — a retryable wait, not a
/// dead connection.
pub fn is_timeout_error(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

pub struct BrokerClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Partial line carried across a timed-out read: `BufRead::read_line`
    /// keeps any valid-UTF-8 bytes it consumed before the error in the
    /// target string, so accumulating into this buffer (instead of a
    /// per-call local) means a timeout mid-line loses nothing — the next
    /// read appends the remainder and yields the whole line.
    pending: String,
    /// Extra attempts for churn commands answered with a retryable
    /// refusal (`-ERR backend <i> unavailable` from a router mid-failover,
    /// `-ERR read-only replica` from a just-demoted node). 0 disables.
    churn_retries: u32,
    /// Flat delay between those retries.
    churn_retry_backoff: Duration,
}

impl BrokerClient {
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Self::connect_with(addr, &ConnectOptions::default())
    }

    /// Connects under `options`: each attempt dials with the connect
    /// timeout, failures back off exponentially with jitter, and the last
    /// error is returned once attempts are exhausted.
    pub fn connect_with(addr: &str, options: &ConnectOptions) -> std::io::Result<Self> {
        let stream = connect_stream(addr, options)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            pending: String::new(),
            churn_retries: 4,
            churn_retry_backoff: Duration::from_millis(75),
        })
    }

    /// Tunes the retry policy for retryable churn refusals (see
    /// [`protocol::is_retryable_churn_refusal`]); `attempts = 0` makes
    /// every refusal a hard error.
    pub fn set_churn_retry(&mut self, attempts: u32, backoff: Duration) {
        self.churn_retries = attempts;
        self.churn_retry_backoff = backoff;
    }

    fn dial(addr: &str, timeout: Option<Duration>) -> std::io::Result<TcpStream> {
        match timeout {
            None => TcpStream::connect(addr),
            Some(timeout) => {
                let mut last_err = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(stream) => return Ok(stream),
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(last_err.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("`{addr}` resolved to no addresses"),
                    )
                }))
            }
        }
    }

    /// Caps how long any single read waits; `None` blocks indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw protocol line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one line (without the trailing newline). `Ok(None)` on EOF.
    ///
    /// With a read timeout installed (see
    /// [`ConnectOptions::read_timeout_ms`]) an expired wait returns the
    /// timeout error but keeps whatever partial line already arrived
    /// buffered; calling again resumes the same line.
    pub fn read_line(&mut self) -> std::io::Result<Option<String>> {
        match self.reader.read_line(&mut self.pending) {
            Ok(0) if self.pending.is_empty() => return Ok(None),
            // Ok(0) with a non-empty buffer is EOF tearing the final
            // line; surface what arrived, as the one-shot read did.
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        let mut line = std::mem::take(&mut self.pending);
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    fn expect_ok(&mut self, context: &str) -> std::io::Result<String> {
        // Skip asynchronous RESULT/EVENT lines; the next command reply
        // (+/-) on this connection belongs to the command just sent.
        loop {
            let line = self.read_line()?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, context.to_string())
            })?;
            if line.starts_with("RESULT ") || line.starts_with("EVENT ") {
                continue;
            }
            if let Some(rest) = line.strip_prefix('+') {
                return Ok(rest.to_string());
            }
            return Err(std::io::Error::other(format!("{context}: {line}")));
        }
    }

    /// Reads the next command reply (skipping async RESULT/EVENT lines)
    /// without judging it — the caller sees the raw `+`/`-` line.
    fn next_reply(&mut self, context: &str) -> std::io::Result<String> {
        loop {
            let line = self.read_line()?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, context.to_string())
            })?;
            if line.starts_with("RESULT ") || line.starts_with("EVENT ") {
                continue;
            }
            return Ok(line);
        }
    }

    /// Sends a churn command, retrying (with a flat backoff) while the
    /// answer is a *retryable* refusal: a router that has lost a backend
    /// mid-failover, or a node answering `-ERR read-only replica` in the
    /// instant between its demotion and the router re-aiming at the new
    /// primary. Returns the raw reply line of the final attempt.
    /// A read timeout mid-wait also retries, but by *re-reading* — the
    /// command is already in flight, so resending it would double-apply
    /// (a second `SUB` of an id this client just registered answers
    /// `-ERR duplicate`).
    fn churn_command(&mut self, command: &str, context: &str) -> std::io::Result<String> {
        let mut attempt = 0u32;
        self.send_line(command)?;
        loop {
            let reply = match self.next_reply(context) {
                Ok(reply) => reply,
                Err(e) if is_timeout_error(&e) && attempt < self.churn_retries => {
                    attempt += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if protocol::is_retryable_churn_refusal(&reply) && attempt < self.churn_retries {
                attempt += 1;
                std::thread::sleep(self.churn_retry_backoff);
                self.send_line(command)?;
                continue;
            }
            return Ok(reply);
        }
    }

    /// `SUB id expr`, waiting for the acknowledgment.
    pub fn subscribe(&mut self, sub: &Subscription, schema: &Schema) -> std::io::Result<()> {
        let command = format!("SUB {} {}", sub.id().0, sub.display(schema));
        let reply = self.churn_command(&command, "SUB")?;
        if reply.starts_with('+') {
            Ok(())
        } else {
            Err(std::io::Error::other(format!("SUB: {reply}")))
        }
    }

    /// `UNSUB id`, waiting for the acknowledgment.
    pub fn unsubscribe(&mut self, id: SubId) -> std::io::Result<()> {
        let reply = self.churn_command(&format!("UNSUB {}", id.0), "UNSUB")?;
        if reply.starts_with('+') {
            Ok(())
        } else {
            Err(std::io::Error::other(format!("UNSUB: {reply}")))
        }
    }

    /// `CLAIM id`: take over ownership (notifications) of a live id.
    pub fn claim(&mut self, id: SubId) -> std::io::Result<()> {
        self.send_line(&format!("CLAIM {}", id.0))?;
        self.expect_ok("CLAIM").map(|_| ())
    }

    /// `SUB` that drives `CLAIM` automatically: a structured
    /// `-ERR duplicate <id>` answer (live id, different expression) is
    /// followed up with `CLAIM <id>`. Returns `true` when ownership was
    /// reclaimed (either the server's identical-expression takeover or the
    /// explicit claim), `false` for a plain new subscription.
    pub fn subscribe_or_claim(
        &mut self,
        sub: &Subscription,
        schema: &Schema,
    ) -> std::io::Result<bool> {
        let command = format!("SUB {} {}", sub.id().0, sub.display(schema));
        let line = self.churn_command(&command, "SUB")?;
        if let Some(rest) = line.strip_prefix('+') {
            return Ok(rest.starts_with("OK claimed"));
        }
        if let Some(id) = protocol::parse_duplicate_error(&line) {
            self.claim(id)?;
            return Ok(true);
        }
        Err(std::io::Error::other(format!("SUB: {line}")))
    }

    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send_line("PING")?;
        self.expect_ok("PING").map(|_| ())
    }

    /// Publishes `events` as one `BATCH` and collects the `RESULT` row for
    /// each, keyed by this connection's event sequence number.
    pub fn publish_batch(
        &mut self,
        events: &[Event],
        schema: &Schema,
    ) -> std::io::Result<BTreeMap<u64, Vec<SubId>>> {
        Ok(self
            .publish_batch_flagged(events, schema)?
            .into_iter()
            .map(|(seq, (ids, _partial))| (seq, ids))
            .collect())
    }

    /// Like [`Self::publish_batch`], but each row carries the router's
    /// partial-result flag (`true` when one or more cluster backends were
    /// unreachable for that window; always `false` from a standalone
    /// server).
    pub fn publish_batch_flagged(
        &mut self,
        events: &[Event],
        schema: &Schema,
    ) -> std::io::Result<BTreeMap<u64, (Vec<SubId>, bool)>> {
        self.send_line(&format!("BATCH {}", events.len()))?;
        for ev in events {
            self.send_line(&ev.display(schema).to_string())?;
        }
        let mut results = BTreeMap::new();
        let mut acked = false;
        while !acked || results.len() < events.len() {
            let line = self
                .read_line()?
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "BATCH"))?;
            if let Some(rest) = line.strip_prefix("RESULT ") {
                let (seq, ids, partial) = protocol::parse_result_ext(&format!("RESULT {rest}"))
                    .map_err(std::io::Error::other)?;
                results.insert(seq, (ids, partial));
            } else if line.starts_with("+OK batch ") {
                acked = true;
            } else if line.starts_with("-ERR") {
                return Err(std::io::Error::other(line));
            }
            // EVENT notifications for our own subscriptions are ignored.
        }
        Ok(results)
    }

    /// `STATS`: returns the key/value body.
    pub fn stats(&mut self) -> std::io::Result<BTreeMap<String, u64>> {
        self.send_line("STATS")?;
        let header = self.expect_ok("STATS")?;
        if header.trim() != "OK stats" && !header.starts_with("OK stats") {
            return Err(std::io::Error::other(format!("bad STATS header: {header}")));
        }
        let mut out = BTreeMap::new();
        loop {
            let line = self.read_line()?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "STATS body")
            })?;
            if line == "." {
                return Ok(out);
            }
            if line.starts_with("RESULT ") || line.starts_with("EVENT ") {
                continue;
            }
            if let Some((key, value)) = line.rsplit_once(' ') {
                if let Ok(v) = value.parse::<u64>() {
                    out.insert(key.to_string(), v);
                }
            }
        }
    }

    /// `SNAPSHOT`: forces a durable snapshot + log rotation on the broker.
    pub fn snapshot(&mut self) -> std::io::Result<String> {
        self.send_line("SNAPSHOT")?;
        self.expect_ok("SNAPSHOT")
    }

    /// `ROLE`: the node's replication role report (primary/replica, seq,
    /// lag, connectivity).
    pub fn role(&mut self) -> std::io::Result<RoleReport> {
        self.send_line("ROLE")?;
        let reply = self.expect_ok("ROLE")?;
        protocol::parse_role_report(&reply).map_err(std::io::Error::other)
    }

    /// `PROMOTE`: make the node a primary (idempotent). Returns its churn
    /// seq at promotion time.
    pub fn promote(&mut self) -> std::io::Result<u64> {
        self.send_line("PROMOTE")?;
        let reply = self.expect_ok("PROMOTE")?;
        // "+OK promoted seq <n>"
        reply
            .rsplit(' ')
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("PROMOTE: {reply}")))
    }

    /// `DEMOTE <addr>`: make the node a replica following `addr`.
    pub fn demote(&mut self, addr: &str) -> std::io::Result<()> {
        self.send_line(&format!("DEMOTE {addr}"))?;
        self.expect_ok("DEMOTE").map(|_| ())
    }

    /// `TOPOLOGY`: the cluster membership report. Returns one line per
    /// backend (`backend <i> <addr> <up|down> ...`); empty from a
    /// standalone server (which answers `+OK topology standalone`).
    pub fn topology(&mut self) -> std::io::Result<Vec<String>> {
        self.send_line("TOPOLOGY")?;
        let header = self.expect_ok("TOPOLOGY")?;
        if header.contains("standalone") {
            return Ok(Vec::new());
        }
        let mut lines = Vec::new();
        loop {
            let line = self.read_line()?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "TOPOLOGY body")
            })?;
            if line == "." {
                return Ok(lines);
            }
            if line.starts_with("RESULT ") || line.starts_with("EVENT ") {
                continue;
            }
            lines.push(line);
        }
    }

    /// `RESHARD ADD <primary> [replica]` (cluster router): scale out onto
    /// a freshly started backend pair. Returns the router's ack line.
    pub fn reshard_add(&mut self, primary: &str, replica: Option<&str>) -> std::io::Result<String> {
        self.reshard_add_chain(primary, replica.into_iter().collect())
    }

    /// `RESHARD ADD <primary> [f1 f2 ...]` (cluster router): scale out
    /// onto a freshly started backend whose replication chain is the
    /// given follower addresses, in hop order. Returns the router's ack.
    pub fn reshard_add_chain(
        &mut self,
        primary: &str,
        followers: Vec<&str>,
    ) -> std::io::Result<String> {
        let mut line = format!("RESHARD ADD {primary}");
        for follower in followers {
            line.push(' ');
            line.push_str(follower);
        }
        self.send_line(&line)?;
        self.expect_ok("RESHARD ADD")
    }

    /// `RESHARD REMOVE <partition>` (cluster router): drain a partition's
    /// ring share onto the survivors, then drop it from membership.
    pub fn reshard_remove(&mut self, partition: u32) -> std::io::Result<String> {
        self.send_line(&format!("RESHARD REMOVE {partition}"))?;
        self.expect_ok("RESHARD REMOVE")
    }

    /// `RESHARD STATUS`: migration progress (router) or pull progress
    /// (backend). `+OK reshard idle` when nothing is in flight.
    pub fn reshard_status(&mut self) -> std::io::Result<String> {
        self.send_line("RESHARD STATUS")?;
        self.expect_ok("RESHARD STATUS")
    }

    /// `QUIT` and wait for the goodbye (best-effort).
    pub fn quit(&mut self) -> std::io::Result<()> {
        self.send_line("QUIT")?;
        let _ = self.expect_ok("QUIT");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_is_clamped() {
        let options = ConnectOptions {
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            ..ConnectOptions::default()
        };
        // Jitter is in [0.5, 1.5), so each delay sits inside its band.
        for attempt in 1..=10u32 {
            let base = Duration::from_millis(10)
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(Duration::from_millis(80));
            let d = options.delay_before_retry(attempt);
            assert!(
                d >= base.mul_f64(0.5) && d < base.mul_f64(1.5),
                "{attempt}: {d:?}"
            );
        }
    }

    #[test]
    fn jitter_depends_on_seed() {
        let a = ConnectOptions {
            jitter_seed: 1,
            ..ConnectOptions::default()
        };
        let b = ConnectOptions {
            jitter_seed: 2,
            ..ConnectOptions::default()
        };
        assert_ne!(a.delay_before_retry(3), b.delay_before_retry(3));
    }

    #[test]
    fn read_timeout_preserves_partial_line() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut stream = stream;
            stream.write_all(b"+OK par").unwrap();
            stream.flush().unwrap();
            // Long enough for at least one client read to time out first.
            std::thread::sleep(Duration::from_millis(200));
            stream.write_all(b"tial done\n+OK next\n").unwrap();
            stream.flush().unwrap();
        });
        let options = ConnectOptions::default().read_timeout_ms(40);
        let mut client = BrokerClient::connect_with(&addr, &options).unwrap();
        let mut timeouts = 0;
        let line = loop {
            match client.read_line() {
                Ok(line) => break line,
                Err(e) if is_timeout_error(&e) => timeouts += 1,
                Err(e) => panic!("unexpected read error: {e}"),
            }
        };
        assert!(timeouts >= 1, "read should have timed out mid-line");
        assert_eq!(line.as_deref(), Some("+OK partial done"));
        // The timeout consumed nothing extra: the following line is whole.
        assert_eq!(client.read_line().unwrap().as_deref(), Some("+OK next"));
        server.join().unwrap();
    }

    #[test]
    fn connect_with_retries_exhausts_attempts() {
        // Port 1 on localhost refuses instantly; three fast attempts fail.
        let options = ConnectOptions {
            connect_timeout: Some(Duration::from_millis(200)),
            attempts: 3,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..ConnectOptions::default()
        };
        assert!(BrokerClient::connect_with("127.0.0.1:1", &options).is_err());
    }
}
