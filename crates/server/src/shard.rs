//! Hash-partitioned subscription space: N shards, each owning a dynamic
//! engine, with window matching fanned out across shards and merged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use apcm_bexpr::{BexprError, Event, Schema, SubId, Subscription};
use apcm_core::MaintenanceReport;
use apcm_encoding::{FixedBitSet, SummarySpace};
use parking_lot::Mutex;

use crate::config::ServerConfig;
use crate::engine::{build_engine, ShardEngine};

/// Stable Fibonacci-hash partition of a subscription id over `n` slots.
///
/// This is the single routing contract shared by the in-process
/// [`ShardedEngine`] and the multi-node cluster router (`apcm-cluster`):
/// both tiers MUST send a given id to the same partition index, otherwise
/// a router would churn one backend while the id lives on another. Any
/// change here is a wire-visible resharding of every deployed cluster —
/// treat it as a protocol break (see the pin test below and in
/// `apcm-cluster`).
pub fn route_partition(id: SubId, n: usize) -> usize {
    debug_assert!(n > 0, "cannot route over zero partitions");
    let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (h % n as u64) as usize
}

/// Multiset of summary bits contributed by the live subscriptions:
/// per-bit witness counts, the derived bitset (count > 0), and the stored
/// cover of every live id so `unsubscribe` can decrement without re-deriving
/// predicates. The mutex is held only around the count/bit updates, not
/// across the engine mutation — churn on distinct shards stays parallel.
/// Updates happen after the engine call and before the churn call returns,
/// so by the time a `SUB` is acknowledged its bits are in the summary; the
/// only divergence from exactness is a benign superset (a cover surviving a
/// lost race or a failed bulk restore), which costs fan-out, never a match.
struct SummaryState {
    epoch: u64,
    counts: Vec<u32>,
    bits: FixedBitSet,
    covers: HashMap<SubId, Box<[u32]>>,
}

impl SummaryState {
    /// Registers a pre-derived witness cover for `id`; returns true if the
    /// set of populated bits changed (an epoch-visible change).
    fn add(&mut self, id: SubId, cover: Box<[u32]>) -> bool {
        let mut changed = false;
        for &b in cover.iter() {
            let c = &mut self.counts[b as usize];
            if *c == 0 {
                self.bits.insert(b as usize);
                changed = true;
            }
            *c += 1;
        }
        if let Some(old) = self.covers.insert(id, cover) {
            changed |= self.drop_cover(&old);
        }
        changed
    }

    /// Removes `id`'s stored cover; returns true if populated bits changed.
    fn remove(&mut self, id: SubId) -> bool {
        match self.covers.remove(&id) {
            Some(cover) => self.drop_cover(&cover),
            None => false,
        }
    }

    fn drop_cover(&mut self, cover: &[u32]) -> bool {
        let mut changed = false;
        for &b in cover {
            let c = &mut self.counts[b as usize];
            *c -= 1;
            if *c == 0 {
                self.bits.remove(b as usize);
                changed = true;
            }
        }
        changed
    }
}

/// A fleet of per-shard engines behind a single dynamic-matching facade.
///
/// Subscriptions are routed to a shard by a Fibonacci hash of their id, so
/// routing is stable, stateless, and balanced for both dense and sparse id
/// spaces. Every shard sees every event window; a subscription lives in
/// exactly one shard, so merged rows need no deduplication.
///
/// The engine also maintains the backend's coarse predicate-space summary
/// (see [`SummarySpace`]): every churn path — client `SUB`/`UNSUB`, WAL
/// recovery, and replication bootstrap — flows through [`Self::subscribe`],
/// [`Self::unsubscribe`], or [`Self::bulk_restore`], so the summary is kept
/// exact incrementally and its epoch only advances when the populated bit
/// set actually changes.
pub struct ShardedEngine {
    shards: Vec<Box<dyn ShardEngine>>,
    space: SummarySpace,
    summary: Mutex<SummaryState>,
    summary_rebuilds: AtomicU64,
}

impl ShardedEngine {
    pub fn new(schema: &Schema, config: &ServerConfig) -> Result<Self, BexprError> {
        let shards = (0..config.shards)
            .map(|_| build_engine(schema, config))
            .collect::<Result<Vec<_>, _>>()?;
        let space = SummarySpace::new(schema);
        let nbits = space.nbits();
        Ok(Self {
            shards,
            space,
            summary: Mutex::new(SummaryState {
                epoch: 1,
                counts: vec![0; nbits],
                bits: FixedBitSet::new(nbits),
                covers: HashMap::new(),
            }),
            summary_rebuilds: AtomicU64::new(0),
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn engine_name(&self) -> &'static str {
        self.shards[0].name()
    }

    /// Stable shard index for a subscription id (see [`route_partition`]).
    pub fn shard_of(&self, id: SubId) -> usize {
        route_partition(id, self.shards.len())
    }

    /// Routes to the owning shard. `Ok(false)` if the id is already live.
    pub fn subscribe(&self, sub: &Subscription) -> Result<bool, BexprError> {
        // Derive the witness cover before taking the summary lock so
        // concurrent churn on other shards only contends on the cheap
        // count updates, not predicate analysis or the engine call.
        let cover = self.space.sub_cover(sub).into_boxed_slice();
        let fresh = self.shards[self.shard_of(sub.id())].subscribe(sub)?;
        if fresh {
            let mut summary = self.summary.lock();
            if summary.add(sub.id(), cover) {
                summary.epoch += 1;
            }
        }
        Ok(fresh)
    }

    /// Routes to the owning shard; `false` if the id was unknown.
    pub fn unsubscribe(&self, id: SubId) -> bool {
        let removed = self.shards[self.shard_of(id)].unsubscribe(id);
        if removed {
            let mut summary = self.summary.lock();
            if summary.remove(id) {
                summary.epoch += 1;
            }
        }
        removed
    }

    /// Loads a recovered subscription set: groups by owning shard, then
    /// bulk-subscribes each group on its own scoped thread (the same
    /// partition-level fan-out as matching), and finishes with one
    /// maintenance pass so overlay-based engines start from a built index.
    /// Returns how many subscriptions were added.
    pub fn bulk_restore(&self, subs: &[Subscription]) -> Result<usize, BexprError> {
        if subs.is_empty() {
            return Ok(0);
        }
        let mut summary = self.summary.lock();
        let mut groups: Vec<Vec<&Subscription>> = vec![Vec::new(); self.shards.len()];
        for sub in subs {
            groups[self.shard_of(sub.id())].push(sub);
        }
        let (added, failed) = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&groups)
                .filter(|(_, group)| !group.is_empty())
                .map(|(shard, group)| {
                    scope.spawn(move || {
                        let owned: Vec<Subscription> = group.iter().map(|&s| s.clone()).collect();
                        shard.bulk_subscribe(&owned)
                    })
                })
                .collect();
            let mut added = 0usize;
            let mut failed = None;
            for handle in handles {
                match handle.join().unwrap() {
                    Ok(n) => added += n,
                    Err(e) => failed = Some(e),
                }
            }
            (added, failed)
        });
        // Fold covers before any error propagates: a failed shard may have
        // applied a prefix of its group, and those subscriptions must be
        // represented in the summary (with the epoch advanced) or a router
        // holding the old epoch would keep reading "unchanged" and prune a
        // backend that holds matching subs. On the error path this over-
        // approximates — covers may name ids the engine never admitted —
        // which only costs fan-out, never a dropped match. On the success
        // path the covers map mirrors the catalog exactly, so "absent from
        // the map" is "fresh in the engine".
        let mut changed = false;
        let mut fresh = false;
        for sub in subs {
            if !summary.covers.contains_key(&sub.id()) {
                fresh = true;
                let cover = self.space.sub_cover(sub).into_boxed_slice();
                changed |= summary.add(sub.id(), cover);
            }
        }
        if changed {
            summary.epoch += 1;
        }
        if fresh {
            self.summary_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        drop(summary);
        if let Some(e) = failed {
            return Err(e);
        }
        self.maintain();
        Ok(added)
    }

    /// Matches a window against every shard and merges per-event rows.
    ///
    /// With more than one populated shard the fan-out uses scoped threads —
    /// one per shard, the paper's parallel fan-out at the partition level.
    pub fn match_window(&self, events: &[Event]) -> Vec<Vec<SubId>> {
        if events.is_empty() {
            return Vec::new();
        }
        let active: Vec<&dyn ShardEngine> = self
            .shards
            .iter()
            .map(|s| s.as_ref())
            .filter(|s| !s.is_empty())
            .collect();
        let per_shard: Vec<Vec<Vec<SubId>>> = match active.len() {
            0 => return vec![Vec::new(); events.len()],
            1 => vec![active[0].match_window(events)],
            _ => std::thread::scope(|scope| {
                let handles: Vec<_> = active
                    .iter()
                    .map(|&shard| scope.spawn(move || shard.match_window(events)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            }),
        };
        let mut merged = vec![Vec::new(); events.len()];
        for rows in per_shard {
            for (slot, mut row) in merged.iter_mut().zip(rows) {
                if slot.is_empty() {
                    *slot = row;
                } else {
                    slot.append(&mut row);
                }
            }
        }
        // Each id lives in one shard, so concatenation has no duplicates;
        // sorting restores the ascending contract after the merge.
        for row in &mut merged {
            row.sort_unstable();
        }
        merged
    }

    /// Runs one maintenance pass on every shard, aggregating the reports.
    pub fn maintain(&self) -> MaintenanceReport {
        let mut total = MaintenanceReport::default();
        for shard in &self.shards {
            let report = shard.maintain();
            total.folded_pending += report.folded_pending;
            total.rebuilt_clusters += report.rebuilt_clusters;
            total.dropped_clusters += report.dropped_clusters;
        }
        total
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Live subscription count per shard (for `STATS`).
    pub fn per_shard_len(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// The schema-derived summary bit-space this backend encodes into.
    pub fn summary_space(&self) -> &SummarySpace {
        &self.space
    }

    /// Current summary epoch. Starts at 1 and advances only when the set of
    /// populated summary bits changes (pure count changes are invisible).
    pub fn summary_epoch(&self) -> u64 {
        self.summary.lock().epoch
    }

    /// Consistent `(epoch, bits)` snapshot of the backend summary.
    pub fn summary_snapshot(&self) -> (u64, FixedBitSet) {
        let state = self.summary.lock();
        (state.epoch, state.bits.clone())
    }

    /// Snapshot for the `SUMMARY <epoch>` verb: `None` when the caller's
    /// cached epoch is already current (nothing to resend).
    pub fn summary_if_newer(&self, than: u64) -> Option<(u64, FixedBitSet)> {
        let state = self.summary.lock();
        (state.epoch != than).then(|| (state.epoch, state.bits.clone()))
    }

    /// Number of populated summary bits (for `STATS`).
    pub fn summary_bits_set(&self) -> usize {
        self.summary.lock().bits.count_ones()
    }

    /// How many bulk restores recomputed summary covers (for `STATS`).
    pub fn summary_rebuilds(&self) -> u64 {
        self.summary_rebuilds.load(Ordering::Relaxed)
    }

    /// Lifetime kernel counters `(probes, prunes, hits)` summed across
    /// shards; `None` when the engine kind does not track them.
    pub fn kernel_counters(&self) -> Option<(u64, u64, u64)> {
        self.shards
            .iter()
            .filter_map(|s| s.kernel_counters())
            .reduce(|a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineChoice;
    use apcm_bexpr::parser;

    fn setup(shards: usize, engine: EngineChoice) -> (Schema, ShardedEngine) {
        let schema = Schema::uniform(4, 32);
        let config = ServerConfig {
            shards,
            engine,
            ..ServerConfig::default()
        };
        let sharded = ShardedEngine::new(&schema, &config).unwrap();
        (schema, sharded)
    }

    /// Pins the routing contract to literal values: a change to
    /// [`route_partition`] breaks this test before it silently resharded
    /// every cluster. The same pins are asserted from `apcm-cluster`.
    #[test]
    fn route_partition_is_pinned() {
        let ids = [0u32, 1, 2, 3, 7, 42, 1000, 123_456_789];
        let expect3 = [0, 0, 2, 0, 2, 1, 2, 2];
        let expect4 = [0, 1, 2, 0, 2, 2, 1, 0];
        let expect8 = [0, 1, 2, 4, 2, 6, 1, 4];
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(route_partition(SubId(id), 3), expect3[i], "id {id} n=3");
            assert_eq!(route_partition(SubId(id), 4), expect4[i], "id {id} n=4");
            assert_eq!(route_partition(SubId(id), 8), expect8[i], "id {id} n=8");
        }
    }

    #[test]
    fn shard_of_equals_route_partition() {
        let (_, engine) = setup(5, EngineChoice::Scan);
        for id in 0..2000 {
            assert_eq!(engine.shard_of(SubId(id)), route_partition(SubId(id), 5));
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let (_, engine) = setup(4, EngineChoice::Scan);
        for id in 0..1000 {
            let s = engine.shard_of(SubId(id));
            assert!(s < 4);
            assert_eq!(s, engine.shard_of(SubId(id)));
        }
    }

    #[test]
    fn routing_spreads_dense_ids() {
        let (_, engine) = setup(4, EngineChoice::Scan);
        let mut counts = [0usize; 4];
        for id in 0..1024 {
            counts[engine.shard_of(SubId(id))] += 1;
        }
        for &c in &counts {
            assert!(c > 128, "unbalanced shard assignment: {counts:?}");
        }
    }

    #[test]
    fn sharded_match_merges_sorted_rows() {
        for kind in [EngineChoice::Scan, EngineChoice::Apcm] {
            let (schema, engine) = setup(3, kind);
            for id in 0..64u32 {
                let text = format!("a0 <= {}", id % 8);
                let sub = parser::parse_subscription_with_id(&schema, SubId(id), &text).unwrap();
                assert!(engine.subscribe(&sub).unwrap());
            }
            assert_eq!(engine.len(), 64);
            assert_eq!(engine.per_shard_len().iter().sum::<usize>(), 64);

            let ev = parser::parse_event(&schema, "a0 = 3, a1 = 0, a2 = 0, a3 = 0").unwrap();
            let rows = engine.match_window(&[ev]);
            // a0 <= k matches a0 = 3 iff k >= 3 -> ids with id % 8 in 3..8.
            let expect: Vec<SubId> = (0..64u32).filter(|id| id % 8 >= 3).map(SubId).collect();
            assert_eq!(rows[0], expect, "engine {}", engine.engine_name());

            assert!(engine.unsubscribe(SubId(3)));
            assert!(!engine.unsubscribe(SubId(3)));
            let rows = engine.match_window(&[parser::parse_event(
                &schema,
                "a0 = 3, a1 = 0, a2 = 0, a3 = 0",
            )
            .unwrap()]);
            assert!(!rows[0].contains(&SubId(3)));
        }
    }

    #[test]
    fn bulk_restore_matches_incremental_subscribe() {
        for kind in [
            EngineChoice::Scan,
            EngineChoice::Apcm,
            EngineChoice::BetreeHybrid,
        ] {
            let (schema, incremental) = setup(3, kind);
            let (_, restored) = setup(3, kind);
            let subs: Vec<Subscription> = (0..50u32)
                .map(|id| {
                    let text = format!("a0 <= {}", id % 8);
                    parser::parse_subscription_with_id(&schema, SubId(id), &text).unwrap()
                })
                .collect();
            for sub in &subs {
                incremental.subscribe(sub).unwrap();
            }
            assert_eq!(restored.bulk_restore(&subs).unwrap(), 50);
            assert_eq!(restored.len(), 50);
            // Duplicate restore is a no-op.
            assert_eq!(restored.bulk_restore(&subs).unwrap(), 0);

            let ev = parser::parse_event(&schema, "a0 = 5, a1 = 0, a2 = 0, a3 = 0").unwrap();
            assert_eq!(
                restored.match_window(std::slice::from_ref(&ev)),
                incremental.match_window(&[ev]),
                "engine {}",
                restored.engine_name()
            );
        }
    }

    #[test]
    fn summary_tracks_churn_exactly() {
        let (schema, engine) = setup(3, EngineChoice::Scan);
        let (epoch0, bits0) = engine.summary_snapshot();
        assert_eq!(epoch0, 1);
        assert!(bits0.is_empty());

        // Two subs with the same witness bucket: one epoch bump on the
        // first, none on the second (bit membership unchanged).
        let s1 = parser::parse_subscription_with_id(&schema, SubId(1), "a0 = 5").unwrap();
        let s2 = parser::parse_subscription_with_id(&schema, SubId(2), "a0 = 5").unwrap();
        assert!(engine.subscribe(&s1).unwrap());
        let (e1, b1) = engine.summary_snapshot();
        assert_eq!(e1, 2);
        assert_eq!(b1.count_ones(), 1);
        assert!(engine.subscribe(&s2).unwrap());
        assert_eq!(engine.summary_epoch(), 2, "same bucket: no epoch bump");

        // Duplicate subscribe is a no-op for the summary too.
        assert!(!engine.subscribe(&s1).unwrap());
        assert_eq!(engine.summary_epoch(), 2);

        // Removing one holder keeps the bit; removing the last clears it.
        assert!(engine.unsubscribe(SubId(1)));
        assert_eq!(engine.summary_epoch(), 2);
        assert_eq!(engine.summary_bits_set(), 1);
        assert!(engine.unsubscribe(SubId(2)));
        let (e2, b2) = engine.summary_snapshot();
        assert_eq!(e2, 3);
        assert!(b2.is_empty());

        // Unknown id: no change.
        assert!(!engine.unsubscribe(SubId(99)));
        assert_eq!(engine.summary_epoch(), 3);
    }

    #[test]
    fn summary_if_newer_elides_unchanged() {
        let (schema, engine) = setup(2, EngineChoice::Apcm);
        let s = parser::parse_subscription_with_id(&schema, SubId(7), "a1 >= 20").unwrap();
        engine.subscribe(&s).unwrap();
        let (epoch, bits) = engine.summary_snapshot();
        assert!(engine.summary_if_newer(epoch).is_none());
        let (e2, b2) = engine.summary_if_newer(epoch - 1).unwrap();
        assert_eq!(e2, epoch);
        assert_eq!(
            b2.ones().collect::<Vec<_>>(),
            bits.ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bulk_restore_rebuilds_summary() {
        let (schema, engine) = setup(3, EngineChoice::Scan);
        let subs: Vec<Subscription> = (0..20u32)
            .map(|id| {
                let text = format!("a0 = {}", id % 4);
                parser::parse_subscription_with_id(&schema, SubId(id), &text).unwrap()
            })
            .collect();
        assert_eq!(engine.bulk_restore(&subs).unwrap(), 20);
        assert_eq!(engine.summary_rebuilds(), 1);
        assert_eq!(engine.summary_bits_set(), 4);
        let epoch = engine.summary_epoch();
        // Duplicate restore: no fresh ids, no rebuild, no epoch movement.
        assert_eq!(engine.bulk_restore(&subs).unwrap(), 0);
        assert_eq!(engine.summary_rebuilds(), 1);
        assert_eq!(engine.summary_epoch(), epoch);
    }

    #[test]
    fn partial_bulk_restore_still_records_summary_bits() {
        let (schema, engine) = setup(3, EngineChoice::BetreeHybrid);
        // Parsed under a wider domain so it builds fine but is rejected by
        // the engine's schema mid-restore, failing one shard's bulk load
        // after the other shards already admitted their groups.
        let wide = Schema::uniform(4, 64);
        let bad = parser::parse_subscription_with_id(&wide, SubId(42), "a0 = 50").unwrap();
        let mut subs: Vec<Subscription> = vec![bad];
        subs.extend((0..12u32).map(|id| {
            let text = format!("a0 = {}", id % 4);
            parser::parse_subscription_with_id(&schema, SubId(id), &text).unwrap()
        }));
        assert!(
            engine.bulk_restore(&subs).is_err(),
            "out-of-domain sub must fail the restore"
        );
        assert!(!engine.is_empty(), "partial restore left no subscriptions");
        // The admitted subs must already be represented in the summary and
        // the epoch advanced past the seed — a router caching epoch 1 must
        // refresh instead of reading "unchanged" and pruning a backend
        // that holds matching subscriptions.
        assert!(engine.summary_epoch() > 1);
        assert!(engine.summary_bits_set() >= 4);
        assert!(engine.summary_if_newer(1).is_some());
    }

    #[test]
    fn maintain_aggregates_across_shards() {
        let (schema, engine) = setup(2, EngineChoice::BetreeHybrid);
        for id in 0..10u32 {
            let sub = parser::parse_subscription_with_id(&schema, SubId(id), "a0 >= 0").unwrap();
            engine.subscribe(&sub).unwrap();
        }
        let report = engine.maintain();
        assert_eq!(report.folded_pending, 10);
        assert!(report.rebuilt_clusters >= 1);
        assert!(engine.maintain().is_noop());
    }
}
