//! Lock-free server counters and the `STATS` snapshot.

use apcm_core::MaintenanceReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two latency histogram in microseconds: bucket `i` counts
/// samples in `[2^i, 2^(i+1))` µs, with bucket 0 catching sub-µs samples
/// and the last bucket open-ended.
pub const LATENCY_BUCKETS: usize = 20;

#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros() as u64;
        let idx = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Smallest bucket upper bound (µs) covering `q` of the samples, or
    /// `None` with no samples. Coarse by construction — buckets are
    /// powers of two — but monotone and cheap.
    pub fn quantile_upper_bound_us(&self, q: f64) -> Option<u64> {
        let snap = self.snapshot();
        let total: u64 = snap.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (total as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (i, &count) in snap.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (LATENCY_BUCKETS - 1))
    }
}

/// Counters shared by every server thread. All relaxed: these are
/// monitoring data, not synchronization.
#[derive(Default)]
pub struct ServerStats {
    /// Events accepted into the ingest queue.
    pub events_in: AtomicU64,
    /// Events matched (windows fully processed).
    pub events_matched: AtomicU64,
    /// Windows flushed through the engine.
    pub windows: AtomicU64,
    /// Total (event, subscription) match pairs produced.
    pub matches: AtomicU64,
    /// Notification / result lines delivered to client queues.
    pub replies_sent: AtomicU64,
    /// Lines dropped because a consumer's queue was full.
    pub replies_dropped: AtomicU64,
    /// Connections force-closed by the slow-consumer policy.
    pub slow_disconnects: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub conns_total: AtomicU64,
    /// Currently open connections.
    pub conns_active: AtomicU64,
    /// Connections refused by the `max_conns` admission cap (threaded
    /// accept path; the event loop counts its own, merged at render).
    pub conns_rejected: AtomicU64,
    /// Successful SUB commands.
    pub subs_added: AtomicU64,
    /// Successful UNSUB commands.
    pub subs_removed: AtomicU64,
    /// Ownership reclaims: `CLAIM` commands plus `SUB`s whose expression
    /// was byte-identical to the live subscription (takeover).
    pub subs_reclaimed: AtomicU64,
    /// Protocol errors returned to clients.
    pub protocol_errors: AtomicU64,
    /// Lines rejected (and discarded) for exceeding `max_line_bytes`.
    pub oversized_lines: AtomicU64,
    /// Connections closed by the idle-reaping sweep.
    pub idle_reaped: AtomicU64,
    /// Churn records durably appended to the log.
    pub persist_appends: AtomicU64,
    /// Failed appends/syncs (each rolled back and surfaced as `-ERR`).
    pub persist_errors: AtomicU64,
    /// Repair/retry attempts made while degraded.
    pub persist_retries: AtomicU64,
    /// Gauge: 1 while the durable log is degraded (churn refused), else 0.
    pub persist_degraded: AtomicU64,
    /// Snapshots successfully written (background, rotation, or SNAPSHOT).
    pub snapshots_taken: AtomicU64,
    /// Snapshot attempts that failed (previous snapshot left intact).
    pub snapshot_errors: AtomicU64,
    /// Of `snapshots_taken`, how many were delta files chained onto the
    /// last full (colstore format only).
    pub snapshot_deltas_taken: AtomicU64,
    /// Subscriptions restored at startup (snapshot + log replay).
    pub recovered_subs: AtomicU64,
    /// Log records replayed on top of the snapshot at startup.
    pub recovery_log_applied: AtomicU64,
    /// Corrupt records (or snapshots) dropped during recovery.
    pub recovery_corrupt_dropped: AtomicU64,
    /// Torn-tail bytes truncated off the log during recovery.
    pub recovery_truncated_bytes: AtomicU64,
    /// Delta snapshot files dropped during recovery because they (or a
    /// predecessor in the chain) failed validation.
    pub recovery_deltas_dropped: AtomicU64,
    /// Gauge: live `REPLICATE` follower streams on this (primary) server.
    pub repl_followers: AtomicU64,
    /// Churn record frames shipped to followers.
    pub repl_records_sent: AtomicU64,
    /// Bytes shipped over replication streams (frames + newlines).
    pub repl_bytes: AtomicU64,
    /// Gauge: records the slowest follower still lacks (primary side), or
    /// how far this replica trails its primary's announced sequence.
    pub repl_lag_records: AtomicU64,
    /// Gauge: highest replicated sequence applied locally (replica side).
    pub repl_applied_seq: AtomicU64,
    /// Streamed records rejected by the CRC/frame check (skipped, counted,
    /// never applied).
    pub repl_crc_skipped: AtomicU64,
    /// Times the replica puller redialed its primary.
    pub repl_reconnects: AtomicU64,
    /// Gauge: 1 while the replica puller holds a live stream to its
    /// primary, else 0 (always 0 on a primary).
    pub repl_connected: AtomicU64,
    /// Snapshot bootstraps applied by this replica (wholesale state
    /// replacement on handshake).
    pub repl_bootstraps: AtomicU64,
    /// Covered-suffix truncations: handshakes resolved by rewinding the
    /// follower's local log instead of a wholesale bootstrap.
    pub repl_truncates: AtomicU64,
    /// `REPLACK`s that covered more than one applied record (drained-batch
    /// acks on the follower's pull stream).
    pub replacks_pipelined: AtomicU64,
    /// Bytes shipped in bootstrap chunks (text frames or colstore blocks)
    /// answering `REPLICATE` handshakes on this primary.
    pub repl_bootstrap_bytes: AtomicU64,
    /// Churn refused because the id routes outside this node's ring
    /// ownership (`-ERR not owner`, see `RESHARD PRUNE`).
    pub not_owner_refusals: AtomicU64,
    /// Records applied by the resharding puller (owned SUB/UNSUBs taken
    /// over from a migration source).
    pub reshard_pull_applied: AtomicU64,
    /// Catalog ids durably unsubscribed by `RESHARD PRUNE`.
    pub reshard_pruned: AtomicU64,
    /// Gauge: 1 while a resharding pull stream is configured, else 0.
    pub reshard_pulling: AtomicU64,
    /// Gauge: the source sequence the resharding puller has covered (its
    /// `REPLACK` cursor — counts *all* frames seen, owned or not, so it
    /// is comparable with the source's log seq).
    pub reshard_pull_seq: AtomicU64,
    /// Role transitions: replica -> primary (`PROMOTE`).
    pub promotions: AtomicU64,
    /// Role transitions: primary -> replica (`DEMOTE`).
    pub demotions: AtomicU64,
    /// Gauge: 1 while this server is a read-only replica, else 0.
    pub role_replica: AtomicU64,
    /// Background maintenance passes that did work.
    pub maintenance_passes: AtomicU64,
    /// Aggregate `MaintenanceReport` fields across all passes and shards.
    pub maintenance_folded: AtomicU64,
    pub maintenance_rebuilt: AtomicU64,
    pub maintenance_dropped: AtomicU64,
    /// Per-window matching latency (queue pop to results ready).
    pub latency: LatencyHistogram,
}

impl ServerStats {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(counter: &AtomicU64, n: u64) {
        counter.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    pub fn record_maintenance(&self, report: &MaintenanceReport) {
        if report.is_noop() {
            return;
        }
        Self::add(&self.maintenance_passes, 1);
        Self::add(&self.maintenance_folded, report.folded_pending as u64);
        Self::add(&self.maintenance_rebuilt, report.rebuilt_clusters as u64);
        Self::add(&self.maintenance_dropped, report.dropped_clusters as u64);
    }

    /// Renders the `STATS` body: `key value` lines, one per metric.
    /// Transport-independent so the CLI can reuse it on shutdown.
    /// `kernel_counters` is the engine's lifetime `(probes, prunes, hits)`
    /// when it tracks them (see [`crate::ShardedEngine::kernel_counters`]).
    /// `summary` is the engine's `(epoch, bits_set, rebuilds)` triple for
    /// the coarse predicate-space summary served to cluster routers.
    /// `netio` carries the event loop's gauges — `(connections_open,
    /// epoll_wakeups, outbound_queue_lines, conns_rejected)` — when the
    /// broker runs on it; `None` (threaded broker) omits the loop-only
    /// keys.
    pub fn render(
        &self,
        per_shard_subs: &[usize],
        ingest_depth: usize,
        kernel_counters: Option<(u64, u64, u64)>,
        summary: (u64, u64, u64),
        netio: Option<(u64, u64, u64, u64)>,
    ) -> String {
        let mut out = String::new();
        let mut push = |key: &str, value: u64| {
            out.push_str(key);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        };
        push("events_in", Self::get(&self.events_in));
        push("events_matched", Self::get(&self.events_matched));
        push("windows", Self::get(&self.windows));
        push("matches", Self::get(&self.matches));
        push("replies_sent", Self::get(&self.replies_sent));
        push("replies_dropped", Self::get(&self.replies_dropped));
        push("slow_disconnects", Self::get(&self.slow_disconnects));
        push("conns_total", Self::get(&self.conns_total));
        push("conns_active", Self::get(&self.conns_active));
        push(
            "conns_rejected",
            Self::get(&self.conns_rejected) + netio.map_or(0, |n| n.3),
        );
        if let Some((open, wakeups, outbound, _)) = netio {
            push("connections_open", open);
            push("epoll_wakeups", wakeups);
            push("outbound_queue_lines", outbound);
        }
        push("subs_added", Self::get(&self.subs_added));
        push("subs_removed", Self::get(&self.subs_removed));
        push("subs_reclaimed", Self::get(&self.subs_reclaimed));
        push("protocol_errors", Self::get(&self.protocol_errors));
        push("oversized_lines", Self::get(&self.oversized_lines));
        push("idle_reaped", Self::get(&self.idle_reaped));
        push("persist_appends", Self::get(&self.persist_appends));
        push("persist_errors", Self::get(&self.persist_errors));
        push("persist_retries", Self::get(&self.persist_retries));
        push("persist_degraded", Self::get(&self.persist_degraded));
        push("snapshots_taken", Self::get(&self.snapshots_taken));
        push("snapshot_errors", Self::get(&self.snapshot_errors));
        push(
            "snapshot_deltas_taken",
            Self::get(&self.snapshot_deltas_taken),
        );
        push("recovered_subs", Self::get(&self.recovered_subs));
        push(
            "recovery_log_applied",
            Self::get(&self.recovery_log_applied),
        );
        push(
            "recovery_corrupt_dropped",
            Self::get(&self.recovery_corrupt_dropped),
        );
        push(
            "recovery_truncated_bytes",
            Self::get(&self.recovery_truncated_bytes),
        );
        push(
            "recovery_deltas_dropped",
            Self::get(&self.recovery_deltas_dropped),
        );
        push("repl_followers", Self::get(&self.repl_followers));
        push("repl_records_sent", Self::get(&self.repl_records_sent));
        push("repl_bytes", Self::get(&self.repl_bytes));
        push("repl_lag_records", Self::get(&self.repl_lag_records));
        push("repl_applied_seq", Self::get(&self.repl_applied_seq));
        push("repl_crc_skipped", Self::get(&self.repl_crc_skipped));
        push("repl_reconnects", Self::get(&self.repl_reconnects));
        push("repl_connected", Self::get(&self.repl_connected));
        push("repl_bootstraps", Self::get(&self.repl_bootstraps));
        push("repl_truncates", Self::get(&self.repl_truncates));
        push("replacks_pipelined", Self::get(&self.replacks_pipelined));
        push(
            "repl_bootstrap_bytes",
            Self::get(&self.repl_bootstrap_bytes),
        );
        push("not_owner_refusals", Self::get(&self.not_owner_refusals));
        push(
            "reshard_pull_applied",
            Self::get(&self.reshard_pull_applied),
        );
        push("reshard_pruned", Self::get(&self.reshard_pruned));
        push("reshard_pulling", Self::get(&self.reshard_pulling));
        push("reshard_pull_seq", Self::get(&self.reshard_pull_seq));
        push("promotions", Self::get(&self.promotions));
        push("demotions", Self::get(&self.demotions));
        push("role_replica", Self::get(&self.role_replica));
        push("maintenance_passes", Self::get(&self.maintenance_passes));
        push("maintenance_folded", Self::get(&self.maintenance_folded));
        push("maintenance_rebuilt", Self::get(&self.maintenance_rebuilt));
        push("maintenance_dropped", Self::get(&self.maintenance_dropped));
        push("ingest_queue_depth", ingest_depth as u64);
        let (summary_epoch, summary_bits, summary_rebuilds) = summary;
        push("summary_epoch", summary_epoch);
        push("summary_bits_set", summary_bits);
        push("summary_rebuilds", summary_rebuilds);
        if let Some((probes, prunes, hits)) = kernel_counters {
            push("kernel_probes", probes);
            push("kernel_prunes", prunes);
            push("kernel_hits", hits);
        }
        for (i, &n) in per_shard_subs.iter().enumerate() {
            push(&format!("shard_{i}_subs"), n as u64);
        }
        for (q, label) in [(0.5, "p50"), (0.99, "p99")] {
            if let Some(us) = self.latency.quantile_upper_bound_us(q) {
                push(&format!("window_latency_{label}_us_le"), us);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        let snap = h.snapshot();
        assert_eq!(snap[0], 1); // sub-µs
        assert_eq!(snap[1], 1); // [1,2)
        assert_eq!(snap[2], 1); // [2,4)
        assert_eq!(snap[10], 1); // [512,1024) ... 1000µs
        assert_eq!(snap.iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_bound_us(0.5), None);
        for us in [1u64, 2, 4, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_upper_bound_us(0.5).unwrap();
        let p99 = h.quantile_upper_bound_us(0.99).unwrap();
        assert!(p50 <= p99);
    }

    #[test]
    fn render_includes_shards_and_counters() {
        let stats = ServerStats::default();
        ServerStats::add(&stats.events_in, 7);
        let text = stats.render(&[3, 4], 2, None, (1, 0, 0), None);
        assert!(text.contains("events_in 7\n"));
        assert!(text.contains("shard_0_subs 3\n"));
        assert!(text.contains("shard_1_subs 4\n"));
        assert!(text.contains("ingest_queue_depth 2\n"));
        assert!(text.contains("persist_appends 0\n"));
        assert!(text.contains("recovered_subs 0\n"));
        assert!(text.contains("idle_reaped 0\n"));
        assert!(text.contains("oversized_lines 0\n"));
        assert!(text.contains("subs_reclaimed 0\n"));
        assert!(text.contains("conns_rejected 0\n"));
        assert!(text.contains("summary_epoch 1\n"));
        assert!(!text.contains("kernel_probes"));
        assert!(!text.contains("connections_open"));

        let text = stats.render(&[3, 4], 2, Some((10, 4, 6)), (4, 12, 1), None);
        assert!(text.contains("summary_epoch 4\n"));
        assert!(text.contains("summary_bits_set 12\n"));
        assert!(text.contains("summary_rebuilds 1\n"));
        assert!(text.contains("kernel_probes 10\n"));
        assert!(text.contains("kernel_prunes 4\n"));
        assert!(text.contains("kernel_hits 6\n"));
    }

    #[test]
    fn render_merges_event_loop_gauges() {
        let stats = ServerStats::default();
        ServerStats::add(&stats.conns_rejected, 2);
        let text = stats.render(&[1], 0, None, (1, 0, 0), Some((9, 100, 3, 5)));
        assert!(text.contains("conns_rejected 7\n")); // threaded 2 + loop 5
        assert!(text.contains("connections_open 9\n"));
        assert!(text.contains("epoll_wakeups 100\n"));
        assert!(text.contains("outbound_queue_lines 3\n"));
    }
}
